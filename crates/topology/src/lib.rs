//! # df-topology — Canonical Dragonfly topology model
//!
//! This crate models the *canonical Dragonfly* topology [Kim et al., ISCA'08;
//! Camarero et al., TACO'14] used by the IPDPS'15 paper *"Contention-based
//! Nonminimal Adaptive Routing in High-radix Networks"* (Fuentes et al.).
//!
//! A Dragonfly is a two-level hierarchical direct network defined by three
//! parameters:
//!
//! * `p` — number of compute nodes attached to each router,
//! * `a` — number of routers per group (the first-level complete graph),
//! * `h` — number of global links per router (the second-level complete graph
//!   between groups).
//!
//! With one global link between every pair of groups (the *canonical*
//! arrangement used in the paper, e.g. IBM PERCS), the network has at most
//! `a*h + 1` groups. Router radix is `p + (a-1) + h`.
//!
//! The crate provides:
//!
//! * strongly-typed identifiers ([`NodeId`], [`RouterId`], [`GroupId`],
//!   [`Port`]) with conversions between global and hierarchical coordinates,
//! * the [`Dragonfly`] topology object: neighbour queries, the *palmtree*
//!   global-link arrangement, port maps, and minimal/Valiant path helpers,
//! * topology invariants used heavily by the test-suite.
//!
//! The topology is purely combinatorial — it knows nothing about buffers,
//! credits or routing policy. Those live in `df-router` and `df-routing`.

#![warn(missing_docs)]

pub mod dragonfly;
pub mod ids;
pub mod layout;
pub mod linkstate;
pub mod megafly;
pub mod params;
pub mod path;
pub mod port;
pub mod topology;

pub use dragonfly::{Dragonfly, PortPeer};
pub use ids::{GroupId, NodeId, RouterId};
pub use layout::{PortLayout, RadixLayout};
pub use linkstate::{GatewayLiveness, LinkState};
pub use megafly::{Megafly, MegaflyParams, MegaflyParamsError};
pub use params::DragonflyParams;
pub use path::{HopKind, PathHop};
pub use port::{Port, PortClass};
pub use topology::{AnyTopology, IdIter, Topology, TopologyKind, TopologyParams};
