//! [`LinkState`]: a dynamic up/down mask over the static Dragonfly wiring.
//!
//! The [`Dragonfly`] object is purely combinatorial — its wiring never
//! changes. Fault injection needs a *dynamic* overlay: which links are
//! currently usable. `LinkState` tracks one bit per **directed** link end
//! `(router, port)` (the outgoing direction of that port at that router), so
//! a bidirectional link failure is represented as both directions down,
//! while asymmetric degradations (one direction only) remain expressible.
//!
//! The object is deliberately dumb: it stores bits and answers
//! degraded-connectivity queries. *Semantics* of a failure (what happens to
//! in-flight traffic, credits, routing) live in the simulator (`df-sim`)
//! and the router model (`df-router`), which mirror these bits into their
//! own per-router state.

use crate::dragonfly::{Dragonfly, PortPeer};
use crate::ids::{GroupId, RouterId};
use crate::port::{Port, PortClass};

/// Dynamic link availability over a [`Dragonfly`] topology: one `up` bit per
/// directed `(router, port)` pair.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Radix (ports per router), for flat indexing.
    radix: u32,
    /// `true` = the outgoing direction of this port is up. Indexed
    /// `router * radix + port`.
    up: Vec<bool>,
    /// Number of `false` entries in `up` (O(1) "any fault?" fast path).
    down_count: usize,
}

impl LinkState {
    /// All links up.
    pub fn new(topo: &Dragonfly) -> Self {
        let radix = topo.params().radix();
        LinkState {
            radix,
            up: vec![true; (topo.num_routers() * radix) as usize],
            down_count: 0,
        }
    }

    #[inline]
    fn index(&self, router: RouterId, port: Port) -> usize {
        debug_assert!(port.0 < self.radix, "port {port} out of range");
        (router.0 * self.radix + port.0) as usize
    }

    /// Whether the outgoing direction of `port` at `router` is up.
    #[inline]
    pub fn is_up(&self, router: RouterId, port: Port) -> bool {
        self.up[self.index(router, port)]
    }

    /// Whether every directed link is up (O(1)).
    #[inline]
    pub fn all_up(&self) -> bool {
        self.down_count == 0
    }

    /// Number of directed link ends currently down.
    pub fn num_down(&self) -> usize {
        self.down_count
    }

    /// Set one *directed* link end. Returns `true` if the state changed.
    pub fn set_directed(&mut self, router: RouterId, port: Port, up: bool) -> bool {
        let idx = self.index(router, port);
        if self.up[idx] == up {
            return false;
        }
        self.up[idx] = up;
        if up {
            self.down_count -= 1;
        } else {
            self.down_count += 1;
        }
        true
    }

    /// Set both directions of the (bidirectional) link attached at
    /// `(router, port)`, returning the affected directed ends. For a
    /// router-to-router link that is `[(router, port), (peer, peer_port)]`;
    /// for a terminal or unconnected port only the local end.
    pub fn set_link(
        &mut self,
        topo: &Dragonfly,
        router: RouterId,
        port: Port,
        up: bool,
    ) -> Vec<(RouterId, Port)> {
        let mut ends = vec![(router, port)];
        if let PortPeer::Router(peer, peer_port) = topo.peer(router, port) {
            ends.push((peer, peer_port));
        }
        for &(r, p) in &ends {
            self.set_directed(r, p, up);
        }
        ends
    }

    /// Every directed link end currently down, in ascending
    /// `(router, port)` order.
    pub fn down_links(&self) -> Vec<(RouterId, Port)> {
        if self.all_up() {
            return Vec::new();
        }
        self.up
            .iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| (RouterId(i as u32 / self.radix), Port(i as u32 % self.radix)))
            .collect()
    }

    // -----------------------------------------------------------------
    // Degraded-connectivity queries
    // -----------------------------------------------------------------

    /// Whether the unique direct global link between two distinct groups is
    /// usable in *both* directions.
    pub fn group_pair_connected(&self, topo: &Dragonfly, g1: GroupId, g2: GroupId) -> bool {
        let (gw, port) = topo.gateway_to(g1, g2);
        if !self.is_up(gw, port) {
            return false;
        }
        match topo.peer(gw, port) {
            PortPeer::Router(peer, back) => self.is_up(peer, back),
            _ => false,
        }
    }

    /// Number of routers reachable from `from` (including itself) following
    /// only *up* directed router-to-router links — a BFS over the degraded
    /// wiring.
    pub fn reachable_routers(&self, topo: &Dragonfly, from: RouterId) -> usize {
        let n = topo.num_routers() as usize;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from.index()] = true;
        queue.push_back(from);
        let mut count = 1usize;
        let params = *topo.params();
        while let Some(r) = queue.pop_front() {
            for port in Port::all(&params) {
                if port.class(&params) == PortClass::Terminal || !self.is_up(r, port) {
                    continue;
                }
                if let PortPeer::Router(peer, _) = topo.peer(r, port) {
                    if !seen[peer.index()] {
                        seen[peer.index()] = true;
                        count += 1;
                        queue.push_back(peer);
                    }
                }
            }
        }
        count
    }

    /// Whether every router is reachable from router 0 over up directed
    /// links. For the pairwise-symmetric failure patterns of `LinkDown`
    /// (both directions fail together) this is equivalent to full strong
    /// connectivity; for hand-built asymmetric states (single
    /// [`set_directed`](Self::set_directed) calls) it only certifies the
    /// forward orientation — use [`reachable_routers`](Self::reachable_routers)
    /// from the routers of interest for the full picture.
    pub fn connected(&self, topo: &Dragonfly) -> bool {
        let n = topo.num_routers() as usize;
        if n == 0 {
            return true;
        }
        self.reachable_routers(topo, RouterId(0)) == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DragonflyParams;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small()) // p=2, a=4, h=2, 9 groups
    }

    #[test]
    fn fresh_state_has_everything_up() {
        let t = topo();
        let s = LinkState::new(&t);
        assert!(s.all_up());
        assert_eq!(s.num_down(), 0);
        assert!(s.down_links().is_empty());
        for r in t.routers() {
            for port in Port::all(t.params()) {
                assert!(s.is_up(r, port));
            }
        }
        assert!(s.connected(&t));
        assert_eq!(
            s.reachable_routers(&t, RouterId(0)),
            t.num_routers() as usize
        );
    }

    #[test]
    fn directed_set_and_reset_round_trips() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let port = Port::global(t.params(), 0);
        assert!(s.set_directed(RouterId(3), port, false));
        assert!(!s.is_up(RouterId(3), port));
        assert_eq!(s.num_down(), 1);
        // idempotent
        assert!(!s.set_directed(RouterId(3), port, false));
        assert_eq!(s.num_down(), 1);
        assert!(s.set_directed(RouterId(3), port, true));
        assert!(s.all_up());
    }

    #[test]
    fn set_link_takes_both_directions_down() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let port = Port::global(t.params(), 1);
        let ends = s.set_link(&t, RouterId(0), port, false);
        assert_eq!(ends.len(), 2);
        assert_eq!(ends[0], (RouterId(0), port));
        let (peer, back) = (ends[1].0, ends[1].1);
        assert!(!s.is_up(RouterId(0), port));
        assert!(!s.is_up(peer, back));
        assert_eq!(s.num_down(), 2);
        assert_eq!(s.down_links().len(), 2);
        // bring it back
        let ends_up = s.set_link(&t, peer, back, true);
        assert_eq!(ends_up.len(), 2);
        assert!(s.all_up());
    }

    #[test]
    fn group_pair_connectivity_tracks_the_direct_link() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let (g1, g2) = (GroupId(0), GroupId(3));
        assert!(s.group_pair_connected(&t, g1, g2));
        let (gw, port) = t.gateway_to(g1, g2);
        s.set_link(&t, gw, port, false);
        assert!(!s.group_pair_connected(&t, g1, g2));
        assert!(
            !s.group_pair_connected(&t, g2, g1),
            "symmetric link, symmetric query"
        );
        // an unrelated pair is untouched
        assert!(s.group_pair_connected(&t, GroupId(1), GroupId(2)));
        // the network as a whole stays connected through other groups
        assert!(s.connected(&t));
    }

    #[test]
    fn isolating_a_router_shrinks_reachability() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let params = *t.params();
        // cut every router-to-router link of router 5
        let victim = RouterId(5);
        for port in Port::all(&params) {
            if port.class(&params) != PortClass::Terminal {
                s.set_link(&t, victim, port, false);
            }
        }
        assert!(!s.connected(&t));
        assert_eq!(s.reachable_routers(&t, victim), 1);
        assert_eq!(
            s.reachable_routers(&t, RouterId(0)),
            t.num_routers() as usize - 1
        );
    }
}
