//! [`LinkState`]: a dynamic up/down mask over the static Dragonfly wiring.
//!
//! The [`Dragonfly`] object is purely combinatorial — its wiring never
//! changes. Fault injection needs a *dynamic* overlay: which links are
//! currently usable. `LinkState` tracks one bit per **directed** link end
//! `(router, port)` (the outgoing direction of that port at that router), so
//! a bidirectional link failure is represented as both directions down,
//! while asymmetric degradations (one direction only) remain expressible.
//!
//! The object is deliberately dumb: it stores bits and answers
//! degraded-connectivity queries. *Semantics* of a failure (what happens to
//! in-flight traffic, credits, routing) live in the simulator (`df-sim`)
//! and the router model (`df-router`), which mirror these bits into their
//! own per-router state.

use crate::dragonfly::PortPeer;
use crate::ids::{GroupId, NodeId, RouterId};
use crate::layout::PortLayout;
use crate::port::{Port, PortClass};
use crate::topology::Topology;

/// Dynamic link availability over a [`Dragonfly`] topology: one `up` bit per
/// directed `(router, port)` pair.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Radix (ports per router), for flat indexing.
    radix: u32,
    /// `true` = the outgoing direction of this port is up. Indexed
    /// `router * radix + port`.
    up: Vec<bool>,
    /// Number of `false` entries in `up` (O(1) "any fault?" fast path).
    down_count: usize,
}

impl LinkState {
    /// All links up.
    pub fn new(topo: &impl Topology) -> Self {
        let radix = topo.layout().radix();
        LinkState {
            radix,
            up: vec![true; (topo.num_routers() * radix) as usize],
            down_count: 0,
        }
    }

    #[inline]
    fn index(&self, router: RouterId, port: Port) -> usize {
        debug_assert!(port.0 < self.radix, "port {port} out of range");
        (router.0 * self.radix + port.0) as usize
    }

    /// Whether the outgoing direction of `port` at `router` is up.
    #[inline]
    pub fn is_up(&self, router: RouterId, port: Port) -> bool {
        self.up[self.index(router, port)]
    }

    /// Whether every directed link is up (O(1)).
    #[inline]
    pub fn all_up(&self) -> bool {
        self.down_count == 0
    }

    /// Number of directed link ends currently down.
    pub fn num_down(&self) -> usize {
        self.down_count
    }

    /// Set one *directed* link end. Returns `true` if the state changed.
    pub fn set_directed(&mut self, router: RouterId, port: Port, up: bool) -> bool {
        let idx = self.index(router, port);
        if self.up[idx] == up {
            return false;
        }
        self.up[idx] = up;
        if up {
            self.down_count -= 1;
        } else {
            self.down_count += 1;
        }
        true
    }

    /// Set both directions of the (bidirectional) link attached at
    /// `(router, port)`, returning the affected directed ends. For a
    /// router-to-router link that is `[(router, port), (peer, peer_port)]`;
    /// for a terminal or unconnected port only the local end.
    pub fn set_link(
        &mut self,
        topo: &impl Topology,
        router: RouterId,
        port: Port,
        up: bool,
    ) -> Vec<(RouterId, Port)> {
        let mut ends = vec![(router, port)];
        if let PortPeer::Router(peer, peer_port) = topo.peer(router, port) {
            ends.push((peer, peer_port));
        }
        for &(r, p) in &ends {
            self.set_directed(r, p, up);
        }
        ends
    }

    /// Every directed link end currently down, in ascending
    /// `(router, port)` order.
    pub fn down_links(&self) -> Vec<(RouterId, Port)> {
        if self.all_up() {
            return Vec::new();
        }
        self.up
            .iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| (RouterId(i as u32 / self.radix), Port(i as u32 % self.radix)))
            .collect()
    }

    // -----------------------------------------------------------------
    // Degraded-connectivity queries
    // -----------------------------------------------------------------

    /// Whether the unique direct global link between two distinct groups is
    /// usable in *both* directions.
    pub fn group_pair_connected(&self, topo: &impl Topology, g1: GroupId, g2: GroupId) -> bool {
        let (gw, port) = topo.gateway_to(g1, g2);
        if !self.is_up(gw, port) {
            return false;
        }
        match topo.peer(gw, port) {
            PortPeer::Router(peer, back) => self.is_up(peer, back),
            _ => false,
        }
    }

    /// Number of routers reachable from `from` (including itself) following
    /// only *up* directed router-to-router links — a BFS over the degraded
    /// wiring.
    pub fn reachable_routers(&self, topo: &impl Topology, from: RouterId) -> usize {
        let n = topo.num_routers() as usize;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from.index()] = true;
        queue.push_back(from);
        let mut count = 1usize;
        let layout = topo.layout();
        while let Some(r) = queue.pop_front() {
            for port in Port::all(&layout) {
                if port.class(&layout) == PortClass::Terminal || !self.is_up(r, port) {
                    continue;
                }
                if let PortPeer::Router(peer, _) = topo.peer(r, port) {
                    if !seen[peer.index()] {
                        seen[peer.index()] = true;
                        count += 1;
                        queue.push_back(peer);
                    }
                }
            }
        }
        count
    }

    /// Whether every router is reachable from router 0 over up directed
    /// links. For the pairwise-symmetric failure patterns of `LinkDown`
    /// (both directions fail together) this is equivalent to full strong
    /// connectivity; for hand-built asymmetric states (single
    /// [`set_directed`](Self::set_directed) calls) it only certifies the
    /// forward orientation — use [`reachable_routers`](Self::reachable_routers)
    /// from the routers of interest for the full picture.
    pub fn connected(&self, topo: &impl Topology) -> bool {
        let n = topo.num_routers() as usize;
        if n == 0 {
            return true;
        }
        self.reachable_routers(topo, RouterId(0)) == n
    }
}

/// One disseminated state change: the newest known `(sequence, up)` pair
/// for an entry, keyed by the entry's flat index. Sequence numbers are
/// assigned by the truth map (its version counter at the change), so "newer
/// sequence wins" merges are exactly "closer to the truth" — a `LinkUp`
/// always carries a higher sequence than the `LinkDown` it reverts, and can
/// therefore never be overwritten by a stale down-mark still circulating in
/// another group's view.
type EntryRecord = (u32, u64, bool);

/// Adopt `(key, seq, up)` into a sorted record journal if it is fresher
/// than what the journal holds; returns `(adopted, mark flipped)`.
fn adopt_record(records: &mut Vec<EntryRecord>, key: u32, seq: u64, up: bool) -> (bool, bool) {
    match records.binary_search_by_key(&key, |r| r.0) {
        Ok(pos) => {
            let (_, cur_seq, cur_up) = records[pos];
            if cur_seq >= seq {
                (false, false)
            } else {
                records[pos] = (key, seq, up);
                (true, cur_up != up)
            }
        }
        Err(pos) => {
            records.insert(pos, (key, seq, up));
            // an absent record means "assumed up", so only a down-mark flips
            (true, !up)
        }
    }
}

/// Flip `key` in a sorted marks vector to match `up` (present = marked
/// down).
fn set_mark(marks: &mut Vec<u32>, key: u32, up: bool) {
    match marks.binary_search(&key) {
        Ok(pos) if up => {
            marks.remove(pos);
        }
        Err(pos) if !up => {
            marks.insert(pos, key);
        }
        _ => {}
    }
}

/// A network-wide map of **gateway liveness**: one bit per group-level
/// global link `(group, j)` with `j in 0..a*h` (true when *both* directions
/// of that link are usable) plus one bit per compute node (false when the
/// node has failed and its traffic is retargeted to a spare).
///
/// This is the payload the failure-aware routing mechanisms disseminate
/// through the PB/ECtN control plane: the simulator keeps a *truth* copy in
/// sync with its [`LinkState`], every group accumulates a *flooded* view
/// (hop-by-hop, one live-neighbour merge per exchange — see `df-sim`'s
/// flooding round), and every router installs its own group's view on the
/// dissemination cadence. Because faults are rare, the map is stored
/// sparsely — only the down marks plus a small freshness journal — so a
/// view install is a version check plus a copy of (typically tiny) vectors,
/// and the healthy-network fast path ([`all_up`](Self::all_up)) is O(1).
///
/// Entries carry per-entry sequence numbers (see [`EntryRecord`]) so that
/// flooding merges are conflict-free: whichever copy of an entry has seen
/// the later truth change wins, regardless of the order views are merged
/// in. The `version` counter is a *local* change count — it orders the
/// states of one map over time (the install fast path), not the states of
/// different maps.
///
/// A bidirectional global link appears in **both** incident groups' index
/// spaces (group `g` link `j` and the peer group's reverse link); callers
/// updating the map from a fault event must mark both entries — see
/// [`set_global_link`](Self::set_global_link).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayLiveness {
    /// Global links per group (`a*h`), for flat indexing.
    links_per_group: u32,
    /// Monotonic change counter: bumped on every state change, compared by
    /// the install path to skip redundant copies. Version 0 = pristine
    /// all-up (a never-installed view is indistinguishable from a healthy
    /// network, which is exactly the desired semantics for mechanisms
    /// without a dissemination channel). On the truth map this doubles as
    /// the sequence-number source for entry records.
    version: u64,
    /// Flat indices `group * links_per_group + j` of the links currently
    /// down, sorted ascending.
    down: Vec<u32>,
    /// Node ids currently marked failed, sorted ascending.
    nodes_down: Vec<u32>,
    /// Freshness journal for link entries: the newest known change per flat
    /// link index, sorted by index. Grows with the number of links ever
    /// touched by a fault, never shrinks within a run.
    link_records: Vec<EntryRecord>,
    /// Freshness journal for node entries, sorted by node id.
    node_records: Vec<EntryRecord>,
}

impl GatewayLiveness {
    /// All gateway links and nodes up.
    pub fn new(topo: &impl Topology) -> Self {
        GatewayLiveness {
            links_per_group: topo.global_links_per_group(),
            version: 0,
            down: Vec::new(),
            nodes_down: Vec::new(),
            link_records: Vec::new(),
            node_records: Vec::new(),
        }
    }

    #[inline]
    fn flat(&self, group: GroupId, j: u32) -> u32 {
        debug_assert!(j < self.links_per_group, "global link {j} out of range");
        group.0 * self.links_per_group + j
    }

    /// Whether every gateway link is up (O(1) healthy fast path).
    #[inline]
    pub fn all_up(&self) -> bool {
        self.down.is_empty()
    }

    /// Change counter (0 for a pristine all-up map).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether group-level global link `j` of `group` is usable in both
    /// directions, as far as this map knows.
    #[inline]
    pub fn link_up(&self, group: GroupId, j: u32) -> bool {
        self.all_up() || self.down.binary_search(&self.flat(group, j)).is_err()
    }

    /// Whether this map positively marks link `j` of `group` down — the
    /// predicate the routing triggers use (false on a pristine all-up view,
    /// O(1) in the healthy case).
    #[inline]
    pub fn marks_down(&self, group: GroupId, j: u32) -> bool {
        !self.all_up() && !self.link_up(group, j)
    }

    /// Number of gateway links currently marked down.
    pub fn num_down(&self) -> usize {
        self.down.len()
    }

    /// Mark one `(group, j)` entry up or down. Idempotent; bumps the
    /// version (and stamps a fresh entry record with it) only on an actual
    /// change.
    pub fn set_entry(&mut self, group: GroupId, j: u32, up: bool) {
        let flat = self.flat(group, j);
        match self.down.binary_search(&flat) {
            Ok(pos) if up => {
                self.down.remove(pos);
                self.version += 1;
            }
            Err(pos) if !up => {
                self.down.insert(pos, flat);
                self.version += 1;
            }
            _ => return,
        }
        let seq = self.version;
        adopt_record(&mut self.link_records, flat, seq, up);
    }

    // -----------------------------------------------------------------
    // Node-failure entries
    // -----------------------------------------------------------------

    /// Whether `node` is usable as far as this map knows (O(1) in the
    /// healthy case).
    #[inline]
    pub fn node_up(&self, node: NodeId) -> bool {
        self.nodes_down.is_empty() || self.nodes_down.binary_search(&node.0).is_err()
    }

    /// Whether this map positively marks `node` as failed.
    #[inline]
    pub fn marks_node_down(&self, node: NodeId) -> bool {
        !self.node_up(node)
    }

    /// Number of nodes currently marked failed.
    pub fn num_nodes_down(&self) -> usize {
        self.nodes_down.len()
    }

    /// Mark one node failed or restored. Idempotent; bumps the version (and
    /// stamps a fresh entry record with it) only on an actual change.
    pub fn set_node(&mut self, node: NodeId, up: bool) {
        match self.nodes_down.binary_search(&node.0) {
            Ok(pos) if up => {
                self.nodes_down.remove(pos);
                self.version += 1;
            }
            Err(pos) if !up => {
                self.nodes_down.insert(pos, node.0);
                self.version += 1;
            }
            _ => return,
        }
        let seq = self.version;
        adopt_record(&mut self.node_records, node.0, seq, up);
    }

    /// Mark the bidirectional global link attached at `(router, port)` up or
    /// down in **both** incident groups' index spaces — the form fault
    /// events arrive in. Non-global and unwired ports are ignored.
    pub fn set_global_link(
        &mut self,
        topo: &impl Topology,
        router: RouterId,
        port: Port,
        up: bool,
    ) {
        let layout = topo.layout();
        if port.class(&layout) != PortClass::Global {
            return;
        }
        let k = port.class_offset(&layout);
        if k >= topo.own_globals(router) {
            return; // padded global index without a link (e.g. Megafly leaf)
        }
        let group = topo.router_group(router);
        let j = topo.global_link_index(router, k);
        let Some((peer, peer_port)) = topo.global_neighbor(router, k) else {
            return;
        };
        let peer_group = topo.router_group(peer);
        let peer_j = topo.global_link_index(peer, peer_port.class_offset(&layout));
        self.set_entry(group, j, up);
        self.set_entry(peer_group, peer_j, up);
    }

    /// Copy `src` into `self` if the versions differ (the router-side view
    /// install; a no-op — one integer compare — when nothing changed).
    ///
    /// Version equality is only a valid change proxy when `self` tracks a
    /// *single* source map (a router view installing its own group's
    /// flooded view): that source's version is a monotonic change counter,
    /// so equal versions imply equal content. Do not install one view from
    /// alternating sources.
    pub fn install_from(&mut self, src: &GatewayLiveness) {
        if self.version != src.version {
            self.links_per_group = src.links_per_group;
            self.version = src.version;
            self.down.clear();
            self.down.extend_from_slice(&src.down);
            self.nodes_down.clear();
            self.nodes_down.extend_from_slice(&src.nodes_down);
            self.link_records.clear();
            self.link_records.extend_from_slice(&src.link_records);
            self.node_records.clear();
            self.node_records.extend_from_slice(&src.node_records);
        }
    }

    // -----------------------------------------------------------------
    // Flooding merges
    // -----------------------------------------------------------------

    #[inline]
    fn adopt_link(&mut self, key: u32, seq: u64, up: bool) -> bool {
        let (adopted, flipped) = adopt_record(&mut self.link_records, key, seq, up);
        if flipped {
            set_mark(&mut self.down, key, up);
        }
        adopted
    }

    #[inline]
    fn adopt_node(&mut self, key: u32, seq: u64, up: bool) -> bool {
        let (adopted, flipped) = adopt_record(&mut self.node_records, key, seq, up);
        if flipped {
            set_mark(&mut self.nodes_down, key, up);
        }
        adopted
    }

    /// Merge every entry of `src` into `self`, adopting the records with
    /// the newer sequence number (one flooding hop: `src` is a live
    /// neighbour group's previous-round view). Bumps the version and
    /// returns `true` if anything was adopted.
    pub fn merge_from(&mut self, src: &GatewayLiveness) -> bool {
        let mut changed = false;
        for &(key, seq, up) in &src.link_records {
            changed |= self.adopt_link(key, seq, up);
        }
        for &(key, seq, up) in &src.node_records {
            changed |= self.adopt_node(key, seq, up);
        }
        if changed {
            self.version += 1;
        }
        changed
    }

    /// Merge the entries of `truth` that `group` observes *directly* — its
    /// own global-link index space (a gateway router senses its attached
    /// link die or heal at the port) and the failure state of its own
    /// nodes (the source NIC reports into its router). This is the origin
    /// injection of the flooding protocol; everything else travels
    /// hop-by-hop via [`merge_from`](Self::merge_from). Bumps the version
    /// and returns `true` if anything was adopted.
    pub fn merge_own_from(
        &mut self,
        truth: &GatewayLiveness,
        topo: &impl Topology,
        group: GroupId,
    ) -> bool {
        let lo = group.0 * truth.links_per_group;
        let hi = lo + truth.links_per_group;
        let start = truth.link_records.partition_point(|r| r.0 < lo);
        let mut changed = false;
        for &(key, seq, up) in truth.link_records[start..].iter().take_while(|r| r.0 < hi) {
            changed |= self.adopt_link(key, seq, up);
        }
        for &(key, seq, up) in &truth.node_records {
            if topo.router_group(topo.node_router(NodeId(key))) == group {
                changed |= self.adopt_node(key, seq, up);
            }
        }
        if changed {
            self.version += 1;
        }
        changed
    }

    /// Whether this map's down-marks (links and nodes) are semantically
    /// identical to `other`'s, ignoring versions and record freshness — the
    /// convergence predicate of the flooding protocol.
    pub fn same_marks(&self, other: &GatewayLiveness) -> bool {
        self.down == other.down && self.nodes_down == other.nodes_down
    }

    // -----------------------------------------------------------------
    // Snapshot support
    // -----------------------------------------------------------------

    /// Borrow every internal field, in declaration order:
    /// `(links_per_group, version, down, nodes_down, link_records,
    /// node_records)`. Together with
    /// [`from_raw_parts`](Self::from_raw_parts) this lets the simulator's
    /// snapshot subsystem persist views exactly — including the freshness
    /// journals, which the flooding merges depend on.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(
        &self,
    ) -> (
        u32,
        u64,
        &[u32],
        &[u32],
        &[(u32, u64, bool)],
        &[(u32, u64, bool)],
    ) {
        (
            self.links_per_group,
            self.version,
            &self.down,
            &self.nodes_down,
            &self.link_records,
            &self.node_records,
        )
    }

    /// Rebuild a map from [`raw_parts`](Self::raw_parts) output. The mark
    /// and record vectors must be sorted by key, as the accessors of a live
    /// map always produce them.
    pub fn from_raw_parts(
        links_per_group: u32,
        version: u64,
        down: Vec<u32>,
        nodes_down: Vec<u32>,
        link_records: Vec<(u32, u64, bool)>,
        node_records: Vec<(u32, u64, bool)>,
    ) -> Self {
        debug_assert!(down.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(nodes_down.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(link_records.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(node_records.windows(2).all(|w| w[0].0 < w[1].0));
        GatewayLiveness {
            links_per_group,
            version,
            down,
            nodes_down,
            link_records,
            node_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dragonfly::Dragonfly;
    use crate::params::DragonflyParams;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small()) // p=2, a=4, h=2, 9 groups
    }

    #[test]
    fn fresh_state_has_everything_up() {
        let t = topo();
        let s = LinkState::new(&t);
        assert!(s.all_up());
        assert_eq!(s.num_down(), 0);
        assert!(s.down_links().is_empty());
        for r in t.routers() {
            for port in Port::all(t.params()) {
                assert!(s.is_up(r, port));
            }
        }
        assert!(s.connected(&t));
        assert_eq!(
            s.reachable_routers(&t, RouterId(0)),
            t.num_routers() as usize
        );
    }

    #[test]
    fn directed_set_and_reset_round_trips() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let port = Port::global(t.params(), 0);
        assert!(s.set_directed(RouterId(3), port, false));
        assert!(!s.is_up(RouterId(3), port));
        assert_eq!(s.num_down(), 1);
        // idempotent
        assert!(!s.set_directed(RouterId(3), port, false));
        assert_eq!(s.num_down(), 1);
        assert!(s.set_directed(RouterId(3), port, true));
        assert!(s.all_up());
    }

    #[test]
    fn set_link_takes_both_directions_down() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let port = Port::global(t.params(), 1);
        let ends = s.set_link(&t, RouterId(0), port, false);
        assert_eq!(ends.len(), 2);
        assert_eq!(ends[0], (RouterId(0), port));
        let (peer, back) = (ends[1].0, ends[1].1);
        assert!(!s.is_up(RouterId(0), port));
        assert!(!s.is_up(peer, back));
        assert_eq!(s.num_down(), 2);
        assert_eq!(s.down_links().len(), 2);
        // bring it back
        let ends_up = s.set_link(&t, peer, back, true);
        assert_eq!(ends_up.len(), 2);
        assert!(s.all_up());
    }

    #[test]
    fn group_pair_connectivity_tracks_the_direct_link() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let (g1, g2) = (GroupId(0), GroupId(3));
        assert!(s.group_pair_connected(&t, g1, g2));
        let (gw, port) = t.gateway_to(g1, g2);
        s.set_link(&t, gw, port, false);
        assert!(!s.group_pair_connected(&t, g1, g2));
        assert!(
            !s.group_pair_connected(&t, g2, g1),
            "symmetric link, symmetric query"
        );
        // an unrelated pair is untouched
        assert!(s.group_pair_connected(&t, GroupId(1), GroupId(2)));
        // the network as a whole stays connected through other groups
        assert!(s.connected(&t));
    }

    #[test]
    fn gateway_liveness_tracks_both_incident_groups() {
        let t = topo();
        let mut g = GatewayLiveness::new(&t);
        assert!(g.all_up());
        assert_eq!(g.version(), 0);
        let (gw, port) = t.gateway_to(GroupId(0), GroupId(1));
        g.set_global_link(&t, gw, port, false);
        assert!(!g.all_up());
        assert_eq!(g.num_down(), 2, "the link is down in both groups' spaces");
        let j01 = t.group_link_to(GroupId(0), GroupId(1));
        let j10 = t.group_link_to(GroupId(1), GroupId(0));
        assert!(!g.link_up(GroupId(0), j01));
        assert!(!g.link_up(GroupId(1), j10));
        assert!(g.link_up(GroupId(0), (j01 + 1) % t.params().global_links_per_group()));
        let v = g.version();
        // idempotent: re-marking changes nothing
        g.set_global_link(&t, gw, port, false);
        assert_eq!(g.version(), v);
        // restoring clears both entries
        g.set_global_link(&t, gw, port, true);
        assert!(g.all_up());
        assert!(g.version() > v);
    }

    #[test]
    fn gateway_liveness_ignores_non_global_ports() {
        let t = topo();
        let mut g = GatewayLiveness::new(&t);
        g.set_global_link(&t, RouterId(0), Port(0), false); // terminal
        g.set_global_link(&t, RouterId(0), Port::local(t.params(), 0), false);
        assert!(g.all_up());
        assert_eq!(g.version(), 0);
    }

    #[test]
    fn gateway_liveness_install_copies_only_on_version_change() {
        let t = topo();
        let mut truth = GatewayLiveness::new(&t);
        let mut view = GatewayLiveness::new(&t);
        let (gw, port) = t.gateway_to(GroupId(2), GroupId(5));
        truth.set_global_link(&t, gw, port, false);
        view.install_from(&truth);
        assert_eq!(view, truth);
        // a stale view re-installs after the next change
        truth.set_global_link(&t, gw, port, true);
        assert_ne!(view.version(), truth.version());
        view.install_from(&truth);
        assert!(view.all_up());
        assert_eq!(view, truth);
    }

    #[test]
    fn merge_own_from_adopts_only_the_groups_own_entries() {
        let t = topo();
        let mut truth = GatewayLiveness::new(&t);
        let (gw, port) = t.gateway_to(GroupId(0), GroupId(1));
        truth.set_global_link(&t, gw, port, false);
        let mut v0 = GatewayLiveness::new(&t);
        let mut v5 = GatewayLiveness::new(&t);
        assert!(v0.merge_own_from(&truth, &t, GroupId(0)));
        assert!(!v5.merge_own_from(&truth, &t, GroupId(5)));
        let j01 = t.group_link_to(GroupId(0), GroupId(1));
        let j10 = t.group_link_to(GroupId(1), GroupId(0));
        assert!(v0.marks_down(GroupId(0), j01));
        // group 1's entry for the same physical link originates at group 1
        assert!(!v0.marks_down(GroupId(1), j10));
        assert!(v5.all_up());
        // idempotent: a second origin injection adopts nothing
        assert!(!v0.merge_own_from(&truth, &t, GroupId(0)));
    }

    #[test]
    fn merge_from_lets_the_fresher_record_win() {
        let t = topo();
        let mut truth = GatewayLiveness::new(&t);
        let (gw, port) = t.gateway_to(GroupId(2), GroupId(3));
        truth.set_global_link(&t, gw, port, false);
        // a neighbour view that saw the down-mark
        let mut stale = GatewayLiveness::new(&t);
        stale.merge_own_from(&truth, &t, GroupId(2));
        // the link heals; the origin group observes the fresher up-record
        truth.set_global_link(&t, gw, port, true);
        let mut fresh = GatewayLiveness::new(&t);
        fresh.merge_own_from(&truth, &t, GroupId(2));
        assert!(fresh.all_up());
        // the stale down-mark cannot overwrite the fresher up-record...
        assert!(!fresh.merge_from(&stale) || fresh.all_up());
        assert!(fresh.all_up());
        // ...but the fresh up-record does clear the stale view's mark
        assert!(stale.merge_from(&fresh));
        assert!(stale.all_up());
        assert!(stale.same_marks(&truth));
    }

    #[test]
    fn node_entries_mark_merge_and_clear() {
        let t = topo();
        let mut truth = GatewayLiveness::new(&t);
        assert!(truth.node_up(NodeId(3)));
        truth.set_node(NodeId(3), false);
        assert!(truth.marks_node_down(NodeId(3)));
        assert_eq!(truth.num_nodes_down(), 1);
        assert!(truth.all_up(), "node failures do not mark gateway links");
        let v = truth.version();
        truth.set_node(NodeId(3), false);
        assert_eq!(truth.version(), v, "idempotent");
        // the owning group (node 3 sits on router 1, group 0) observes it
        let own_group = t.router_group(t.node_router(NodeId(3)));
        let mut view = GatewayLiveness::new(&t);
        assert!(view.merge_own_from(&truth, &t, own_group));
        assert!(view.marks_node_down(NodeId(3)));
        // a restore with a fresher sequence clears it through a merge
        truth.set_node(NodeId(3), true);
        let mut origin = GatewayLiveness::new(&t);
        origin.merge_own_from(&truth, &t, own_group);
        assert!(view.merge_from(&origin));
        assert!(view.node_up(NodeId(3)));
        assert!(view.same_marks(&truth));
    }

    #[test]
    fn isolating_a_router_shrinks_reachability() {
        let t = topo();
        let mut s = LinkState::new(&t);
        let params = *t.params();
        // cut every router-to-router link of router 5
        let victim = RouterId(5);
        for port in Port::all(&params) {
            if port.class(&params) != PortClass::Terminal {
                s.set_link(&t, victim, port, false);
            }
        }
        assert!(!s.connected(&t));
        assert_eq!(s.reachable_routers(&t, victim), 1);
        assert_eq!(
            s.reachable_routers(&t, RouterId(0)),
            t.num_routers() as usize - 1
        );
    }
}
