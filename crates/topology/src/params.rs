//! Dragonfly sizing parameters `(p, a, h)` and derived quantities.

use crate::layout::PortLayout;
use serde::{Deserialize, Serialize};

/// Sizing parameters of a canonical Dragonfly network.
///
/// * `p` — compute nodes per router,
/// * `a` — routers per group,
/// * `h` — global links per router.
///
/// The canonical (fully-populated, single link between every pair of groups)
/// Dragonfly has `g = a*h + 1` groups; smaller group counts are allowed (the
/// network is then not a complete graph at the global level only if
/// `groups < a*h + 1`, but every pair of present groups is still connected as
/// long as `groups <= a*h + 1`, which this type enforces).
///
/// The paper's Table I instance is `p=8, a=16, h=8` with 129 groups
/// (16,512 nodes); [`DragonflyParams::paper_table1`] builds it. The balanced
/// proportion recommended by Kim et al. is `a = 2p = 2h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DragonflyParams {
    /// Compute nodes attached to each router.
    pub p: u32,
    /// Routers in each group.
    pub a: u32,
    /// Global links per router.
    pub h: u32,
    /// Number of groups actually populated (`<= a*h + 1`).
    pub groups: u32,
}

/// Error produced when constructing invalid [`DragonflyParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// One of `p`, `a`, `h` or `groups` was zero.
    ZeroParameter,
    /// More groups were requested than the `a*h + 1` the canonical wiring
    /// supports.
    TooManyGroups {
        /// Groups requested.
        requested: u32,
        /// Maximum allowed, `a*h + 1`.
        max: u32,
    },
    /// Fewer than two groups: the global level would be empty.
    TooFewGroups,
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::ZeroParameter => write!(f, "p, a, h and groups must all be non-zero"),
            ParamsError::TooManyGroups { requested, max } => write!(
                f,
                "requested {requested} groups but a*h+1 = {max} is the canonical maximum"
            ),
            ParamsError::TooFewGroups => write!(f, "a Dragonfly needs at least 2 groups"),
        }
    }
}

impl std::error::Error for ParamsError {}

impl DragonflyParams {
    /// Create a parameter set, validating the canonical constraints.
    pub fn new(p: u32, a: u32, h: u32, groups: u32) -> Result<Self, ParamsError> {
        if p == 0 || a == 0 || h == 0 || groups == 0 {
            return Err(ParamsError::ZeroParameter);
        }
        if groups < 2 {
            return Err(ParamsError::TooFewGroups);
        }
        let max = a * h + 1;
        if groups > max {
            return Err(ParamsError::TooManyGroups {
                requested: groups,
                max,
            });
        }
        Ok(DragonflyParams { p, a, h, groups })
    }

    /// Fully-populated canonical Dragonfly: `groups = a*h + 1`.
    pub fn canonical(p: u32, a: u32, h: u32) -> Result<Self, ParamsError> {
        Self::new(p, a, h, a * h + 1)
    }

    /// The paper's Table I network: `p=8, a=16, h=8`, 129 groups,
    /// 16,512 compute nodes, 31-port routers.
    pub fn paper_table1() -> Self {
        Self::canonical(8, 16, 8).expect("paper parameters are valid")
    }

    /// A medium, laptop-friendly instance keeping the balanced `a = 2p = 2h`
    /// proportion: `p=4, a=8, h=4`, 33 groups, 1,056 nodes.
    pub fn medium() -> Self {
        Self::canonical(4, 8, 4).expect("medium parameters are valid")
    }

    /// A small instance for fast tests and CI: `p=2, a=4, h=2`, 9 groups,
    /// 72 nodes, 36 routers.
    pub fn small() -> Self {
        Self::canonical(2, 4, 2).expect("small parameters are valid")
    }

    /// A tiny instance for unit tests where hand-checking paths is feasible:
    /// `p=1, a=2, h=1`, 3 groups, 6 nodes, 6 routers.
    pub fn tiny() -> Self {
        Self::canonical(1, 2, 1).expect("tiny parameters are valid")
    }

    /// Number of routers in the whole network.
    #[inline]
    pub fn num_routers(&self) -> u32 {
        self.a * self.groups
    }

    /// Number of compute nodes in the whole network.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.p * self.num_routers()
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> u32 {
        self.groups
    }

    /// Router radix (number of ports): `p` injection + `a-1` local + `h`
    /// global.
    #[inline]
    pub fn radix(&self) -> u32 {
        self.p + (self.a - 1) + self.h
    }

    /// Number of global links leaving each group (`a*h`).
    #[inline]
    pub fn global_links_per_group(&self) -> u32 {
        self.a * self.h
    }

    /// Whether the instance is fully populated (`groups == a*h + 1`), i.e.
    /// there is exactly one global link between every pair of groups.
    #[inline]
    pub fn is_fully_populated(&self) -> bool {
        self.groups == self.a * self.h + 1
    }

    /// The load threshold at which a single minimal global link saturates
    /// under an ADV+i pattern: each group offers `a*p` phits/cycle over one
    /// global link, so accepted throughput per node caps at
    /// `1 / (a*p)` phits/(node·cycle) with minimal routing.
    pub fn adversarial_min_throughput_limit(&self) -> f64 {
        1.0 / (self.a as f64 * self.p as f64)
    }
}

impl PortLayout for DragonflyParams {
    #[inline]
    fn terminals(&self) -> u32 {
        self.p
    }
    #[inline]
    fn locals(&self) -> u32 {
        self.a - 1
    }
    #[inline]
    fn globals(&self) -> u32 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_matches_table1() {
        let p = DragonflyParams::paper_table1();
        assert_eq!(p.p, 8);
        assert_eq!(p.a, 16);
        assert_eq!(p.h, 8);
        assert_eq!(p.groups, 129);
        assert_eq!(p.num_nodes(), 16_512);
        assert_eq!(p.num_routers(), 2_064);
        assert_eq!(p.radix(), 31);
        assert!(p.is_fully_populated());
    }

    #[test]
    fn small_instances_are_consistent() {
        let s = DragonflyParams::small();
        assert_eq!(s.num_groups(), 9);
        assert_eq!(s.num_routers(), 36);
        assert_eq!(s.num_nodes(), 72);
        assert_eq!(s.radix(), 2 + 3 + 2);

        let t = DragonflyParams::tiny();
        assert_eq!(t.num_groups(), 3);
        assert_eq!(t.num_routers(), 6);
        assert_eq!(t.num_nodes(), 6);
    }

    #[test]
    fn zero_parameters_rejected() {
        assert_eq!(
            DragonflyParams::new(0, 4, 2, 9),
            Err(ParamsError::ZeroParameter)
        );
        assert_eq!(
            DragonflyParams::new(2, 0, 2, 9),
            Err(ParamsError::ZeroParameter)
        );
        assert_eq!(
            DragonflyParams::new(2, 4, 0, 9),
            Err(ParamsError::ZeroParameter)
        );
        assert_eq!(
            DragonflyParams::new(2, 4, 2, 0),
            Err(ParamsError::ZeroParameter)
        );
    }

    #[test]
    fn too_many_groups_rejected() {
        let err = DragonflyParams::new(2, 4, 2, 10).unwrap_err();
        assert_eq!(
            err,
            ParamsError::TooManyGroups {
                requested: 10,
                max: 9
            }
        );
        // error message mentions both numbers
        let msg = err.to_string();
        assert!(msg.contains("10") && msg.contains('9'));
    }

    #[test]
    fn single_group_rejected() {
        assert_eq!(
            DragonflyParams::new(2, 4, 2, 1),
            Err(ParamsError::TooFewGroups)
        );
    }

    #[test]
    fn partial_population_allowed() {
        let p = DragonflyParams::new(2, 4, 2, 5).unwrap();
        assert!(!p.is_fully_populated());
        assert_eq!(p.num_groups(), 5);
    }

    #[test]
    fn adversarial_limit_matches_formula() {
        let p = DragonflyParams::paper_table1();
        let lim = p.adversarial_min_throughput_limit();
        assert!((lim - 1.0 / 128.0).abs() < 1e-12);
    }
}
