//! Router ports: numbering convention and classification.
//!
//! Every router has `p + (a-1) + h` ports, numbered consecutively:
//!
//! | index range                 | class      | connects to                      |
//! |-----------------------------|------------|----------------------------------|
//! | `0 .. p`                    | terminal   | the `p` compute nodes (injection *and* ejection) |
//! | `p .. p + (a-1)`            | local      | the other `a-1` routers of the group |
//! | `p + (a-1) .. p + (a-1) + h`| global     | routers in other groups          |
//!
//! The *local* port with offset `k` connects to the group-local router whose
//! local index is obtained by skipping the router itself (see
//! [`crate::Dragonfly::local_neighbor`]). The *global* port with offset `k` is
//! the router's `k`-th global link, wired according to the palmtree
//! arrangement.

use crate::params::DragonflyParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// Port attached to a compute node; used for injection and ejection.
    Terminal,
    /// Intra-group link to another router of the same group.
    Local,
    /// Inter-group (global) link.
    Global,
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortClass::Terminal => write!(f, "terminal"),
            PortClass::Local => write!(f, "local"),
            PortClass::Global => write!(f, "global"),
        }
    }
}

/// A port index within a router (0-based, covering all classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u32);

impl Port {
    /// Raw index as `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build the terminal port for local node offset `k` (`0 <= k < p`).
    #[inline]
    pub fn terminal(k: u32) -> Port {
        Port(k)
    }

    /// Build the local port with offset `k` (`0 <= k < a-1`).
    #[inline]
    pub fn local(params: &DragonflyParams, k: u32) -> Port {
        debug_assert!(k < params.a - 1);
        Port(params.p + k)
    }

    /// Build the global port with offset `k` (`0 <= k < h`).
    #[inline]
    pub fn global(params: &DragonflyParams, k: u32) -> Port {
        debug_assert!(k < params.h);
        Port(params.p + (params.a - 1) + k)
    }

    /// Classify this port under the given topology parameters.
    #[inline]
    pub fn class(self, params: &DragonflyParams) -> PortClass {
        let p = params.p;
        let a = params.a;
        if self.0 < p {
            PortClass::Terminal
        } else if self.0 < p + (a - 1) {
            PortClass::Local
        } else {
            debug_assert!(self.0 < params.radix(), "port {} out of radix", self.0);
            PortClass::Global
        }
    }

    /// Offset of this port within its class (e.g. the 3rd global port has
    /// offset 2).
    #[inline]
    pub fn class_offset(self, params: &DragonflyParams) -> u32 {
        match self.class(params) {
            PortClass::Terminal => self.0,
            PortClass::Local => self.0 - params.p,
            PortClass::Global => self.0 - params.p - (params.a - 1),
        }
    }

    /// Iterator over all ports of a router with the given parameters.
    pub fn all(params: &DragonflyParams) -> impl Iterator<Item = Port> {
        (0..params.radix()).map(Port)
    }

    /// Iterator over the terminal ports.
    pub fn terminals(params: &DragonflyParams) -> impl Iterator<Item = Port> {
        (0..params.p).map(Port)
    }

    /// Iterator over the local ports.
    pub fn locals(params: &DragonflyParams) -> impl Iterator<Item = Port> {
        let p = params.p;
        (0..params.a - 1).map(move |k| Port(p + k))
    }

    /// Iterator over the global ports.
    pub fn globals(params: &DragonflyParams) -> impl Iterator<Item = Port> {
        let base = params.p + params.a - 1;
        (0..params.h).map(move |k| Port(base + k))
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::small() // p=2, a=4, h=2 -> radix 7
    }

    #[test]
    fn classification_covers_all_ranges() {
        let p = params();
        assert_eq!(Port(0).class(&p), PortClass::Terminal);
        assert_eq!(Port(1).class(&p), PortClass::Terminal);
        assert_eq!(Port(2).class(&p), PortClass::Local);
        assert_eq!(Port(4).class(&p), PortClass::Local);
        assert_eq!(Port(5).class(&p), PortClass::Global);
        assert_eq!(Port(6).class(&p), PortClass::Global);
    }

    #[test]
    fn constructors_and_offsets_agree() {
        let p = params();
        for k in 0..p.p {
            let port = Port::terminal(k);
            assert_eq!(port.class(&p), PortClass::Terminal);
            assert_eq!(port.class_offset(&p), k);
        }
        for k in 0..p.a - 1 {
            let port = Port::local(&p, k);
            assert_eq!(port.class(&p), PortClass::Local);
            assert_eq!(port.class_offset(&p), k);
        }
        for k in 0..p.h {
            let port = Port::global(&p, k);
            assert_eq!(port.class(&p), PortClass::Global);
            assert_eq!(port.class_offset(&p), k);
        }
    }

    #[test]
    fn iterators_partition_the_radix() {
        let p = params();
        let all: Vec<_> = Port::all(&p).collect();
        assert_eq!(all.len(), p.radix() as usize);
        let terminals: Vec<_> = Port::terminals(&p).collect();
        let locals: Vec<_> = Port::locals(&p).collect();
        let globals: Vec<_> = Port::globals(&p).collect();
        assert_eq!(
            terminals.len() + locals.len() + globals.len(),
            all.len(),
            "classes partition the radix"
        );
        assert!(terminals.iter().all(|q| q.class(&p) == PortClass::Terminal));
        assert!(locals.iter().all(|q| q.class(&p) == PortClass::Local));
        assert!(globals.iter().all(|q| q.class(&p) == PortClass::Global));
    }

    #[test]
    fn paper_radix_port_layout() {
        let p = DragonflyParams::paper_table1();
        // Table I: 31 ports = 8 injection + 15 local + 8 global.
        assert_eq!(Port::terminals(&p).count(), 8);
        assert_eq!(Port::locals(&p).count(), 15);
        assert_eq!(Port::globals(&p).count(), 8);
        assert_eq!(Port::all(&p).count(), 31);
    }

    #[test]
    fn display_format() {
        assert_eq!(Port(3).to_string(), "p3");
        assert_eq!(PortClass::Global.to_string(), "global");
    }
}
