//! Router ports: numbering convention and classification.
//!
//! Every router's ports are numbered consecutively by class, as described by
//! a [`PortLayout`] (for a Dragonfly: `p` terminals, `a-1` locals, `h`
//! globals):
//!
//! | index range                     | class      | connects to                      |
//! |---------------------------------|------------|----------------------------------|
//! | `0 .. terminals`                | terminal   | the attached compute nodes (injection *and* ejection) |
//! | `terminals .. terminals+locals` | local      | other routers of the group       |
//! | `terminals+locals .. radix`     | global     | routers in other groups          |
//!
//! The *local* port with offset `k` connects to the group-local router given
//! by the topology's wiring (see
//! [`crate::topology::Topology::local_neighbor`]). The *global* port with
//! offset `k` is the router's `k`-th global link.

use crate::layout::PortLayout;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// Port attached to a compute node; used for injection and ejection.
    Terminal,
    /// Intra-group link to another router of the same group.
    Local,
    /// Inter-group (global) link.
    Global,
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortClass::Terminal => write!(f, "terminal"),
            PortClass::Local => write!(f, "local"),
            PortClass::Global => write!(f, "global"),
        }
    }
}

/// A port index within a router (0-based, covering all classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u32);

impl Port {
    /// Raw index as `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build the terminal port for local node offset `k`
    /// (`0 <= k < terminals`).
    #[inline]
    pub fn terminal(k: u32) -> Port {
        Port(k)
    }

    /// Build the local port with offset `k` (`0 <= k < locals`).
    #[inline]
    pub fn local(layout: &impl PortLayout, k: u32) -> Port {
        debug_assert!(k < layout.locals());
        Port(layout.terminals() + k)
    }

    /// Build the global port with offset `k` (`0 <= k < globals`).
    #[inline]
    pub fn global(layout: &impl PortLayout, k: u32) -> Port {
        debug_assert!(k < layout.globals());
        Port(layout.terminals() + layout.locals() + k)
    }

    /// Classify this port under the given layout.
    #[inline]
    pub fn class(self, layout: &impl PortLayout) -> PortClass {
        let t = layout.terminals();
        if self.0 < t {
            PortClass::Terminal
        } else if self.0 < t + layout.locals() {
            PortClass::Local
        } else {
            debug_assert!(self.0 < layout.radix(), "port {} out of radix", self.0);
            PortClass::Global
        }
    }

    /// Offset of this port within its class (e.g. the 3rd global port has
    /// offset 2).
    #[inline]
    pub fn class_offset(self, layout: &impl PortLayout) -> u32 {
        match self.class(layout) {
            PortClass::Terminal => self.0,
            PortClass::Local => self.0 - layout.terminals(),
            PortClass::Global => self.0 - layout.terminals() - layout.locals(),
        }
    }

    /// Iterator over all ports of a router with the given layout.
    pub fn all(layout: &impl PortLayout) -> impl Iterator<Item = Port> {
        (0..layout.radix()).map(Port)
    }

    /// Iterator over the terminal ports.
    pub fn terminals(layout: &impl PortLayout) -> impl Iterator<Item = Port> {
        (0..layout.terminals()).map(Port)
    }

    /// Iterator over the local ports.
    pub fn locals(layout: &impl PortLayout) -> impl Iterator<Item = Port> {
        let t = layout.terminals();
        (0..layout.locals()).map(move |k| Port(t + k))
    }

    /// Iterator over the global ports.
    pub fn globals(layout: &impl PortLayout) -> impl Iterator<Item = Port> {
        let base = layout.terminals() + layout.locals();
        (0..layout.globals()).map(move |k| Port(base + k))
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DragonflyParams;

    fn params() -> DragonflyParams {
        DragonflyParams::small() // p=2, a=4, h=2 -> radix 7
    }

    #[test]
    fn classification_covers_all_ranges() {
        let p = params();
        assert_eq!(Port(0).class(&p), PortClass::Terminal);
        assert_eq!(Port(1).class(&p), PortClass::Terminal);
        assert_eq!(Port(2).class(&p), PortClass::Local);
        assert_eq!(Port(4).class(&p), PortClass::Local);
        assert_eq!(Port(5).class(&p), PortClass::Global);
        assert_eq!(Port(6).class(&p), PortClass::Global);
    }

    #[test]
    fn constructors_and_offsets_agree() {
        let p = params();
        for k in 0..p.p {
            let port = Port::terminal(k);
            assert_eq!(port.class(&p), PortClass::Terminal);
            assert_eq!(port.class_offset(&p), k);
        }
        for k in 0..p.a - 1 {
            let port = Port::local(&p, k);
            assert_eq!(port.class(&p), PortClass::Local);
            assert_eq!(port.class_offset(&p), k);
        }
        for k in 0..p.h {
            let port = Port::global(&p, k);
            assert_eq!(port.class(&p), PortClass::Global);
            assert_eq!(port.class_offset(&p), k);
        }
    }

    #[test]
    fn iterators_partition_the_radix() {
        let p = params();
        let all: Vec<_> = Port::all(&p).collect();
        assert_eq!(all.len(), p.radix() as usize);
        let terminals: Vec<_> = Port::terminals(&p).collect();
        let locals: Vec<_> = Port::locals(&p).collect();
        let globals: Vec<_> = Port::globals(&p).collect();
        assert_eq!(
            terminals.len() + locals.len() + globals.len(),
            all.len(),
            "classes partition the radix"
        );
        assert!(terminals.iter().all(|q| q.class(&p) == PortClass::Terminal));
        assert!(locals.iter().all(|q| q.class(&p) == PortClass::Local));
        assert!(globals.iter().all(|q| q.class(&p) == PortClass::Global));
    }

    #[test]
    fn paper_radix_port_layout() {
        let p = DragonflyParams::paper_table1();
        // Table I: 31 ports = 8 injection + 15 local + 8 global.
        assert_eq!(Port::terminals(&p).count(), 8);
        assert_eq!(Port::locals(&p).count(), 15);
        assert_eq!(Port::globals(&p).count(), 8);
        assert_eq!(Port::all(&p).count(), 31);
    }

    #[test]
    fn display_format() {
        assert_eq!(Port(3).to_string(), "p3");
        assert_eq!(PortClass::Global.to_string(), "global");
    }
}
