//! [`PortLayout`]: the per-router port numbering contract shared by every
//! topology.
//!
//! All topologies in this crate number the ports of a router consecutively
//! by class — terminals first, then locals, then globals — so a port index
//! can be classified with two comparisons and no per-topology tables. The
//! [`PortLayout`] trait exposes the three class widths; [`Port`]
//! constructors and classifiers are generic over it, so the same `Port`
//! arithmetic serves a Dragonfly (`p + (a-1) + h` ports), a Megafly
//! (`p + s + h` ports, padded uniformly across leaves and spines) and any
//! future instance.
//!
//! [`Port`]: crate::port::Port

use serde::{Deserialize, Serialize};

/// The port-class widths of one router: how many terminal, local and global
/// port indices its numbering reserves.
///
/// Implementations must keep the three widths constant for the lifetime of
/// the value — `Port` indices computed against a layout are only meaningful
/// against that same layout.
pub trait PortLayout {
    /// Number of terminal (node-facing) port indices.
    fn terminals(&self) -> u32;
    /// Number of local (intra-group) port indices.
    fn locals(&self) -> u32;
    /// Number of global (inter-group) port indices.
    fn globals(&self) -> u32;

    /// Total number of port indices (`terminals + locals + globals`).
    #[inline]
    fn radix(&self) -> u32 {
        self.terminals() + self.locals() + self.globals()
    }
}

/// A plain-data [`PortLayout`]: the three class widths as a `Copy` struct.
///
/// This is what [`Topology::layout`](crate::topology::Topology::layout)
/// returns, so generic code can classify ports without keeping the concrete
/// parameter struct around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RadixLayout {
    /// Terminal port indices (`0 .. terminals`).
    pub terminals: u32,
    /// Local port indices (`terminals .. terminals + locals`).
    pub locals: u32,
    /// Global port indices (`terminals + locals .. radix`).
    pub globals: u32,
}

impl PortLayout for RadixLayout {
    #[inline]
    fn terminals(&self) -> u32 {
        self.terminals
    }
    #[inline]
    fn locals(&self) -> u32 {
        self.locals
    }
    #[inline]
    fn globals(&self) -> u32 {
        self.globals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sums_the_classes() {
        let l = RadixLayout {
            terminals: 2,
            locals: 3,
            globals: 2,
        };
        assert_eq!(l.terminals(), 2);
        assert_eq!(l.locals(), 3);
        assert_eq!(l.globals(), 2);
        assert_eq!(l.radix(), 7);
    }
}
