//! The [`Dragonfly`] topology object: coordinates, wiring and neighbour
//! queries.
//!
//! # Wiring convention (palmtree arrangement)
//!
//! Within a group the `a` routers form a complete graph over their local
//! ports. Between groups, the *palmtree* arrangement of Camarero et al.
//! (TACO'14) is used, the same arrangement as the paper's Table I:
//!
//! * the global link with **group-level index** `j = r*h + k` (router local
//!   index `r`, global-port offset `k`) of group `G` connects to group
//!   `(G + j + 1) mod (a*h + 1)`;
//! * the peer end of that link is the global link with group-level index
//!   `a*h - 1 - j` of the destination group.
//!
//! This wiring is symmetric (following a link forth and back returns to the
//! same router/port) and, for any pair of distinct groups, provides exactly
//! one connecting global link, which keeps minimal routes unique — the
//! property the paper relies on to associate one contention counter with the
//! minimal path of each packet.
//!
//! Partially-populated networks (`groups < a*h + 1`) are supported: the same
//! formula is used and ports whose peer group does not exist are reported as
//! unconnected.

use crate::ids::{GroupId, NodeId, RouterId};
use crate::params::{DragonflyParams, ParamsError};
use crate::port::{Port, PortClass};
use serde::{Deserialize, Serialize};

/// What is attached at the far end of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortPeer {
    /// A compute node (terminal ports).
    Node(NodeId),
    /// Another router, reached through the given port *of that router*.
    Router(RouterId, Port),
    /// The port is not wired (only possible for global ports of
    /// partially-populated networks).
    Unconnected,
}

/// A canonical Dragonfly topology.
///
/// The object is cheap (it stores only the parameters); all queries are
/// computed arithmetically, so it can be freely cloned and shared between
/// routers, traffic generators and routing algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dragonfly {
    params: DragonflyParams,
}

impl Dragonfly {
    /// Build a topology from validated parameters.
    pub fn new(params: DragonflyParams) -> Self {
        Dragonfly { params }
    }

    /// Build a fully-populated canonical Dragonfly from `(p, a, h)`.
    pub fn canonical(p: u32, a: u32, h: u32) -> Result<Self, ParamsError> {
        Ok(Dragonfly::new(DragonflyParams::canonical(p, a, h)?))
    }

    /// Access the sizing parameters.
    #[inline]
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// Total number of compute nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.params.num_nodes()
    }

    /// Total number of routers.
    #[inline]
    pub fn num_routers(&self) -> u32 {
        self.params.num_routers()
    }

    /// Total number of groups.
    #[inline]
    pub fn num_groups(&self) -> u32 {
        self.params.num_groups()
    }

    // ---------------------------------------------------------------------
    // Coordinates
    // ---------------------------------------------------------------------

    /// Router to which a node is attached.
    #[inline]
    pub fn node_router(&self, node: NodeId) -> RouterId {
        RouterId(node.0 / self.params.p)
    }

    /// Terminal port (on its router) through which a node injects/ejects.
    #[inline]
    pub fn node_port(&self, node: NodeId) -> Port {
        Port(node.0 % self.params.p)
    }

    /// Group of a node.
    #[inline]
    pub fn node_group(&self, node: NodeId) -> GroupId {
        self.router_group(self.node_router(node))
    }

    /// Group of a router.
    #[inline]
    pub fn router_group(&self, router: RouterId) -> GroupId {
        GroupId(router.0 / self.params.a)
    }

    /// Local index of a router inside its group (`0 .. a`).
    #[inline]
    pub fn router_local_index(&self, router: RouterId) -> u32 {
        router.0 % self.params.a
    }

    /// Router with the given local index inside the given group.
    #[inline]
    pub fn router_at(&self, group: GroupId, local_index: u32) -> RouterId {
        debug_assert!(local_index < self.params.a);
        RouterId(group.0 * self.params.a + local_index)
    }

    /// Node attached at terminal-port offset `k` of a router.
    #[inline]
    pub fn node_at(&self, router: RouterId, k: u32) -> NodeId {
        debug_assert!(k < self.params.p);
        NodeId(router.0 * self.params.p + k)
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Iterator over all router identifiers.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> {
        (0..self.num_routers()).map(RouterId)
    }

    /// Iterator over all group identifiers.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> {
        (0..self.num_groups()).map(GroupId)
    }

    /// Iterator over the routers of one group.
    pub fn routers_in_group(&self, group: GroupId) -> impl Iterator<Item = RouterId> {
        let a = self.params.a;
        (0..a).map(move |i| RouterId(group.0 * a + i))
    }

    /// Iterator over the nodes attached to one router.
    pub fn nodes_of_router(&self, router: RouterId) -> impl Iterator<Item = NodeId> {
        let p = self.params.p;
        (0..p).map(move |k| NodeId(router.0 * p + k))
    }

    // ---------------------------------------------------------------------
    // Local (intra-group) wiring
    // ---------------------------------------------------------------------

    /// The router reached through local port offset `k` (`0 <= k < a-1`) of
    /// `router`. The complete-graph wiring skips the router itself: offsets
    /// `0..a-1` map to the other routers in increasing local index.
    pub fn local_neighbor(&self, router: RouterId, k: u32) -> RouterId {
        let a = self.params.a;
        debug_assert!(k < a - 1);
        let me = self.router_local_index(router);
        let neighbor_index = if k < me { k } else { k + 1 };
        self.router_at(self.router_group(router), neighbor_index)
    }

    /// The local port of `router` that connects to `neighbor`, which must be a
    /// different router of the same group.
    pub fn local_port_to(&self, router: RouterId, neighbor: RouterId) -> Port {
        debug_assert_eq!(self.router_group(router), self.router_group(neighbor));
        debug_assert_ne!(router, neighbor);
        let me = self.router_local_index(router);
        let other = self.router_local_index(neighbor);
        let k = if other < me { other } else { other - 1 };
        Port::local(&self.params, k)
    }

    // ---------------------------------------------------------------------
    // Global (inter-group) wiring — palmtree arrangement
    // ---------------------------------------------------------------------

    /// Group-level index (`0 .. a*h`) of the global link at global-port offset
    /// `k` of `router`. ECtN partial/combined arrays are indexed by this
    /// value.
    #[inline]
    pub fn global_link_index(&self, router: RouterId, k: u32) -> u32 {
        debug_assert!(k < self.params.h);
        self.router_local_index(router) * self.params.h + k
    }

    /// Inverse of [`global_link_index`](Self::global_link_index): the router
    /// (within `group`) and global-port offset owning group-level link `j`.
    #[inline]
    pub fn global_link_owner(&self, group: GroupId, j: u32) -> (RouterId, Port) {
        debug_assert!(j < self.params.global_links_per_group());
        let r = j / self.params.h;
        let k = j % self.params.h;
        (self.router_at(group, r), Port::global(&self.params, k))
    }

    /// Destination group of group-level global link `j` of `group`, following
    /// the palmtree arrangement. Returns `None` if the peer group is not
    /// populated.
    pub fn global_link_target_group(&self, group: GroupId, j: u32) -> Option<GroupId> {
        debug_assert!(j < self.params.global_links_per_group());
        let virt_groups = self.params.a * self.params.h + 1;
        let dst = (group.0 + j + 1) % virt_groups;
        (dst < self.params.groups).then_some(GroupId(dst))
    }

    /// The router and port at the far end of global-port offset `k` of
    /// `router`, or `None` if the link is unconnected (partially-populated
    /// network).
    pub fn global_neighbor(&self, router: RouterId, k: u32) -> Option<(RouterId, Port)> {
        let group = self.router_group(router);
        let j = self.global_link_index(router, k);
        let dst_group = self.global_link_target_group(group, j)?;
        let j_rev = self.params.global_links_per_group() - 1 - j;
        Some(self.global_link_owner(dst_group, j_rev))
    }

    /// The group-level global link index (`0 .. a*h`) inside `src_group` that
    /// connects directly to `dst_group`.
    ///
    /// Canonical Dragonflies have exactly one such link, which is what lets
    /// the paper associate a single contention counter with the minimal route
    /// towards each remote group.
    pub fn group_link_to(&self, src_group: GroupId, dst_group: GroupId) -> u32 {
        debug_assert_ne!(src_group, dst_group);
        debug_assert!(src_group.0 < self.params.groups && dst_group.0 < self.params.groups);
        let virt_groups = self.params.a * self.params.h + 1;
        (dst_group.0 + virt_groups - src_group.0 - 1) % virt_groups
    }

    /// The router of `src_group` that owns the (unique) global link towards
    /// `dst_group`, together with the global port used.
    pub fn gateway_to(&self, src_group: GroupId, dst_group: GroupId) -> (RouterId, Port) {
        let j = self.group_link_to(src_group, dst_group);
        self.global_link_owner(src_group, j)
    }

    // ---------------------------------------------------------------------
    // Generic neighbour query
    // ---------------------------------------------------------------------

    /// What is attached at the far end of `port` of `router`.
    pub fn peer(&self, router: RouterId, port: Port) -> PortPeer {
        match port.class(&self.params) {
            PortClass::Terminal => {
                PortPeer::Node(self.node_at(router, port.class_offset(&self.params)))
            }
            PortClass::Local => {
                let k = port.class_offset(&self.params);
                let neighbor = self.local_neighbor(router, k);
                let back = self.local_port_to(neighbor, router);
                PortPeer::Router(neighbor, back)
            }
            PortClass::Global => {
                let k = port.class_offset(&self.params);
                match self.global_neighbor(router, k) {
                    Some((neighbor, back)) => PortPeer::Router(neighbor, back),
                    None => PortPeer::Unconnected,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small()) // p=2, a=4, h=2, 9 groups
    }

    #[test]
    fn coordinates_round_trip() {
        let t = df();
        for node in t.nodes() {
            let r = t.node_router(node);
            let port = t.node_port(node);
            assert_eq!(t.node_at(r, port.class_offset(t.params())), node);
        }
        for router in t.routers() {
            let g = t.router_group(router);
            let i = t.router_local_index(router);
            assert_eq!(t.router_at(g, i), router);
        }
    }

    #[test]
    fn local_wiring_is_a_complete_graph() {
        let t = df();
        let a = t.params().a;
        for router in t.routers() {
            let mut seen = std::collections::HashSet::new();
            for k in 0..a - 1 {
                let n = t.local_neighbor(router, k);
                assert_ne!(n, router, "no self-links");
                assert_eq!(t.router_group(n), t.router_group(router));
                seen.insert(n);
            }
            assert_eq!(seen.len(), (a - 1) as usize, "all distinct neighbours");
        }
    }

    #[test]
    fn local_wiring_is_symmetric() {
        let t = df();
        for router in t.routers() {
            for k in 0..t.params().a - 1 {
                let n = t.local_neighbor(router, k);
                let back = t.local_port_to(n, router);
                assert_eq!(t.local_neighbor(n, back.class_offset(t.params())), router);
            }
        }
    }

    #[test]
    fn global_wiring_is_symmetric() {
        let t = df();
        for router in t.routers() {
            for k in 0..t.params().h {
                let (peer, peer_port) = t.global_neighbor(router, k).expect("fully populated");
                let k_back = peer_port.class_offset(t.params());
                let (back, back_port) = t.global_neighbor(peer, k_back).expect("fully populated");
                assert_eq!(back, router, "global link is bidirectional");
                assert_eq!(back_port.class_offset(t.params()), k);
            }
        }
    }

    #[test]
    fn every_pair_of_groups_has_exactly_one_link() {
        let t = df();
        let groups = t.num_groups();
        let mut count = vec![vec![0u32; groups as usize]; groups as usize];
        for router in t.routers() {
            let g = t.router_group(router);
            for k in 0..t.params().h {
                let (peer, _) = t.global_neighbor(router, k).unwrap();
                let pg = t.router_group(peer);
                assert_ne!(pg, g, "global links leave the group");
                count[g.index()][pg.index()] += 1;
            }
        }
        for (g1, row) in count.iter().enumerate() {
            for (g2, &links) in row.iter().enumerate() {
                if g1 == g2 {
                    assert_eq!(links, 0);
                } else {
                    assert_eq!(links, 1, "groups {g1}->{g2} must have one link");
                }
            }
        }
    }

    #[test]
    fn gateway_matches_global_wiring() {
        let t = df();
        for g1 in t.groups() {
            for g2 in t.groups() {
                if g1 == g2 {
                    continue;
                }
                let (gw, port) = t.gateway_to(g1, g2);
                assert_eq!(t.router_group(gw), g1);
                let (peer, _) = t
                    .global_neighbor(gw, port.class_offset(t.params()))
                    .unwrap();
                assert_eq!(t.router_group(peer), g2, "gateway {g1}->{g2} lands in {g2}");
            }
        }
    }

    #[test]
    fn group_link_index_round_trips_with_owner() {
        let t = df();
        for g in t.groups() {
            for j in 0..t.params().global_links_per_group() {
                let (r, port) = t.global_link_owner(g, j);
                assert_eq!(t.router_group(r), g);
                assert_eq!(t.global_link_index(r, port.class_offset(t.params())), j);
            }
        }
    }

    #[test]
    fn peer_covers_all_port_classes() {
        let t = df();
        let r = RouterId(5);
        let params = *t.params();
        let mut nodes = 0;
        let mut routers = 0;
        for port in Port::all(&params) {
            match t.peer(r, port) {
                PortPeer::Node(n) => {
                    assert_eq!(t.node_router(n), r);
                    nodes += 1;
                }
                PortPeer::Router(peer, back) => {
                    // following the back port must return here
                    match t.peer(peer, back) {
                        PortPeer::Router(me, my_port) => {
                            assert_eq!(me, r);
                            assert_eq!(my_port, port);
                        }
                        other => panic!("expected router peer, got {other:?}"),
                    }
                    routers += 1;
                }
                PortPeer::Unconnected => panic!("fully populated network has no dangling ports"),
            }
        }
        assert_eq!(nodes, params.p);
        assert_eq!(routers, params.a - 1 + params.h);
    }

    #[test]
    fn partially_populated_network_has_unconnected_ports() {
        let t = Dragonfly::new(DragonflyParams::new(2, 4, 2, 5).unwrap());
        let mut unconnected = 0;
        for router in t.routers() {
            for k in 0..t.params().h {
                if t.global_neighbor(router, k).is_none() {
                    unconnected += 1;
                }
            }
        }
        assert!(
            unconnected > 0,
            "5 of 9 groups populated leaves dangling links"
        );
        // but all populated group pairs remain connected
        for g1 in t.groups() {
            for g2 in t.groups() {
                if g1 != g2 {
                    let (gw, port) = t.gateway_to(g1, g2);
                    let (peer, _) = t
                        .global_neighbor(gw, port.class_offset(t.params()))
                        .expect("populated pairs stay wired");
                    assert_eq!(t.router_group(peer), g2);
                }
            }
        }
    }

    #[test]
    fn paper_scale_spot_checks() {
        let t = Dragonfly::new(DragonflyParams::paper_table1());
        assert_eq!(t.num_nodes(), 16_512);
        assert_eq!(t.num_routers(), 2_064);
        assert_eq!(t.num_groups(), 129);
        // last node belongs to the last router of the last group
        let last = NodeId(t.num_nodes() - 1);
        assert_eq!(t.node_router(last), RouterId(t.num_routers() - 1));
        assert_eq!(t.node_group(last), GroupId(128));
        // global wiring symmetric for a few routers
        for r in [0u32, 1, 17, 1000, 2063] {
            for k in 0..8 {
                let (peer, pport) = t.global_neighbor(RouterId(r), k).unwrap();
                let (back, _) = t
                    .global_neighbor(peer, pport.class_offset(t.params()))
                    .unwrap();
                assert_eq!(back, RouterId(r));
            }
        }
    }
}
