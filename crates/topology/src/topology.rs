//! The [`Topology`] trait: the network contract the simulator, routers and
//! routing mechanisms are generic over.
//!
//! Everything above this crate — the kernel (`df-sim`), the router model
//! (`df-router`), the routing mechanisms (`df-routing`) and the traffic
//! generators (`df-traffic`) — speaks only this vocabulary:
//!
//! * **Hierarchy maps** — nodes attach to routers, routers form groups;
//!   every map is arithmetic (no tables), so topology objects stay `Copy`.
//! * **Ports by class** — each router's ports follow a [`PortLayout`]
//!   (terminals, then locals, then globals); [`peer`](Topology::peer)
//!   resolves any port to what is wired at its far end.
//! * **Group-level global links** — every group owns
//!   [`global_links_per_group`](Topology::global_links_per_group) global
//!   links, indexed `0..links`, with **exactly one** link between any pair
//!   of populated groups ([`group_link_to`](Topology::group_link_to) /
//!   [`gateway_to`](Topology::gateway_to)). This single-link property is
//!   what lets the paper's mechanisms associate one contention counter and
//!   one PB/ECtN entry with the minimal route towards each remote group.
//! * **A minimal-path oracle** —
//!   [`local_hop_toward`](Topology::local_hop_toward) and
//!   [`local_hops_between`](Topology::local_hops_between) describe minimal
//!   intra-group movement, so the hierarchical minimal route (local* →
//!   global → local*) is derivable generically.
//!
//! Two instances live here: the canonical [`Dragonfly`] (instance #1 — the
//! paper's network; every pre-trait golden fingerprint is byte-identical
//! because the trait impl delegates to the original inherent methods) and
//! the [`Megafly`]/Dragonfly+ (instance #2 — bipartite leaf/spine groups).
//! [`AnyTopology`] is the `Copy` sum type stored in routers, networks and
//! step contexts; [`TopologyParams`] is the matching configuration-level
//! sum the `SimulationConfig` carries.

use crate::dragonfly::{Dragonfly, PortPeer};
use crate::ids::{GroupId, NodeId, RouterId};
use crate::layout::{PortLayout, RadixLayout};
use crate::megafly::{Megafly, MegaflyParams};
use crate::params::DragonflyParams;
use crate::port::Port;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Iterator over a contiguous id range, yielding strongly-typed ids.
///
/// Every id family of every topology in this crate is a contiguous range
/// (Megafly spines simply own an *empty* node range), which keeps the
/// iterators concrete and allocation-free.
pub type IdIter<T> = std::iter::Map<Range<u32>, fn(u32) -> T>;

/// Which concrete network a topology value describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Canonical Dragonfly (complete-graph groups; the paper's network).
    Dragonfly,
    /// Megafly / Dragonfly+ (bipartite leaf/spine groups).
    Megafly,
}

impl TopologyKind {
    /// Every supported kind, in declaration order.
    pub const ALL: [TopologyKind; 2] = [TopologyKind::Dragonfly, TopologyKind::Megafly];

    /// Stable lower-case name, used by CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Dragonfly => "dragonfly",
            TopologyKind::Megafly => "megafly",
        }
    }

    /// Parse a CLI name. Returns `None` for unknown names (callers are
    /// expected to abort loudly, matching the mistyped-scale behavior).
    pub fn from_name(name: &str) -> Option<TopologyKind> {
        match name {
            "dragonfly" | "df" => Some(TopologyKind::Dragonfly),
            "megafly" | "mf" | "dragonfly+" => Some(TopologyKind::Megafly),
            _ => None,
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The network contract: hierarchy maps, port wiring and the minimal-path
/// oracle. See the [module docs](self) for what generic layers may assume.
///
/// Implementations are cheap `Copy` values (parameters only; all queries
/// arithmetic), so they are freely duplicated into routers and per-shard
/// step contexts.
pub trait Topology: Copy + std::fmt::Debug {
    /// Which concrete network this is.
    fn kind(&self) -> TopologyKind;

    /// The per-router port numbering (identical for every router).
    fn layout(&self) -> RadixLayout;

    /// Total number of compute nodes.
    fn num_nodes(&self) -> u32;
    /// Total number of routers.
    fn num_routers(&self) -> u32;
    /// Total number of groups.
    fn num_groups(&self) -> u32;
    /// Routers in each group.
    fn routers_per_group(&self) -> u32;
    /// Compute nodes in each group.
    fn nodes_per_group(&self) -> u32;
    /// Group-level global links leaving each group.
    fn global_links_per_group(&self) -> u32;

    // ------------------------------------------------------------------
    // Coordinates
    // ------------------------------------------------------------------

    /// Router to which a node is attached.
    fn node_router(&self, node: NodeId) -> RouterId;
    /// Terminal port (on its router) through which a node injects/ejects.
    fn node_port(&self, node: NodeId) -> Port;
    /// Group of a router.
    fn router_group(&self, router: RouterId) -> GroupId;
    /// Local index of a router inside its group (`0 .. routers_per_group`).
    fn router_local_index(&self, router: RouterId) -> u32;
    /// Router with the given local index inside the given group.
    fn router_at(&self, group: GroupId, local_index: u32) -> RouterId;
    /// Node attached at terminal-port offset `k` of a router (which must
    /// have attached nodes).
    fn node_at(&self, router: RouterId, k: u32) -> NodeId;
    /// The contiguous range of node ids attached to `router` (empty for
    /// routers without terminals, e.g. Megafly spines).
    fn router_node_span(&self, router: RouterId) -> Range<u32>;

    /// Group of a node.
    #[inline]
    fn node_group(&self, node: NodeId) -> GroupId {
        self.router_group(self.node_router(node))
    }

    /// Iterator over all node identifiers.
    fn nodes(&self) -> IdIter<NodeId> {
        (0..self.num_nodes()).map(NodeId as fn(u32) -> NodeId)
    }

    /// Iterator over all router identifiers.
    fn routers(&self) -> IdIter<RouterId> {
        (0..self.num_routers()).map(RouterId as fn(u32) -> RouterId)
    }

    /// Iterator over all group identifiers.
    fn groups(&self) -> IdIter<GroupId> {
        (0..self.num_groups()).map(GroupId as fn(u32) -> GroupId)
    }

    /// Iterator over the routers of one group (a contiguous id range).
    fn routers_in_group(&self, group: GroupId) -> IdIter<RouterId> {
        let first = group.0 * self.routers_per_group();
        (first..first + self.routers_per_group()).map(RouterId as fn(u32) -> RouterId)
    }

    /// Iterator over the nodes attached to one router.
    fn nodes_of_router(&self, router: RouterId) -> IdIter<NodeId> {
        self.router_node_span(router)
            .map(NodeId as fn(u32) -> NodeId)
    }

    // ------------------------------------------------------------------
    // Local (intra-group) wiring
    // ------------------------------------------------------------------

    /// The router reached through local port offset `k` of `router`.
    fn local_neighbor(&self, router: RouterId, k: u32) -> RouterId;
    /// The local port of `router` that connects to `neighbor`, which must
    /// be **directly wired** to it within the same group.
    fn local_port_to(&self, router: RouterId, neighbor: RouterId) -> Port;

    /// First local hop of the minimal intra-group path from `from` towards
    /// `to` (`from != to`, same group). For a Dragonfly this is
    /// [`local_port_to`](Topology::local_port_to); a Megafly may need an
    /// intermediate hop (leaf→leaf crosses a spine), chosen
    /// deterministically so repeated queries trace one consistent path.
    fn local_hop_toward(&self, from: RouterId, to: RouterId) -> Port;

    /// Length (in hops) of the minimal intra-group path between two routers
    /// of the same group (0 when equal; 1 for a Dragonfly pair; up to 2 in
    /// a Megafly).
    fn local_hops_between(&self, a: RouterId, b: RouterId) -> u32;

    // ------------------------------------------------------------------
    // Global (inter-group) wiring
    // ------------------------------------------------------------------

    /// Group-level index (`0 .. global_links_per_group`) of the global link
    /// at global-port offset `k` of `router` (which must own global links).
    /// ECtN partial/combined arrays and PB flags are indexed by this value.
    fn global_link_index(&self, router: RouterId, k: u32) -> u32;
    /// Inverse of [`global_link_index`](Topology::global_link_index): the
    /// router (within `group`) and global port owning group-level link `j`.
    fn global_link_owner(&self, group: GroupId, j: u32) -> (RouterId, Port);
    /// Destination group of group-level global link `j` of `group`, or
    /// `None` if the peer group is not populated.
    fn global_link_target_group(&self, group: GroupId, j: u32) -> Option<GroupId>;
    /// The router and port at the far end of global-port offset `k` of
    /// `router`, or `None` if the link is unconnected.
    fn global_neighbor(&self, router: RouterId, k: u32) -> Option<(RouterId, Port)>;
    /// The group-level global link index inside `src_group` that connects
    /// directly to `dst_group` (exactly one in every supported topology).
    fn group_link_to(&self, src_group: GroupId, dst_group: GroupId) -> u32;

    /// The router of `src_group` owning the (unique) global link towards
    /// `dst_group`, together with the global port used.
    fn gateway_to(&self, src_group: GroupId, dst_group: GroupId) -> (RouterId, Port) {
        let j = self.group_link_to(src_group, dst_group);
        self.global_link_owner(src_group, j)
    }

    /// What is attached at the far end of `port` of `router`.
    fn peer(&self, router: RouterId, port: Port) -> PortPeer;

    // ------------------------------------------------------------------
    // Routing-mechanism hooks
    // ------------------------------------------------------------------

    /// Number of global links `router` itself owns (Dragonfly: `h` for
    /// every router; Megafly: `h` for spines, 0 for leaves). Bounds the
    /// router's PB own-flag array and its locally-sensed link state.
    fn own_globals(&self, router: RouterId) -> u32;

    /// Number of eligible Valiant intermediate routers per group; the
    /// intermediate with index `k` is `router_at(group, k)`. (Dragonfly:
    /// all `a` routers; Megafly: the `l` leaves — spine intermediates would
    /// overflow the VC ladder.)
    fn intermediates_per_group(&self) -> u32;

    /// Number of local-misroute detour neighbours at `router` (candidate
    /// `k` is `local_neighbor(router, k)`). Zero disables local misrouting
    /// (Megafly: every leaf–leaf path already crosses a deterministically
    /// spread spine, and a detour would exceed the VC ladder).
    fn local_misroute_degree(&self, router: RouterId) -> u32;

    /// Output port of `router` that starts the path towards a nonminimal
    /// candidate global link owned by `gateway` (reached through
    /// `gateway_port` there), or `None` if the candidate is not reachable
    /// within the VC ladder's single pre-global local hop (Megafly:
    /// spine→other-spine candidates are excluded).
    fn candidate_first_hop(
        &self,
        router: RouterId,
        gateway: RouterId,
        gateway_port: Port,
    ) -> Option<Port>;
}

impl Topology for Dragonfly {
    #[inline]
    fn kind(&self) -> TopologyKind {
        TopologyKind::Dragonfly
    }
    #[inline]
    fn layout(&self) -> RadixLayout {
        let p = self.params();
        RadixLayout {
            terminals: p.p,
            locals: p.a - 1,
            globals: p.h,
        }
    }
    #[inline]
    fn num_nodes(&self) -> u32 {
        Dragonfly::num_nodes(self)
    }
    #[inline]
    fn num_routers(&self) -> u32 {
        Dragonfly::num_routers(self)
    }
    #[inline]
    fn num_groups(&self) -> u32 {
        Dragonfly::num_groups(self)
    }
    #[inline]
    fn routers_per_group(&self) -> u32 {
        self.params().a
    }
    #[inline]
    fn nodes_per_group(&self) -> u32 {
        self.params().a * self.params().p
    }
    #[inline]
    fn global_links_per_group(&self) -> u32 {
        self.params().global_links_per_group()
    }
    #[inline]
    fn node_router(&self, node: NodeId) -> RouterId {
        Dragonfly::node_router(self, node)
    }
    #[inline]
    fn node_port(&self, node: NodeId) -> Port {
        Dragonfly::node_port(self, node)
    }
    #[inline]
    fn router_group(&self, router: RouterId) -> GroupId {
        Dragonfly::router_group(self, router)
    }
    #[inline]
    fn router_local_index(&self, router: RouterId) -> u32 {
        Dragonfly::router_local_index(self, router)
    }
    #[inline]
    fn router_at(&self, group: GroupId, local_index: u32) -> RouterId {
        Dragonfly::router_at(self, group, local_index)
    }
    #[inline]
    fn node_at(&self, router: RouterId, k: u32) -> NodeId {
        Dragonfly::node_at(self, router, k)
    }
    #[inline]
    fn router_node_span(&self, router: RouterId) -> Range<u32> {
        let p = self.params().p;
        router.0 * p..(router.0 + 1) * p
    }
    #[inline]
    fn local_neighbor(&self, router: RouterId, k: u32) -> RouterId {
        Dragonfly::local_neighbor(self, router, k)
    }
    #[inline]
    fn local_port_to(&self, router: RouterId, neighbor: RouterId) -> Port {
        Dragonfly::local_port_to(self, router, neighbor)
    }
    #[inline]
    fn local_hop_toward(&self, from: RouterId, to: RouterId) -> Port {
        Dragonfly::local_port_to(self, from, to)
    }
    #[inline]
    fn local_hops_between(&self, a: RouterId, b: RouterId) -> u32 {
        u32::from(a != b)
    }
    #[inline]
    fn global_link_index(&self, router: RouterId, k: u32) -> u32 {
        Dragonfly::global_link_index(self, router, k)
    }
    #[inline]
    fn global_link_owner(&self, group: GroupId, j: u32) -> (RouterId, Port) {
        Dragonfly::global_link_owner(self, group, j)
    }
    #[inline]
    fn global_link_target_group(&self, group: GroupId, j: u32) -> Option<GroupId> {
        Dragonfly::global_link_target_group(self, group, j)
    }
    #[inline]
    fn global_neighbor(&self, router: RouterId, k: u32) -> Option<(RouterId, Port)> {
        Dragonfly::global_neighbor(self, router, k)
    }
    #[inline]
    fn group_link_to(&self, src_group: GroupId, dst_group: GroupId) -> u32 {
        Dragonfly::group_link_to(self, src_group, dst_group)
    }
    #[inline]
    fn gateway_to(&self, src_group: GroupId, dst_group: GroupId) -> (RouterId, Port) {
        Dragonfly::gateway_to(self, src_group, dst_group)
    }
    #[inline]
    fn peer(&self, router: RouterId, port: Port) -> PortPeer {
        Dragonfly::peer(self, router, port)
    }
    #[inline]
    fn own_globals(&self, _router: RouterId) -> u32 {
        self.params().h
    }
    #[inline]
    fn intermediates_per_group(&self) -> u32 {
        self.params().a
    }
    #[inline]
    fn local_misroute_degree(&self, _router: RouterId) -> u32 {
        self.params().a - 1
    }
    #[inline]
    fn candidate_first_hop(
        &self,
        router: RouterId,
        gateway: RouterId,
        gateway_port: Port,
    ) -> Option<Port> {
        Some(if gateway == router {
            gateway_port
        } else {
            Dragonfly::local_port_to(self, router, gateway)
        })
    }
}

/// The `Copy` sum of every supported topology: what routers, networks and
/// step contexts store when the concrete network is chosen at run time.
///
/// `AnyTopology` itself implements [`Topology`] by match-dispatch, so
/// generic code takes `&impl Topology` and works with either a concrete
/// instance or this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnyTopology {
    /// Canonical Dragonfly.
    Dragonfly(Dragonfly),
    /// Megafly / Dragonfly+.
    Megafly(Megafly),
}

impl From<Dragonfly> for AnyTopology {
    fn from(t: Dragonfly) -> Self {
        AnyTopology::Dragonfly(t)
    }
}

impl From<Megafly> for AnyTopology {
    fn from(t: Megafly) -> Self {
        AnyTopology::Megafly(t)
    }
}

impl AnyTopology {
    /// The Dragonfly sizing parameters, for call sites written against the
    /// pre-trait API.
    ///
    /// # Panics
    /// Panics when the topology is not a Dragonfly — reach for
    /// [`Topology::layout`] and the trait queries in topology-generic code.
    pub fn params(&self) -> &DragonflyParams {
        match self {
            AnyTopology::Dragonfly(t) => t.params(),
            AnyTopology::Megafly(_) => {
                panic!("AnyTopology::params(): not a Dragonfly (use Topology::layout)")
            }
        }
    }

    /// The contained Dragonfly, if this is one.
    pub fn as_dragonfly(&self) -> Option<&Dragonfly> {
        match self {
            AnyTopology::Dragonfly(t) => Some(t),
            _ => None,
        }
    }

    /// The contained Megafly, if this is one.
    pub fn as_megafly(&self) -> Option<&Megafly> {
        match self {
            AnyTopology::Megafly(t) => Some(t),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            AnyTopology::Dragonfly($t) => $e,
            AnyTopology::Megafly($t) => $e,
        }
    };
}

impl Topology for AnyTopology {
    #[inline]
    fn kind(&self) -> TopologyKind {
        dispatch!(self, t => t.kind())
    }
    #[inline]
    fn layout(&self) -> RadixLayout {
        dispatch!(self, t => t.layout())
    }
    #[inline]
    fn num_nodes(&self) -> u32 {
        dispatch!(self, t => Topology::num_nodes(t))
    }
    #[inline]
    fn num_routers(&self) -> u32 {
        dispatch!(self, t => Topology::num_routers(t))
    }
    #[inline]
    fn num_groups(&self) -> u32 {
        dispatch!(self, t => Topology::num_groups(t))
    }
    #[inline]
    fn routers_per_group(&self) -> u32 {
        dispatch!(self, t => t.routers_per_group())
    }
    #[inline]
    fn nodes_per_group(&self) -> u32 {
        dispatch!(self, t => t.nodes_per_group())
    }
    #[inline]
    fn global_links_per_group(&self) -> u32 {
        dispatch!(self, t => Topology::global_links_per_group(t))
    }
    #[inline]
    fn node_router(&self, node: NodeId) -> RouterId {
        dispatch!(self, t => Topology::node_router(t, node))
    }
    #[inline]
    fn node_port(&self, node: NodeId) -> Port {
        dispatch!(self, t => Topology::node_port(t, node))
    }
    #[inline]
    fn router_group(&self, router: RouterId) -> GroupId {
        dispatch!(self, t => Topology::router_group(t, router))
    }
    #[inline]
    fn router_local_index(&self, router: RouterId) -> u32 {
        dispatch!(self, t => Topology::router_local_index(t, router))
    }
    #[inline]
    fn router_at(&self, group: GroupId, local_index: u32) -> RouterId {
        dispatch!(self, t => Topology::router_at(t, group, local_index))
    }
    #[inline]
    fn node_at(&self, router: RouterId, k: u32) -> NodeId {
        dispatch!(self, t => Topology::node_at(t, router, k))
    }
    #[inline]
    fn router_node_span(&self, router: RouterId) -> Range<u32> {
        dispatch!(self, t => t.router_node_span(router))
    }
    #[inline]
    fn local_neighbor(&self, router: RouterId, k: u32) -> RouterId {
        dispatch!(self, t => Topology::local_neighbor(t, router, k))
    }
    #[inline]
    fn local_port_to(&self, router: RouterId, neighbor: RouterId) -> Port {
        dispatch!(self, t => Topology::local_port_to(t, router, neighbor))
    }
    #[inline]
    fn local_hop_toward(&self, from: RouterId, to: RouterId) -> Port {
        dispatch!(self, t => t.local_hop_toward(from, to))
    }
    #[inline]
    fn local_hops_between(&self, a: RouterId, b: RouterId) -> u32 {
        dispatch!(self, t => t.local_hops_between(a, b))
    }
    #[inline]
    fn global_link_index(&self, router: RouterId, k: u32) -> u32 {
        dispatch!(self, t => Topology::global_link_index(t, router, k))
    }
    #[inline]
    fn global_link_owner(&self, group: GroupId, j: u32) -> (RouterId, Port) {
        dispatch!(self, t => Topology::global_link_owner(t, group, j))
    }
    #[inline]
    fn global_link_target_group(&self, group: GroupId, j: u32) -> Option<GroupId> {
        dispatch!(self, t => Topology::global_link_target_group(t, group, j))
    }
    #[inline]
    fn global_neighbor(&self, router: RouterId, k: u32) -> Option<(RouterId, Port)> {
        dispatch!(self, t => Topology::global_neighbor(t, router, k))
    }
    #[inline]
    fn group_link_to(&self, src_group: GroupId, dst_group: GroupId) -> u32 {
        dispatch!(self, t => Topology::group_link_to(t, src_group, dst_group))
    }
    #[inline]
    fn gateway_to(&self, src_group: GroupId, dst_group: GroupId) -> (RouterId, Port) {
        dispatch!(self, t => Topology::gateway_to(t, src_group, dst_group))
    }
    #[inline]
    fn peer(&self, router: RouterId, port: Port) -> PortPeer {
        dispatch!(self, t => Topology::peer(t, router, port))
    }
    #[inline]
    fn own_globals(&self, router: RouterId) -> u32 {
        dispatch!(self, t => t.own_globals(router))
    }
    #[inline]
    fn intermediates_per_group(&self) -> u32 {
        dispatch!(self, t => t.intermediates_per_group())
    }
    #[inline]
    fn local_misroute_degree(&self, router: RouterId) -> u32 {
        dispatch!(self, t => t.local_misroute_degree(router))
    }
    #[inline]
    fn candidate_first_hop(
        &self,
        router: RouterId,
        gateway: RouterId,
        gateway_port: Port,
    ) -> Option<Port> {
        dispatch!(self, t => t.candidate_first_hop(router, gateway, gateway_port))
    }
}

/// Configuration-level sum of the supported topologies' sizing parameters:
/// what a `SimulationConfig` carries, and what
/// [`build`](TopologyParams::build) lowers into an [`AnyTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyParams {
    /// Canonical Dragonfly `(p, a, h, groups)`.
    Dragonfly(DragonflyParams),
    /// Megafly / Dragonfly+ `(p, l, s, h, groups)`.
    Megafly(MegaflyParams),
}

impl From<DragonflyParams> for TopologyParams {
    fn from(p: DragonflyParams) -> Self {
        TopologyParams::Dragonfly(p)
    }
}

impl From<MegaflyParams> for TopologyParams {
    fn from(p: MegaflyParams) -> Self {
        TopologyParams::Megafly(p)
    }
}

impl TopologyParams {
    /// Which network these parameters size.
    pub fn kind(&self) -> TopologyKind {
        match self {
            TopologyParams::Dragonfly(_) => TopologyKind::Dragonfly,
            TopologyParams::Megafly(_) => TopologyKind::Megafly,
        }
    }

    /// Build the topology object.
    pub fn build(&self) -> AnyTopology {
        match *self {
            TopologyParams::Dragonfly(p) => AnyTopology::Dragonfly(Dragonfly::new(p)),
            TopologyParams::Megafly(p) => AnyTopology::Megafly(Megafly::new(p)),
        }
    }

    /// Total number of compute nodes.
    pub fn num_nodes(&self) -> u32 {
        match self {
            TopologyParams::Dragonfly(p) => p.num_nodes(),
            TopologyParams::Megafly(p) => p.num_nodes(),
        }
    }

    /// Total number of routers.
    pub fn num_routers(&self) -> u32 {
        match self {
            TopologyParams::Dragonfly(p) => p.num_routers(),
            TopologyParams::Megafly(p) => p.num_routers(),
        }
    }

    /// Total number of groups.
    pub fn num_groups(&self) -> u32 {
        match self {
            TopologyParams::Dragonfly(p) => p.num_groups(),
            TopologyParams::Megafly(p) => p.num_groups(),
        }
    }

    /// Compute nodes per group.
    pub fn nodes_per_group(&self) -> u32 {
        match self {
            TopologyParams::Dragonfly(p) => p.a * p.p,
            TopologyParams::Megafly(p) => p.nodes_per_group(),
        }
    }

    /// Router radix.
    pub fn radix(&self) -> u32 {
        self.layout().radix()
    }

    /// The per-router port layout.
    pub fn layout(&self) -> RadixLayout {
        match self {
            TopologyParams::Dragonfly(p) => RadixLayout {
                terminals: p.p,
                locals: p.a - 1,
                globals: p.h,
            },
            TopologyParams::Megafly(p) => p.layout(),
        }
    }

    /// The Dragonfly parameters, for call sites written against the
    /// pre-trait API.
    ///
    /// # Panics
    /// Panics when the parameters are not a Dragonfly's.
    pub fn dragonfly(&self) -> &DragonflyParams {
        match self {
            TopologyParams::Dragonfly(p) => p,
            TopologyParams::Megafly(_) => {
                panic!("TopologyParams::dragonfly(): not a Dragonfly parameter set")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::PortClass;

    /// The trait impl must agree with the inherent Dragonfly methods on
    /// every query — this is the byte-identity argument for the refactor.
    #[test]
    fn dragonfly_trait_matches_inherent_surface() {
        let t = Dragonfly::new(DragonflyParams::small());
        let any = AnyTopology::from(t);
        assert_eq!(any.kind(), TopologyKind::Dragonfly);
        assert_eq!(Topology::num_nodes(&any), t.num_nodes());
        assert_eq!(Topology::num_routers(&any), t.num_routers());
        assert_eq!(Topology::num_groups(&any), t.num_groups());
        assert_eq!(any.layout().radix(), t.params().radix());
        for node in t.nodes() {
            assert_eq!(Topology::node_router(&any, node), t.node_router(node));
            assert_eq!(Topology::node_port(&any, node), t.node_port(node));
            assert_eq!(Topology::node_group(&any, node), t.node_group(node));
        }
        for router in t.routers() {
            assert_eq!(any.own_globals(router), t.params().h);
            assert_eq!(
                any.nodes_of_router(router).collect::<Vec<_>>(),
                t.nodes_of_router(router).collect::<Vec<_>>()
            );
            for k in 0..t.params().a - 1 {
                let n = Topology::local_neighbor(&any, router, k);
                assert_eq!(n, t.local_neighbor(router, k));
                assert_eq!(any.local_hop_toward(router, n), t.local_port_to(router, n));
                assert_eq!(any.local_hops_between(router, n), 1);
            }
            assert_eq!(any.local_hops_between(router, router), 0);
            for k in 0..t.params().h {
                assert_eq!(
                    Topology::global_neighbor(&any, router, k),
                    t.global_neighbor(router, k)
                );
            }
            for port in Port::all(t.params()) {
                assert_eq!(Topology::peer(&any, router, port), t.peer(router, port));
            }
        }
        for g1 in t.groups() {
            for g2 in t.groups() {
                if g1 != g2 {
                    assert_eq!(Topology::gateway_to(&any, g1, g2), t.gateway_to(g1, g2));
                    assert_eq!(
                        Topology::group_link_to(&any, g1, g2),
                        t.group_link_to(g1, g2)
                    );
                }
            }
        }
    }

    #[test]
    fn dragonfly_candidate_first_hop_is_always_reachable() {
        let t = Dragonfly::new(DragonflyParams::small());
        let router = RouterId(1);
        for j in 0..t.params().global_links_per_group() {
            let (gw, gport) = t.global_link_owner(GroupId(0), j);
            let hop = t.candidate_first_hop(router, gw, gport).unwrap();
            if gw == router {
                assert_eq!(hop, gport);
            } else {
                assert_eq!(hop.class(t.params()), PortClass::Local);
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TopologyKind::from_name("df"), Some(TopologyKind::Dragonfly));
        assert_eq!(
            TopologyKind::from_name("dragonfly+"),
            Some(TopologyKind::Megafly)
        );
        assert_eq!(TopologyKind::from_name("torus"), None);
        assert_eq!(TopologyKind::Megafly.to_string(), "megafly");
    }

    #[test]
    fn topology_params_delegate_and_build() {
        let dfp = TopologyParams::from(DragonflyParams::small());
        assert_eq!(dfp.kind(), TopologyKind::Dragonfly);
        assert_eq!(dfp.num_nodes(), 72);
        assert_eq!(dfp.nodes_per_group(), 8);
        assert_eq!(dfp.radix(), 7);
        assert!(dfp.build().as_dragonfly().is_some());

        let mfp = TopologyParams::from(MegaflyParams::small());
        assert_eq!(mfp.kind(), TopologyKind::Megafly);
        assert!(mfp.build().as_megafly().is_some());
    }

    #[test]
    #[should_panic(expected = "not a Dragonfly")]
    fn params_compat_accessor_panics_for_megafly() {
        let any = AnyTopology::from(Megafly::new(MegaflyParams::small()));
        let _ = any.params();
    }
}
