//! Strongly-typed identifiers for topology entities.
//!
//! All identifiers wrap a `u32` (the paper-scale network has 16,512 nodes and
//! 2,064 routers, far below `u32::MAX`) and are ordered, hashable and
//! serde-serialisable so they can be used as indices, map keys and in
//! experiment dumps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute node (an injection/consumption endpoint).
///
/// Nodes are numbered globally, router-major: node `n` attaches to router
/// `n / p` at injection port index `n % p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a router.
///
/// Routers are numbered globally, group-major: router `r` belongs to group
/// `r / a` and has local index `r % a` within that group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Identifier of a Dragonfly group (a first-level complete graph of `a`
/// routers plus their `a*p` nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl NodeId {
    /// Raw index as `usize`, for indexing into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// Raw index as `usize`, for indexing into per-router vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GroupId {
    /// Raw index as `usize`, for indexing into per-group vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for RouterId {
    fn from(v: u32) -> Self {
        RouterId(v)
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats_are_prefixed() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(GroupId(0).to_string(), "g0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(RouterId(10) > RouterId(9));
        let set: HashSet<GroupId> = [GroupId(1), GroupId(1), GroupId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(RouterId::from(5).index(), 5);
        assert_eq!(GroupId::from(9).index(), 9);
    }
}
