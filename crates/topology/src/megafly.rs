//! The [`Megafly`] (Dragonfly+) topology: bipartite leaf/spine groups.
//!
//! A Megafly group is a complete bipartite graph between `l` **leaf**
//! routers (each attaching `p` compute nodes, no global links) and `s`
//! **spine** routers (each owning `h` global links, no nodes). Groups are
//! connected by the same *palmtree* arrangement as the canonical Dragonfly,
//! over the `s*h` group-level global links, so there is exactly one global
//! link between every pair of populated groups and at most `s*h + 1`
//! groups.
//!
//! # Numbering
//!
//! * Routers of a group are numbered leaves first: local indices `0..l` are
//!   leaves, `l..l+s` are spines. Global router ids are
//!   `group * (l+s) + local_index`.
//! * Nodes are dense: leaf `i` of group `G` attaches nodes
//!   `(G*l + i)*p .. (G*l + i + 1)*p`, so node ids cover `0..p*l*groups`
//!   with no spine-shaped holes.
//! * Every router uses the same padded [`PortLayout`]: `p` terminal
//!   indices (unconnected on spines), `s` local indices, `h` global
//!   indices (unconnected on leaves). The uniform radix keeps the router
//!   model's flat port arrays and the snapshot wire format identical in
//!   shape to the Dragonfly's.
//!
//! # Minimal paths and spreading
//!
//! A leaf-to-leaf path within a group crosses one spine; the spine is
//! chosen deterministically as `(src_leaf + dst_leaf) mod s`, which spreads
//! distinct pairs over distinct spines while keeping the oracle
//! self-consistent (following the first hop and re-querying continues the
//! same path). Spine-to-spine movement crosses leaf
//! `(src_spine + dst_spine) mod l` the same way. The balanced `l == s`
//! block shape is enforced at construction.

use crate::dragonfly::PortPeer;
use crate::ids::{GroupId, NodeId, RouterId};
use crate::layout::{PortLayout, RadixLayout};
use crate::port::{Port, PortClass};
use crate::topology::{Topology, TopologyKind};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Sizing parameters of a Megafly / Dragonfly+ network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MegaflyParams {
    /// Compute nodes attached to each leaf router.
    pub p: u32,
    /// Leaf routers in each group.
    pub l: u32,
    /// Spine routers in each group (must equal `l`: balanced blocks).
    pub s: u32,
    /// Global links per spine router.
    pub h: u32,
    /// Number of groups actually populated (`<= s*h + 1`).
    pub groups: u32,
}

/// Error produced when constructing invalid [`MegaflyParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MegaflyParamsError {
    /// One of `p`, `l`, `s`, `h` or `groups` was zero.
    ZeroParameter,
    /// `l != s`: only balanced bipartite blocks are supported (the uniform
    /// padded port layout and the VC-ladder argument both rely on it).
    UnbalancedBlock {
        /// Leaves requested.
        l: u32,
        /// Spines requested.
        s: u32,
    },
    /// More groups were requested than the `s*h + 1` the palmtree wiring
    /// supports.
    TooManyGroups {
        /// Groups requested.
        requested: u32,
        /// Maximum allowed, `s*h + 1`.
        max: u32,
    },
    /// Fewer than two groups: the global level would be empty.
    TooFewGroups,
}

impl std::fmt::Display for MegaflyParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MegaflyParamsError::ZeroParameter => {
                write!(f, "p, l, s, h and groups must all be non-zero")
            }
            MegaflyParamsError::UnbalancedBlock { l, s } => write!(
                f,
                "Megafly blocks must be balanced (l == s), got l={l}, s={s}"
            ),
            MegaflyParamsError::TooManyGroups { requested, max } => write!(
                f,
                "requested {requested} groups but s*h+1 = {max} is the palmtree maximum"
            ),
            MegaflyParamsError::TooFewGroups => write!(f, "a Megafly needs at least 2 groups"),
        }
    }
}

impl std::error::Error for MegaflyParamsError {}

impl MegaflyParams {
    /// Create a parameter set, validating the balanced-block and palmtree
    /// constraints.
    pub fn new(p: u32, l: u32, s: u32, h: u32, groups: u32) -> Result<Self, MegaflyParamsError> {
        if p == 0 || l == 0 || s == 0 || h == 0 || groups == 0 {
            return Err(MegaflyParamsError::ZeroParameter);
        }
        if l != s {
            return Err(MegaflyParamsError::UnbalancedBlock { l, s });
        }
        if groups < 2 {
            return Err(MegaflyParamsError::TooFewGroups);
        }
        let max = s * h + 1;
        if groups > max {
            return Err(MegaflyParamsError::TooManyGroups {
                requested: groups,
                max,
            });
        }
        Ok(MegaflyParams { p, l, s, h, groups })
    }

    /// Fully-populated Megafly: balanced `l == s` blocks, `groups = l*h+1`.
    pub fn canonical(p: u32, l: u32, h: u32) -> Result<Self, MegaflyParamsError> {
        Self::new(p, l, l, h, l * h + 1)
    }

    /// A small instance for fast tests and CI, sized like the Dragonfly
    /// `small()`: `p=2, l=s=4, h=2`, 9 groups, 72 nodes, 72 routers.
    pub fn small() -> Self {
        Self::canonical(2, 4, 2).expect("small parameters are valid")
    }

    /// A tiny instance where hand-checking paths is feasible:
    /// `p=1, l=s=2, h=1`, 3 groups, 6 nodes, 12 routers.
    pub fn tiny() -> Self {
        Self::canonical(1, 2, 1).expect("tiny parameters are valid")
    }

    /// A medium, laptop-friendly instance sized like the Dragonfly
    /// `medium()`: `p=4, l=s=8, h=4`, 33 groups, 1,056 nodes.
    pub fn medium() -> Self {
        Self::canonical(4, 8, 4).expect("medium parameters are valid")
    }

    /// Number of routers in the whole network (`(l+s) * groups`).
    #[inline]
    pub fn num_routers(&self) -> u32 {
        (self.l + self.s) * self.groups
    }

    /// Number of compute nodes in the whole network (`p*l*groups`).
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.p * self.l * self.groups
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> u32 {
        self.groups
    }

    /// Routers per group (`l + s`).
    #[inline]
    pub fn routers_per_group(&self) -> u32 {
        self.l + self.s
    }

    /// Compute nodes per group (`p*l`).
    #[inline]
    pub fn nodes_per_group(&self) -> u32 {
        self.p * self.l
    }

    /// Router radix of the uniform padded layout (`p + s + h`).
    #[inline]
    pub fn radix(&self) -> u32 {
        self.p + self.s + self.h
    }

    /// Number of global links leaving each group (`s*h`).
    #[inline]
    pub fn global_links_per_group(&self) -> u32 {
        self.s * self.h
    }

    /// Whether the instance is fully populated (`groups == s*h + 1`).
    #[inline]
    pub fn is_fully_populated(&self) -> bool {
        self.groups == self.s * self.h + 1
    }

    /// The uniform padded port layout.
    #[inline]
    pub fn layout(&self) -> RadixLayout {
        RadixLayout {
            terminals: self.p,
            locals: self.s,
            globals: self.h,
        }
    }
}

impl PortLayout for MegaflyParams {
    #[inline]
    fn terminals(&self) -> u32 {
        self.p
    }
    #[inline]
    fn locals(&self) -> u32 {
        self.s
    }
    #[inline]
    fn globals(&self) -> u32 {
        self.h
    }
}

/// A Megafly / Dragonfly+ topology. Like [`Dragonfly`], the object stores
/// only its parameters; every query is arithmetic.
///
/// [`Dragonfly`]: crate::dragonfly::Dragonfly
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Megafly {
    params: MegaflyParams,
}

impl Megafly {
    /// Build a topology from validated parameters.
    pub fn new(params: MegaflyParams) -> Self {
        Megafly { params }
    }

    /// Build a fully-populated balanced Megafly from `(p, l, h)`.
    pub fn canonical(p: u32, l: u32, h: u32) -> Result<Self, MegaflyParamsError> {
        Ok(Megafly::new(MegaflyParams::canonical(p, l, h)?))
    }

    /// Access the sizing parameters.
    #[inline]
    pub fn params(&self) -> &MegaflyParams {
        &self.params
    }

    /// Whether `router` is a leaf (attaches nodes, no global links).
    #[inline]
    pub fn is_leaf(&self, router: RouterId) -> bool {
        Topology::router_local_index(self, router) < self.params.l
    }

    /// Whether `router` is a spine (owns global links, no nodes).
    #[inline]
    pub fn is_spine(&self, router: RouterId) -> bool {
        !self.is_leaf(router)
    }

    /// Dense ordinal of a leaf router among all leaves (`group*l + leaf`);
    /// node ids are `ordinal*p + k`.
    #[inline]
    fn leaf_ordinal(&self, router: RouterId) -> u32 {
        debug_assert!(self.is_leaf(router));
        let group = Topology::router_group(self, router).0;
        group * self.params.l + Topology::router_local_index(self, router)
    }
}

impl Topology for Megafly {
    #[inline]
    fn kind(&self) -> TopologyKind {
        TopologyKind::Megafly
    }

    #[inline]
    fn layout(&self) -> RadixLayout {
        self.params.layout()
    }

    #[inline]
    fn num_nodes(&self) -> u32 {
        self.params.num_nodes()
    }

    #[inline]
    fn num_routers(&self) -> u32 {
        self.params.num_routers()
    }

    #[inline]
    fn num_groups(&self) -> u32 {
        self.params.num_groups()
    }

    #[inline]
    fn routers_per_group(&self) -> u32 {
        self.params.routers_per_group()
    }

    #[inline]
    fn nodes_per_group(&self) -> u32 {
        self.params.nodes_per_group()
    }

    #[inline]
    fn global_links_per_group(&self) -> u32 {
        self.params.global_links_per_group()
    }

    #[inline]
    fn node_router(&self, node: NodeId) -> RouterId {
        let ordinal = node.0 / self.params.p;
        let group = ordinal / self.params.l;
        let leaf = ordinal % self.params.l;
        RouterId(group * self.params.routers_per_group() + leaf)
    }

    #[inline]
    fn node_port(&self, node: NodeId) -> Port {
        Port(node.0 % self.params.p)
    }

    #[inline]
    fn router_group(&self, router: RouterId) -> GroupId {
        GroupId(router.0 / self.params.routers_per_group())
    }

    #[inline]
    fn router_local_index(&self, router: RouterId) -> u32 {
        router.0 % self.params.routers_per_group()
    }

    #[inline]
    fn router_at(&self, group: GroupId, local_index: u32) -> RouterId {
        debug_assert!(local_index < self.params.routers_per_group());
        RouterId(group.0 * self.params.routers_per_group() + local_index)
    }

    #[inline]
    fn node_at(&self, router: RouterId, k: u32) -> NodeId {
        debug_assert!(k < self.params.p);
        NodeId(self.leaf_ordinal(router) * self.params.p + k)
    }

    #[inline]
    fn router_node_span(&self, router: RouterId) -> Range<u32> {
        if self.is_leaf(router) {
            let first = self.leaf_ordinal(router) * self.params.p;
            first..first + self.params.p
        } else {
            0..0
        }
    }

    /// Leaf `i`'s local port `k` reaches spine `k`; spine `j`'s local port
    /// `k` reaches leaf `k` (complete bipartite wiring).
    #[inline]
    fn local_neighbor(&self, router: RouterId, k: u32) -> RouterId {
        debug_assert!(k < self.params.s);
        let group = Topology::router_group(self, router);
        if self.is_leaf(router) {
            Topology::router_at(self, group, self.params.l + k)
        } else {
            Topology::router_at(self, group, k)
        }
    }

    #[inline]
    fn local_port_to(&self, router: RouterId, neighbor: RouterId) -> Port {
        debug_assert_eq!(
            Topology::router_group(self, router),
            Topology::router_group(self, neighbor)
        );
        debug_assert_ne!(
            self.is_leaf(router),
            self.is_leaf(neighbor),
            "only leaf-spine pairs are wired"
        );
        let other = Topology::router_local_index(self, neighbor);
        let offset = if self.is_leaf(router) {
            other - self.params.l
        } else {
            other
        };
        Port::local(&self.params, offset)
    }

    fn local_hop_toward(&self, from: RouterId, to: RouterId) -> Port {
        debug_assert_eq!(
            Topology::router_group(self, from),
            Topology::router_group(self, to)
        );
        debug_assert_ne!(from, to);
        if self.is_leaf(from) != self.is_leaf(to) {
            return Topology::local_port_to(self, from, to);
        }
        // same side: cross the deterministically spread opposite router
        let fi = Topology::router_local_index(self, from);
        let ti = Topology::router_local_index(self, to);
        let offset = if self.is_leaf(from) {
            (fi + ti) % self.params.s
        } else {
            ((fi - self.params.l) + (ti - self.params.l)) % self.params.l
        };
        Port::local(&self.params, offset)
    }

    #[inline]
    fn local_hops_between(&self, a: RouterId, b: RouterId) -> u32 {
        if a == b {
            0
        } else if self.is_leaf(a) != self.is_leaf(b) {
            1
        } else {
            2
        }
    }

    /// Group-level link `j = spine*h + k` for spine-local-index `spine`.
    #[inline]
    fn global_link_index(&self, router: RouterId, k: u32) -> u32 {
        debug_assert!(k < self.params.h);
        debug_assert!(self.is_spine(router), "leaves own no global links");
        (Topology::router_local_index(self, router) - self.params.l) * self.params.h + k
    }

    #[inline]
    fn global_link_owner(&self, group: GroupId, j: u32) -> (RouterId, Port) {
        debug_assert!(j < self.params.global_links_per_group());
        let spine = j / self.params.h;
        let k = j % self.params.h;
        (
            Topology::router_at(self, group, self.params.l + spine),
            Port::global(&self.params, k),
        )
    }

    fn global_link_target_group(&self, group: GroupId, j: u32) -> Option<GroupId> {
        debug_assert!(j < self.params.global_links_per_group());
        let virt_groups = self.params.s * self.params.h + 1;
        let dst = (group.0 + j + 1) % virt_groups;
        (dst < self.params.groups).then_some(GroupId(dst))
    }

    fn global_neighbor(&self, router: RouterId, k: u32) -> Option<(RouterId, Port)> {
        if self.is_leaf(router) {
            return None; // padded global indices of leaves are unwired
        }
        let group = Topology::router_group(self, router);
        let j = Topology::global_link_index(self, router, k);
        let dst_group = Topology::global_link_target_group(self, group, j)?;
        let j_rev = self.params.global_links_per_group() - 1 - j;
        Some(Topology::global_link_owner(self, dst_group, j_rev))
    }

    fn group_link_to(&self, src_group: GroupId, dst_group: GroupId) -> u32 {
        debug_assert_ne!(src_group, dst_group);
        debug_assert!(src_group.0 < self.params.groups && dst_group.0 < self.params.groups);
        let virt_groups = self.params.s * self.params.h + 1;
        (dst_group.0 + virt_groups - src_group.0 - 1) % virt_groups
    }

    fn peer(&self, router: RouterId, port: Port) -> PortPeer {
        match port.class(&self.params) {
            PortClass::Terminal => {
                if self.is_leaf(router) {
                    PortPeer::Node(Topology::node_at(
                        self,
                        router,
                        port.class_offset(&self.params),
                    ))
                } else {
                    PortPeer::Unconnected
                }
            }
            PortClass::Local => {
                let k = port.class_offset(&self.params);
                let neighbor = Topology::local_neighbor(self, router, k);
                let back = Topology::local_port_to(self, neighbor, router);
                PortPeer::Router(neighbor, back)
            }
            PortClass::Global => {
                if self.is_leaf(router) {
                    return PortPeer::Unconnected;
                }
                let k = port.class_offset(&self.params);
                match Topology::global_neighbor(self, router, k) {
                    Some((neighbor, back)) => PortPeer::Router(neighbor, back),
                    None => PortPeer::Unconnected,
                }
            }
        }
    }

    #[inline]
    fn own_globals(&self, router: RouterId) -> u32 {
        if self.is_spine(router) {
            self.params.h
        } else {
            0
        }
    }

    /// Valiant intermediates are the leaves (indices `0..l`): a leaf
    /// intermediate keeps the worst-case path inside the `L0 G0 L1 L2 G1
    /// L3` VC ladder, a spine intermediate would not.
    #[inline]
    fn intermediates_per_group(&self) -> u32 {
        self.params.l
    }

    /// Local misrouting is disabled: any leaf–leaf minimal path already
    /// crosses a spine chosen by the deterministic spreading, and a detour
    /// would add local hops the VC ladder cannot absorb.
    #[inline]
    fn local_misroute_degree(&self, _router: RouterId) -> u32 {
        0
    }

    fn candidate_first_hop(
        &self,
        router: RouterId,
        gateway: RouterId,
        gateway_port: Port,
    ) -> Option<Port> {
        if gateway == router {
            return Some(gateway_port);
        }
        // only candidates one local hop away fit the VC ladder's single
        // pre-global local hop: a leaf reaches every spine, but a spine
        // cannot detour through another spine's global links
        if Topology::local_hops_between(self, router, gateway) == 1 {
            Some(Topology::local_port_to(self, router, gateway))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashSet, VecDeque};

    fn mf() -> Megafly {
        Megafly::new(MegaflyParams::small()) // p=2, l=s=4, h=2, 9 groups
    }

    #[test]
    fn parameter_validation() {
        assert_eq!(
            MegaflyParams::new(0, 4, 4, 2, 9),
            Err(MegaflyParamsError::ZeroParameter)
        );
        assert_eq!(
            MegaflyParams::new(2, 4, 3, 2, 9),
            Err(MegaflyParamsError::UnbalancedBlock { l: 4, s: 3 })
        );
        assert_eq!(
            MegaflyParams::new(2, 4, 4, 2, 10),
            Err(MegaflyParamsError::TooManyGroups {
                requested: 10,
                max: 9
            })
        );
        assert_eq!(
            MegaflyParams::new(2, 4, 4, 2, 1),
            Err(MegaflyParamsError::TooFewGroups)
        );
        let p = MegaflyParams::small();
        assert_eq!(p.num_nodes(), 72);
        assert_eq!(p.num_routers(), 72);
        assert_eq!(p.num_groups(), 9);
        assert_eq!(p.radix(), 8);
        assert_eq!(p.global_links_per_group(), 8);
        assert!(p.is_fully_populated());
    }

    #[test]
    fn coordinates_round_trip() {
        let t = mf();
        for node in t.nodes() {
            let r = t.node_router(node);
            assert!(t.is_leaf(r));
            let port = t.node_port(node);
            assert_eq!(t.node_at(r, port.class_offset(t.params())), node);
        }
        for router in t.routers() {
            let g = Topology::router_group(&t, router);
            let i = Topology::router_local_index(&t, router);
            assert_eq!(Topology::router_at(&t, g, i), router);
            let span = t.router_node_span(router);
            if t.is_leaf(router) {
                assert_eq!(span.len(), t.params().p as usize);
            } else {
                assert!(span.is_empty(), "spines attach no nodes");
            }
        }
        // node ids are dense: every id below num_nodes maps to a leaf
        let mut seen = vec![false; t.num_nodes() as usize];
        for router in t.routers() {
            for node in t.nodes_of_router(router) {
                assert!(!seen[node.index()]);
                seen[node.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "node ids must be dense");
    }

    #[test]
    fn local_wiring_is_bipartite_and_symmetric() {
        let t = mf();
        for router in t.routers() {
            for k in 0..t.params().s {
                let n = Topology::local_neighbor(&t, router, k);
                assert_ne!(n, router);
                assert_eq!(
                    Topology::router_group(&t, n),
                    Topology::router_group(&t, router)
                );
                assert_ne!(
                    t.is_leaf(n),
                    t.is_leaf(router),
                    "bipartite: no same-side links"
                );
                let back = Topology::local_port_to(&t, n, router);
                assert_eq!(
                    Topology::local_neighbor(&t, n, back.class_offset(t.params())),
                    router
                );
            }
        }
    }

    #[test]
    fn global_wiring_is_symmetric_and_spine_only() {
        let t = mf();
        for router in t.routers() {
            if t.is_leaf(router) {
                for port in Port::globals(t.params()) {
                    assert_eq!(t.peer(router, port), PortPeer::Unconnected);
                }
                continue;
            }
            for k in 0..t.params().h {
                let (peer, peer_port) = Topology::global_neighbor(&t, router, k).unwrap();
                assert!(t.is_spine(peer), "global links land on spines");
                let k_back = peer_port.class_offset(t.params());
                let (back, back_port) = Topology::global_neighbor(&t, peer, k_back).unwrap();
                assert_eq!(back, router, "global link is bidirectional");
                assert_eq!(back_port.class_offset(t.params()), k);
            }
        }
    }

    #[test]
    fn every_pair_of_groups_has_exactly_one_link() {
        let t = mf();
        let groups = t.num_groups();
        let mut count = vec![vec![0u32; groups as usize]; groups as usize];
        for router in t.routers() {
            if t.is_leaf(router) {
                continue;
            }
            let g = Topology::router_group(&t, router);
            for k in 0..t.params().h {
                let (peer, _) = Topology::global_neighbor(&t, router, k).unwrap();
                let pg = Topology::router_group(&t, peer);
                assert_ne!(pg, g);
                count[g.index()][pg.index()] += 1;
            }
        }
        for (g1, row) in count.iter().enumerate() {
            for (g2, &links) in row.iter().enumerate() {
                assert_eq!(links, u32::from(g1 != g2), "groups {g1}->{g2}");
            }
        }
    }

    #[test]
    fn gateway_matches_global_wiring() {
        let t = mf();
        for g1 in t.groups() {
            for g2 in t.groups() {
                if g1 == g2 {
                    continue;
                }
                let (gw, port) = Topology::gateway_to(&t, g1, g2);
                assert!(t.is_spine(gw), "gateways are spines");
                assert_eq!(Topology::router_group(&t, gw), g1);
                let (peer, _) =
                    Topology::global_neighbor(&t, gw, port.class_offset(t.params())).unwrap();
                assert_eq!(Topology::router_group(&t, peer), g2);
                // round trip through the link index
                let j = Topology::group_link_to(&t, g1, g2);
                assert_eq!(Topology::global_link_owner(&t, g1, j), (gw, port));
                assert_eq!(
                    Topology::global_link_index(&t, gw, port.class_offset(t.params())),
                    j
                );
            }
        }
    }

    #[test]
    fn peer_round_trips_and_pads_consistently() {
        let t = mf();
        for router in t.routers() {
            let mut nodes = 0;
            let mut routers = 0;
            let mut unconnected = 0;
            for port in Port::all(t.params()) {
                match t.peer(router, port) {
                    PortPeer::Node(n) => {
                        assert_eq!(t.node_router(n), router);
                        nodes += 1;
                    }
                    PortPeer::Router(peer, back) => {
                        match t.peer(peer, back) {
                            PortPeer::Router(me, my_port) => {
                                assert_eq!(me, router);
                                assert_eq!(my_port, port);
                            }
                            other => panic!("expected router peer, got {other:?}"),
                        }
                        routers += 1;
                    }
                    PortPeer::Unconnected => unconnected += 1,
                }
            }
            let p = t.params();
            if t.is_leaf(router) {
                assert_eq!((nodes, routers, unconnected), (p.p, p.s, p.h));
            } else {
                assert_eq!((nodes, routers, unconnected), (0, p.s + p.h, p.p));
            }
        }
    }

    /// BFS distance over the wired ports, for validating the oracle.
    fn bfs_hops(t: &Megafly, from: RouterId, to: RouterId) -> u32 {
        let mut dist = vec![u32::MAX; t.num_routers() as usize];
        let mut queue = VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        while let Some(r) = queue.pop_front() {
            if r == to {
                return dist[r.index()];
            }
            for port in Port::all(t.params()) {
                if let PortPeer::Router(peer, _) = t.peer(r, port) {
                    if dist[peer.index()] == u32::MAX {
                        dist[peer.index()] = dist[r.index()] + 1;
                        queue.push_back(peer);
                    }
                }
            }
        }
        unreachable!("connected network");
    }

    #[test]
    fn local_hop_oracle_is_consistent_and_minimal() {
        let t = mf();
        let group = GroupId(3);
        let routers: Vec<_> = t.routers_in_group(group).collect();
        for &a in &routers {
            for &b in &routers {
                if a == b {
                    assert_eq!(t.local_hops_between(a, b), 0);
                    continue;
                }
                let claimed = t.local_hops_between(a, b);
                assert_eq!(claimed, bfs_hops(&t, a, b), "hops {a}->{b}");
                // follow the oracle: it must reach `b` in exactly `claimed`
                // hops, staying inside the group
                let mut at = a;
                for _ in 0..claimed {
                    let port = t.local_hop_toward(at, b);
                    let PortPeer::Router(next, _) = t.peer(at, port) else {
                        panic!("local hop must reach a router");
                    };
                    assert_eq!(Topology::router_group(&t, next), group);
                    at = next;
                }
                assert_eq!(at, b, "oracle walk {a}->{b} must terminate at {b}");
            }
        }
    }

    #[test]
    fn leaf_pairs_spread_over_distinct_spines() {
        let t = mf();
        // from one source leaf, the spreading spine differs across
        // destination leaves (mod s), so pairs do not pile on one spine
        let leaf0 = RouterId(0);
        let mut spines = HashSet::new();
        for dst_leaf in 1..t.params().l {
            let port = t.local_hop_toward(leaf0, RouterId(dst_leaf));
            let PortPeer::Router(spine, _) = t.peer(leaf0, port) else {
                panic!()
            };
            spines.insert(spine);
        }
        assert_eq!(spines.len(), (t.params().l - 1) as usize);
    }

    #[test]
    fn candidate_first_hops_respect_the_vc_ladder() {
        let t = mf();
        let group = GroupId(0);
        for router in t.routers_in_group(group) {
            for j in 0..t.params().global_links_per_group() {
                let (gw, gport) = Topology::global_link_owner(&t, group, j);
                match t.candidate_first_hop(router, gw, gport) {
                    Some(hop) if gw == router => assert_eq!(hop, gport),
                    Some(hop) => {
                        // exactly one local hop to the gateway
                        assert_eq!(hop.class(t.params()), PortClass::Local);
                        let PortPeer::Router(next, _) = t.peer(router, hop) else {
                            panic!()
                        };
                        assert_eq!(next, gw);
                    }
                    None => {
                        // only spine→other-spine candidates are excluded
                        assert!(t.is_spine(router) && gw != router);
                    }
                }
            }
        }
        // a leaf reaches every candidate; a spine only its own links
        let leaf = RouterId(0);
        let spine = Topology::router_at(&t, group, t.params().l);
        for j in 0..t.params().global_links_per_group() {
            let (gw, gport) = Topology::global_link_owner(&t, group, j);
            assert!(t.candidate_first_hop(leaf, gw, gport).is_some());
            assert_eq!(
                t.candidate_first_hop(spine, gw, gport).is_some(),
                gw == spine
            );
        }
    }

    #[test]
    fn partially_populated_network_has_unconnected_spine_ports() {
        let t = Megafly::new(MegaflyParams::new(2, 4, 4, 2, 5).unwrap());
        let mut unconnected = 0;
        for router in t.routers() {
            if t.is_leaf(router) {
                continue;
            }
            for k in 0..t.params().h {
                if Topology::global_neighbor(&t, router, k).is_none() {
                    unconnected += 1;
                }
            }
        }
        assert!(unconnected > 0, "5 of 9 groups leaves dangling links");
        for g1 in t.groups() {
            for g2 in t.groups() {
                if g1 != g2 {
                    let (gw, port) = Topology::gateway_to(&t, g1, g2);
                    let (peer, _) =
                        Topology::global_neighbor(&t, gw, port.class_offset(t.params()))
                            .expect("populated pairs stay wired");
                    assert_eq!(Topology::router_group(&t, peer), g2);
                }
            }
        }
    }
}
