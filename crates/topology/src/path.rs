//! Router-level path computation helpers.
//!
//! The simulator routes packets hop by hop (decisions are taken at every
//! router, possibly adaptively), so these helpers are **not** used on the data
//! path. They exist to:
//!
//! * verify that hop-by-hop routing reproduces the hierarchical minimal path
//!   (`l? g? l?`) and the Valiant path (`l? g? l? l? g? l?`),
//! * compute path-length distributions for the analytical checks in the
//!   documentation and tests.

use crate::dragonfly::Dragonfly;
use crate::ids::RouterId;
use crate::port::{Port, PortClass};
use serde::{Deserialize, Serialize};

/// The kind of link a hop traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopKind {
    /// Intra-group hop.
    Local,
    /// Inter-group hop.
    Global,
}

/// One hop of a router-level path: the router the hop leaves from, the output
/// port used, and the router it arrives at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathHop {
    /// Router the hop departs from.
    pub from: RouterId,
    /// Output port taken at `from`.
    pub port: Port,
    /// Router the hop arrives at.
    pub to: RouterId,
    /// Link class of the hop.
    pub kind: HopKind,
}

/// Compute the hierarchical minimal path between two routers.
///
/// The canonical Dragonfly minimal path is at most `local, global, local`
/// (`lgl`): a local hop to the gateway router of the source group (if
/// needed), the single global link towards the destination group (if the
/// groups differ), and a local hop to the destination router (if needed).
pub fn minimal_path(topo: &Dragonfly, src: RouterId, dst: RouterId) -> Vec<PathHop> {
    let mut hops = Vec::with_capacity(3);
    if src == dst {
        return hops;
    }
    let src_group = topo.router_group(src);
    let dst_group = topo.router_group(dst);
    let mut current = src;
    if src_group == dst_group {
        hops.push(local_hop(topo, current, dst));
        return hops;
    }
    // 1. reach the gateway router of the source group
    let (gateway, gport) = topo.gateway_to(src_group, dst_group);
    if current != gateway {
        hops.push(local_hop(topo, current, gateway));
        current = gateway;
    }
    // 2. take the global link
    let (entry, _) = topo
        .global_neighbor(current, gport.class_offset(topo.params()))
        .expect("gateway link must be wired between populated groups");
    hops.push(PathHop {
        from: current,
        port: gport,
        to: entry,
        kind: HopKind::Global,
    });
    current = entry;
    // 3. local hop inside the destination group
    if current != dst {
        hops.push(local_hop(topo, current, dst));
    }
    hops
}

/// Compute a Valiant path: minimal to the intermediate router, then minimal to
/// the destination. The caller chooses the intermediate router (typically
/// uniformly at random in a random intermediate group, per the paper's VAL
/// implementation).
pub fn valiant_path(
    topo: &Dragonfly,
    src: RouterId,
    intermediate: RouterId,
    dst: RouterId,
) -> Vec<PathHop> {
    let mut hops = minimal_path(topo, src, intermediate);
    hops.extend(minimal_path(topo, intermediate, dst));
    hops
}

/// Number of local and global hops of a path, `(locals, globals)`.
pub fn hop_census(path: &[PathHop]) -> (usize, usize) {
    let locals = path.iter().filter(|h| h.kind == HopKind::Local).count();
    let globals = path.iter().filter(|h| h.kind == HopKind::Global).count();
    (locals, globals)
}

fn local_hop(topo: &Dragonfly, from: RouterId, to: RouterId) -> PathHop {
    debug_assert_eq!(topo.router_group(from), topo.router_group(to));
    let port = topo.local_port_to(from, to);
    PathHop {
        from,
        port,
        to,
        kind: HopKind::Local,
    }
}

/// Validate that a path is well formed: consecutive hops chain, every hop
/// follows an actual topology link, and the path ends at `dst`.
pub fn validate_path(topo: &Dragonfly, src: RouterId, dst: RouterId, path: &[PathHop]) -> bool {
    let mut current = src;
    for hop in path {
        if hop.from != current {
            return false;
        }
        match hop.port.class(topo.params()) {
            PortClass::Local => {
                if hop.kind != HopKind::Local {
                    return false;
                }
                let n = topo.local_neighbor(current, hop.port.class_offset(topo.params()));
                if n != hop.to {
                    return false;
                }
            }
            PortClass::Global => {
                if hop.kind != HopKind::Global {
                    return false;
                }
                match topo.global_neighbor(current, hop.port.class_offset(topo.params())) {
                    Some((n, _)) if n == hop.to => {}
                    _ => return false,
                }
            }
            PortClass::Terminal => return false,
        }
        current = hop.to;
    }
    current == dst
}

/// Convenience: the ports to traverse, in order (used by oblivious source
/// routing such as VAL and the MIN/VAL source-routing mode of PB).
pub fn path_ports(path: &[PathHop]) -> Vec<Port> {
    path.iter().map(|h| h.port).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DragonflyParams;

    fn df() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small())
    }

    #[test]
    fn same_router_has_empty_path() {
        let t = df();
        assert!(minimal_path(&t, RouterId(3), RouterId(3)).is_empty());
    }

    #[test]
    fn same_group_is_one_local_hop() {
        let t = df();
        let path = minimal_path(&t, RouterId(0), RouterId(2));
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].kind, HopKind::Local);
        assert!(validate_path(&t, RouterId(0), RouterId(2), &path));
    }

    #[test]
    fn minimal_paths_are_at_most_lgl() {
        let t = df();
        for src in t.routers() {
            for dst in t.routers() {
                let path = minimal_path(&t, src, dst);
                assert!(path.len() <= 3, "minimal path {src}->{dst} too long");
                let (l, g) = hop_census(&path);
                assert!(l <= 2 && g <= 1);
                assert!(
                    validate_path(&t, src, dst, &path),
                    "invalid path {src}->{dst}"
                );
                // hierarchical shape: any global hop is preceded only by locals of
                // the source group and followed only by locals of the destination
                if g == 1 {
                    let gpos = path.iter().position(|h| h.kind == HopKind::Global).unwrap();
                    assert!(gpos <= 1);
                    assert!(path.len() - gpos <= 2);
                }
            }
        }
    }

    #[test]
    fn valiant_paths_are_at_most_six_hops_and_valid() {
        let t = df();
        let routers: Vec<_> = t.routers().collect();
        for (i, &src) in routers.iter().enumerate().step_by(5) {
            for (j, &dst) in routers.iter().enumerate().step_by(7) {
                let inter = routers[(i * 13 + j * 7 + 5) % routers.len()];
                let path = valiant_path(&t, src, inter, dst);
                assert!(path.len() <= 6);
                let (l, g) = hop_census(&path);
                assert!(l <= 4 && g <= 2);
                assert!(validate_path(&t, src, dst, &path));
            }
        }
    }

    #[test]
    fn validate_rejects_broken_chains() {
        let t = df();
        let mut path = minimal_path(&t, RouterId(0), RouterId(20));
        assert!(validate_path(&t, RouterId(0), RouterId(20), &path));
        // corrupt the chain
        if path.len() >= 2 {
            path.swap(0, 1);
            assert!(!validate_path(&t, RouterId(0), RouterId(20), &path));
        }
    }

    #[test]
    fn cross_group_minimal_path_uses_the_unique_gateway() {
        let t = df();
        let src = RouterId(0);
        for dst in t.routers() {
            if t.router_group(dst) == t.router_group(src) || dst == src {
                continue;
            }
            let path = minimal_path(&t, src, dst);
            let global_hops: Vec<_> = path.iter().filter(|h| h.kind == HopKind::Global).collect();
            assert_eq!(global_hops.len(), 1);
            let (gw, _) = t.gateway_to(t.router_group(src), t.router_group(dst));
            assert_eq!(global_hops[0].from, gw);
        }
    }

    #[test]
    fn path_ports_matches_hop_count() {
        let t = df();
        let path = minimal_path(&t, RouterId(0), RouterId(35));
        assert_eq!(path_ports(&path).len(), path.len());
    }
}
