//! Criterion benchmarks covering every figure of the paper's evaluation.
//!
//! Each benchmark executes the exact code path the corresponding
//! figure-regeneration binary uses, at the deliberately tiny `Scale::bench()`
//! so `cargo bench` completes quickly. The goal is twofold: keep the harness
//! honest (any regression in simulator throughput shows up here) and provide
//! per-figure cost numbers so users can extrapolate the run time of the
//! `small` / `medium` / `paper` scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::Scale;
use df_model::{BufferConfig, NetworkConfig};
use df_routing::{RoutingConfig, RoutingKind};
use df_sim::{SimulationConfig, SteadyStateExperiment};
use df_traffic::PatternKind;
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale::bench()
}

fn steady_config(routing: RoutingKind, pattern: PatternKind, load: f64) -> SimulationConfig {
    let scale = bench_scale();
    SimulationConfig::builder()
        .topology(scale.topology)
        .network(scale.network)
        .routing(routing)
        .routing_config(RoutingConfig::calibrated_for(
            &scale.topology,
            &scale.network.vcs,
        ))
        .pattern(pattern)
        .offered_load(load)
        .warmup_cycles(scale.warmup)
        .measurement_cycles(scale.measure)
        .seed(1)
        .build()
        .unwrap()
}

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1_500));
}

/// Figure 5a/5b/5c: one steady-state point per routing mechanism under UN and
/// ADV+1 (ADV+h exercises the same path with a different offset).
fn fig5_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_steady_state");
    configure(&mut group);
    for pattern in [PatternKind::Uniform, PatternKind::Adversarial { offset: 1 }] {
        for routing in df_bench::figure5_routings(pattern) {
            let config = steady_config(routing, pattern, 0.2);
            group.bench_with_input(
                BenchmarkId::new(pattern.label(), routing.label()),
                &config,
                |b, cfg| b.iter(|| SteadyStateExperiment::new(cfg.clone()).run()),
            );
        }
    }
    group.finish();
}

/// Figure 5c specifically: the ADV+h pattern (local-link stress).
fn fig5c_advh(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_advh");
    configure(&mut group);
    let h = bench_scale().topology.h;
    for routing in [RoutingKind::Valiant, RoutingKind::Olm, RoutingKind::Base] {
        let config = steady_config(routing, PatternKind::Adversarial { offset: h }, 0.2);
        group.bench_with_input(
            BenchmarkId::from_parameter(routing.label()),
            &config,
            |b, cfg| b.iter(|| SteadyStateExperiment::new(cfg.clone()).run()),
        );
    }
    group.finish();
}

/// Figure 6: the mixed ADV+1/UN pattern.
fn fig6_mixed_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_mixed_traffic");
    configure(&mut group);
    for frac in [0.0, 0.5, 1.0] {
        let config = steady_config(
            RoutingKind::Base,
            PatternKind::Mixed {
                offset: 1,
                uniform_fraction: frac,
            },
            0.35,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pct_un", (frac * 100.0) as u32)),
            &config,
            |b, cfg| b.iter(|| SteadyStateExperiment::new(cfg.clone()).run()),
        );
    }
    group.finish();
}

/// Figures 7a/7b: the UN→ADV+1 transient with Table I buffers.
fn fig7_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_transient");
    configure(&mut group);
    let scale = bench_scale();
    for routing in [RoutingKind::Olm, RoutingKind::Base, RoutingKind::Ectn] {
        group.bench_with_input(
            BenchmarkId::from_parameter(routing.label()),
            &routing,
            |b, &r| b.iter(|| df_bench::transient_run(&scale, r, scale.network, 0.2, 300)),
        );
    }
    group.finish();
}

/// Figure 8: the same transient with the large-buffer configuration.
fn fig8_large_buffers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_large_buffers");
    configure(&mut group);
    let scale = bench_scale();
    let large = NetworkConfig {
        buffers: BufferConfig::large(),
        ..scale.network
    };
    for routing in [RoutingKind::Olm, RoutingKind::Base] {
        group.bench_with_input(
            BenchmarkId::from_parameter(routing.label()),
            &routing,
            |b, &r| b.iter(|| df_bench::transient_run(&scale, r, large, 0.2, 300)),
        );
    }
    group.finish();
}

/// Figure 9: the PB-vs-ECtN oscillation comparison (longer follow window).
fn fig9_oscillation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_oscillation");
    configure(&mut group);
    let scale = bench_scale();
    for routing in [RoutingKind::PiggyBacking, RoutingKind::Ectn] {
        group.bench_with_input(
            BenchmarkId::from_parameter(routing.label()),
            &routing,
            |b, &r| b.iter(|| df_bench::transient_run(&scale, r, scale.network, 0.2, 600)),
        );
    }
    group.finish();
}

/// Figure 10: Base with different misrouting thresholds.
fn fig10_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_threshold");
    configure(&mut group);
    for th in [2u32, 4, 6] {
        let mut config = steady_config(
            RoutingKind::Base,
            PatternKind::Adversarial { offset: 1 },
            0.2,
        );
        config.routing_config = config.routing_config.with_contention_threshold(th);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("th{th}")),
            &config,
            |b, cfg| b.iter(|| SteadyStateExperiment::new(cfg.clone()).run()),
        );
    }
    group.finish();
}

/// Ablation: the design choices called out in DESIGN.md — local misrouting
/// on/off and global-misroute-after-hop on/off.
fn ablation_policy_switches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policy_switches");
    configure(&mut group);
    let variants: [(&str, bool, bool); 3] = [
        ("full_policy", true, true),
        ("no_local_misroute", false, true),
        ("injection_only", true, false),
    ];
    for (name, local, after_hop) in variants {
        let mut config = steady_config(
            RoutingKind::Base,
            PatternKind::Adversarial { offset: 1 },
            0.3,
        );
        config.routing_config.allow_local_misroute = local;
        config.routing_config.allow_global_misroute_after_hop = after_hop;
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| SteadyStateExperiment::new(cfg.clone()).run())
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    fig5_steady_state,
    fig5c_advh,
    fig6_mixed_traffic,
    fig7_transient,
    fig8_large_buffers,
    fig9_oscillation,
    fig10_threshold,
    ablation_policy_switches
);
criterion_main!(figures);
