//! Microbenchmarks of the building blocks on the simulator's critical path:
//! contention-counter updates, routing decisions, topology queries, the
//! separable allocator and the per-cycle simulator step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_engine::DeterministicRng;
use df_model::{NetworkConfig, Packet, PacketId, VcId};
use df_router::{AllocationRequest, Allocator, ContentionCounters, Router};
use df_routing::{RoutingAlgorithm, RoutingConfig, RoutingKind};
use df_sim::events::{Event, EventQueue, LegacyEventQueue};
use df_sim::{KernelMode, Network, SimulationConfig};
use df_topology::{Dragonfly, DragonflyParams, NodeId, Port, RouterId};
use df_traffic::PatternKind;
use std::hint::black_box;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1_000));
}

fn contention_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_counters");
    configure(&mut group);
    group.bench_function("increment_decrement_31_ports", |b| {
        let mut counters = ContentionCounters::new(31);
        b.iter(|| {
            for p in 0..31u32 {
                counters.increment(Port(p));
            }
            for p in 0..31u32 {
                counters.decrement(Port(p));
            }
            black_box(counters.total())
        })
    });
    group.finish();
}

fn topology_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_queries");
    configure(&mut group);
    let topo = Dragonfly::new(DragonflyParams::paper_table1());
    group.bench_function("minimal_output_paper_scale", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7919);
            let r = RouterId(i % topo.num_routers());
            let n = NodeId((i.wrapping_mul(31)) % topo.num_nodes());
            if topo.node_router(n) != r {
                black_box(df_routing::minimal::minimal_output(&topo, r, n));
            }
        })
    });
    group.bench_function("global_neighbor_paper_scale", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(104729);
            let r = RouterId(i % topo.num_routers());
            black_box(topo.global_neighbor(r, i % topo.params().h))
        })
    });
    group.finish();
}

fn routing_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_decisions");
    configure(&mut group);
    let topo = Dragonfly::new(DragonflyParams::medium());
    let config = NetworkConfig::paper_table1();
    let router = Router::new(RouterId(0), topo, config);
    let routing_config = RoutingConfig::calibrated_for(topo.params(), &config.vcs);
    for kind in [
        RoutingKind::Minimal,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Ectn,
    ] {
        let algorithm = RoutingAlgorithm::new(kind, routing_config);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &algorithm,
            |b, alg| {
                let mut rng = DeterministicRng::new(1);
                let packet = Packet::new(PacketId(0), NodeId(0), NodeId(900), 8, 0);
                b.iter(|| black_box(alg.decide(&router, Port(0), &packet, &mut rng)))
            },
        );
    }
    group.finish();
}

fn allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    configure(&mut group);
    group.bench_function("separable_31x31_full_load", |b| {
        let mut alloc = Allocator::new(31);
        let requests: Vec<AllocationRequest> = (0..31u32)
            .flat_map(|ip| {
                (0..3u8).map(move |vc| AllocationRequest {
                    input_port: Port(ip),
                    input_vc: VcId(vc),
                    output_port: Port((ip * 7 + vc as u32) % 31),
                    output_vc: VcId(0),
                    size_phits: 8,
                })
            })
            .collect();
        b.iter(|| black_box(alloc.allocate(&requests, |_, _, _| true).len()))
    });
    group.finish();
}

fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    configure(&mut group);
    let make_event = |i: u32| Event::CreditReturn {
        router: RouterId(i % 64),
        port: Port(i % 31),
        vc: VcId(0),
        phits: 8,
    };
    // steady-state schedule/drain churn at a realistic event density
    group.bench_function("wheel_schedule_drain_1000_cycles", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut q = EventQueue::with_horizon(128);
            for now in 0..1_000u64 {
                for k in 0..4u64 {
                    q.schedule(now + 1 + (now * 7 + k) % 110, make_event((now + k) as u32));
                }
                q.pop_due_into(now, &mut out);
                black_box(out.len());
            }
        })
    });
    group.bench_function("heap_schedule_drain_1000_cycles", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut q = LegacyEventQueue::new();
            for now in 0..1_000u64 {
                for k in 0..4u64 {
                    q.schedule(now + 1 + (now * 7 + k) % 110, make_event((now + k) as u32));
                }
                q.pop_due_into(now, &mut out);
                black_box(out.len());
            }
        })
    });
    // the empty-cycle fast path the low-load simulator leans on
    group.bench_function("wheel_empty_cycles", |b| {
        let mut q = EventQueue::with_horizon(128);
        q.schedule(u64::MAX / 2, make_event(0));
        let mut out = Vec::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            q.pop_due_into(black_box(now), &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

fn simulator_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_step");
    configure(&mut group);
    for (name, params) in [
        ("small_72_nodes", DragonflyParams::small()),
        ("medium_1056_nodes", DragonflyParams::medium()),
    ] {
        for (kernel, kernel_name) in [
            (KernelMode::Optimized, "optimized"),
            (KernelMode::Legacy, "legacy"),
        ] {
            let config = SimulationConfig::builder()
                .topology(params)
                .network(NetworkConfig::paper_table1())
                .routing(RoutingKind::Base)
                .pattern(PatternKind::Uniform)
                .offered_load(0.3)
                .warmup_cycles(0)
                .measurement_cycles(1)
                .seed(1)
                .kernel(kernel)
                .build()
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new("100_cycles", format!("{name}_{kernel_name}")),
                &config,
                |b, cfg| {
                    let mut net = Network::new(cfg.clone());
                    net.run_cycles(200); // reach a loaded steady state once
                    b.iter(|| {
                        net.run_cycles(100);
                        black_box(net.in_flight())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    micro,
    contention_counters,
    topology_queries,
    routing_decisions,
    allocator,
    event_queue,
    simulator_step
);
criterion_main!(micro);
