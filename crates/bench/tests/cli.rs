//! Process-level CLI tests: `Scale::from_args` rejection paths, the
//! `--check-against` perf-regression gate, the figure/table binaries as
//! end-to-end smokes at the tiny `bench` scale, and `bench_parallel`'s
//! undersized-host baseline protection — all exercised on the real
//! binaries (`CARGO_BIN_EXE_*` paths are provided by Cargo for
//! integration tests).

use std::process::Command;

fn bench_kernel() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_kernel"))
}

#[test]
fn mistyped_scale_names_abort_with_exit_2() {
    for bad in ["papper", "paper_smoke", "smal"] {
        let out = bench_kernel()
            .arg(bad)
            .output()
            .expect("spawn bench_kernel");
        assert_eq!(
            out.status.code(),
            Some(2),
            "'{bad}' must abort before benchmarking"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unrecognized scale") && stderr.contains(bad),
            "stderr must explain the rejection: {stderr}"
        );
    }
}

#[test]
fn missing_baseline_aborts_before_benchmarking() {
    let out = bench_kernel()
        .args([
            "small",
            "50",
            "--check-against",
            "/nonexistent/baseline.json",
        ])
        .output()
        .expect("spawn bench_kernel");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn word_like_baseline_paths_are_not_mistaken_for_scale_typos() {
    // the flag's *value* must be exempt from the scale typo-check even
    // when it looks like a bare word: the failure must be about the
    // missing file, not about an "unrecognized scale"
    let out = bench_kernel()
        .args(["small", "50", "--check-against", "somebaseline"])
        .output()
        .expect("spawn bench_kernel");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read baseline") && !stderr.contains("unrecognized scale"),
        "the flag value leaked into scale parsing: {stderr}"
    );
}

/// Run one of the figure/table binaries at the `bench` scale and assert it
/// exits 0 with a rendered table containing `title` on stdout.
fn figure_smoke(exe: &str, args: &[&str], title: &str) {
    let out = Command::new(exe).args(args).output().expect("spawn bin");
    assert!(
        out.status.success(),
        "{exe} {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(title),
        "{exe} stdout must contain '{title}': {stdout}"
    );
    assert!(
        stdout.lines().filter(|l| !l.trim().is_empty()).count() >= 3,
        "{exe} must print a rendered table (title, header, rows): {stdout}"
    );
}

#[test]
fn fig5_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_fig5"), &["bench", "un"], "Figure 5");
}

#[test]
fn fig6_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_fig6"), &["bench"], "Figure 6");
}

#[test]
fn fig7_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_fig7"), &["bench"], "Figure 7");
}

#[test]
fn fig8_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_fig8"), &["bench"], "Figure 8");
}

#[test]
fn fig9_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_fig9"), &["bench"], "Figure 9");
}

#[test]
fn fig10_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_fig10"), &["bench", "un"], "Figure 10");
}

#[test]
fn table1_runs_at_bench_scale() {
    figure_smoke(env!("CARGO_BIN_EXE_table1"), &["bench"], "Table I");
}

#[test]
fn dragonfly_only_figures_reject_topology_selections_with_exit_2() {
    // fig6-fig9 and table1 reproduce figures defined on the paper's
    // canonical Dragonfly: a --topology selection must abort loudly, not
    // silently run a Dragonfly under a misleading flag
    for (exe, bin) in [
        (env!("CARGO_BIN_EXE_fig6"), "fig6"),
        (env!("CARGO_BIN_EXE_fig7"), "fig7"),
        (env!("CARGO_BIN_EXE_fig8"), "fig8"),
        (env!("CARGO_BIN_EXE_fig9"), "fig9"),
        (env!("CARGO_BIN_EXE_table1"), "table1"),
    ] {
        let out = Command::new(exe)
            .args(["bench", "--topology=megafly"])
            .output()
            .expect("spawn figure bin");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bin} must reject --topology before simulating"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(bin) && stderr.contains("Dragonfly-only"),
            "{bin} stderr must name the binary and the reason: {stderr}"
        );
        assert!(
            out.stdout.is_empty(),
            "{bin} must not print a table for a rejected run"
        );
    }
}

#[test]
fn interference_bin_writes_deterministic_csv() {
    let dir = std::env::temp_dir().join(format!("df-bench-interference-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_interference"))
            .current_dir(&dir)
            .args(["bench", "csv"])
            .output()
            .expect("spawn interference");
        assert!(
            out.status.success(),
            "interference bin failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(dir.join("INTERFERENCE.csv")).expect("INTERFERENCE.csv written")
    };
    let first = run();
    assert!(
        first.contains("a2a+a2a") && first.contains("slowdown"),
        "CSV must carry the mix rows and header: {first}"
    );
    // the symmetric bandwidth-heavy pair must show real interference in
    // every routing row: slowdown strictly above 1.0
    for line in first.lines().filter(|l| l.starts_with("a2a+a2a")) {
        let slowdown: f64 = line.split(',').nth(7).unwrap().parse().unwrap();
        assert!(
            slowdown > 1.0,
            "symmetric all-to-all pair must interfere: {line}"
        );
    }
    let second = run();
    assert_eq!(
        first, second,
        "interference runs must be rerun-deterministic"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn collectives_bin_writes_deterministic_csv() {
    let dir = std::env::temp_dir().join(format!("df-bench-collectives-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_collectives"))
            .current_dir(&dir)
            .args(["bench", "csv"])
            .output()
            .expect("spawn collectives");
        assert!(
            out.status.success(),
            "collectives bin failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(dir.join("COLLECTIVES.csv")).expect("COLLECTIVES.csv written")
    };
    let first = run();
    assert!(
        first.contains("all-to-allx16") && first.contains("completion_cycle"),
        "CSV must carry the workload rows and header: {first}"
    );
    let second = run();
    assert_eq!(first, second, "collective runs must be rerun-deterministic");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_parallel_protects_the_baseline_from_undersized_hosts() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // more workers than the host has CPUs, whatever this host is — small
    // enough that the run (40 measured cycles, tiny topology) stays quick
    let workers = format!("workers={}", host * 2);
    let dir = std::env::temp_dir().join(format!("df-bench-undersized-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("BENCH_parallel.json");
    let sentinel = "{\"sentinel\": \"committed baseline\"}\n";
    std::fs::write(&baseline, sentinel).unwrap();

    // without the opt-out flag: the committed baseline survives untouched
    // and the numbers land in a clearly-named advisory side file
    let out = Command::new(env!("CARGO_BIN_EXE_bench_parallel"))
        .current_dir(&dir)
        .args(["bench", "40", &workers])
        .output()
        .expect("spawn bench_parallel");
    assert!(
        out.status.success(),
        "undersized run must still succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("refusing to overwrite") && stdout.contains("advisory"),
        "refusal must be explained on stdout: {stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&baseline).unwrap(),
        sentinel,
        "the committed baseline must not be overwritten"
    );
    let advisory = std::fs::read_to_string(dir.join("BENCH_parallel.advisory.json")).unwrap();
    assert!(
        advisory.contains("\"speedups_advisory\": true")
            && advisory.contains("\"host_available_parallelism\""),
        "the advisory JSON must be marked as such: {advisory}"
    );

    // with the opt-out flag: the baseline is overwritten, but still
    // annotated as advisory so readers cannot mistake it for scaling data
    let out = Command::new(env!("CARGO_BIN_EXE_bench_parallel"))
        .current_dir(&dir)
        .args(["bench", "40", &workers, "allow-undersized-host"])
        .output()
        .expect("spawn bench_parallel");
    assert!(
        out.status.success(),
        "opt-out run must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let overwritten = std::fs::read_to_string(&baseline).unwrap();
    assert_ne!(overwritten, sentinel, "opt-out must write the baseline");
    assert!(
        overwritten.contains("\"speedups_advisory\": true"),
        "even an opted-in undersized run stays annotated: {overwritten}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perf_gate_passes_and_fails_on_crafted_baselines() {
    let dir = std::env::temp_dir().join(format!("df-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let baseline_line = |cps: f64| {
        format!(
            "{{\n  \"runs\": [\n    {{\"kernel\": \"optimized\", \"offered_load\": 0.1, \"wall_seconds\": 1.0, \"cycles_per_sec\": {cps}, \"phits_per_sec\": 1.0, \"delivered_phits\": 1}}\n  ]\n}}\n"
        )
    };

    // a trivially low baseline: any real measurement beats it
    let pass_path = dir.join("baseline_pass.json");
    std::fs::write(&pass_path, baseline_line(0.001)).unwrap();
    let out = bench_kernel()
        .current_dir(&dir)
        .args(["small", "60", "--check-against"])
        .arg(&pass_path)
        .output()
        .expect("spawn bench_kernel");
    assert!(
        out.status.success(),
        "gate must pass against a tiny baseline: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("perf gate"));

    // an absurdly high baseline: no machine reaches it, the gate must fail
    let fail_path = dir.join("baseline_fail.json");
    std::fs::write(&fail_path, baseline_line(1e15)).unwrap();
    let out = bench_kernel()
        .current_dir(&dir)
        .args(["small", "60", "--check-against"])
        .arg(&fail_path)
        .output()
        .expect("spawn bench_kernel");
    assert_eq!(out.status.code(), Some(1), "gate must fail loudly");
    assert!(String::from_utf8_lossy(&out.stderr).contains("perf gate FAILED"));

    let _ = std::fs::remove_dir_all(&dir);
}
