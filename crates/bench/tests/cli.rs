//! Process-level CLI tests: `Scale::from_args` rejection paths and the
//! `--check-against` perf-regression gate, exercised on the real binaries
//! (`CARGO_BIN_EXE_*` paths are provided by Cargo for integration tests).

use std::process::Command;

fn bench_kernel() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_kernel"))
}

#[test]
fn mistyped_scale_names_abort_with_exit_2() {
    for bad in ["papper", "paper_smoke", "smal"] {
        let out = bench_kernel()
            .arg(bad)
            .output()
            .expect("spawn bench_kernel");
        assert_eq!(
            out.status.code(),
            Some(2),
            "'{bad}' must abort before benchmarking"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unrecognized scale") && stderr.contains(bad),
            "stderr must explain the rejection: {stderr}"
        );
    }
}

#[test]
fn missing_baseline_aborts_before_benchmarking() {
    let out = bench_kernel()
        .args([
            "small",
            "50",
            "--check-against",
            "/nonexistent/baseline.json",
        ])
        .output()
        .expect("spawn bench_kernel");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn word_like_baseline_paths_are_not_mistaken_for_scale_typos() {
    // the flag's *value* must be exempt from the scale typo-check even
    // when it looks like a bare word: the failure must be about the
    // missing file, not about an "unrecognized scale"
    let out = bench_kernel()
        .args(["small", "50", "--check-against", "somebaseline"])
        .output()
        .expect("spawn bench_kernel");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read baseline") && !stderr.contains("unrecognized scale"),
        "the flag value leaked into scale parsing: {stderr}"
    );
}

#[test]
fn perf_gate_passes_and_fails_on_crafted_baselines() {
    let dir = std::env::temp_dir().join(format!("df-bench-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let baseline_line = |cps: f64| {
        format!(
            "{{\n  \"runs\": [\n    {{\"kernel\": \"optimized\", \"offered_load\": 0.1, \"wall_seconds\": 1.0, \"cycles_per_sec\": {cps}, \"phits_per_sec\": 1.0, \"delivered_phits\": 1}}\n  ]\n}}\n"
        )
    };

    // a trivially low baseline: any real measurement beats it
    let pass_path = dir.join("baseline_pass.json");
    std::fs::write(&pass_path, baseline_line(0.001)).unwrap();
    let out = bench_kernel()
        .current_dir(&dir)
        .args(["small", "60", "--check-against"])
        .arg(&pass_path)
        .output()
        .expect("spawn bench_kernel");
    assert!(
        out.status.success(),
        "gate must pass against a tiny baseline: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("perf gate"));

    // an absurdly high baseline: no machine reaches it, the gate must fail
    let fail_path = dir.join("baseline_fail.json");
    std::fs::write(&fail_path, baseline_line(1e15)).unwrap();
    let out = bench_kernel()
        .current_dir(&dir)
        .args(["small", "60", "--check-against"])
        .arg(&fail_path)
        .output()
        .expect("spawn bench_kernel");
    assert_eq!(out.status.code(), Some(1), "gate must fail loudly");
    assert!(String::from_utf8_lossy(&out.stderr).contains("perf gate FAILED"));

    let _ = std::fs::remove_dir_all(&dir);
}
