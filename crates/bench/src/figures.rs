//! Figure-regeneration functions: one per table/figure of the paper's
//! evaluation section (§V and §VI-A).
//!
//! Every function returns [`Table`]s whose rows/series mirror what the paper
//! plots; the binaries in `src/bin/` print them, and `EXPERIMENTS.md` records
//! the paper-versus-measured comparison.

use df_engine::Table;
use df_model::NetworkConfig;
use df_routing::{RoutingConfig, RoutingKind};
use df_sim::{
    run_sweep, SimulationConfig, SteadyStateReport, TransientExperiment, TransientReport,
};
use df_traffic::{PatternKind, TrafficSchedule};

use crate::scale::Scale;

/// The mechanisms plotted in Figures 5–8: the oblivious reference (MIN for
/// UN, VAL for ADV) plus the two credit-based and the three contention-based
/// adaptive mechanisms.
pub fn figure5_routings(pattern: PatternKind) -> Vec<RoutingKind> {
    let reference = match pattern {
        PatternKind::Uniform => RoutingKind::Minimal,
        _ => RoutingKind::Valiant,
    };
    vec![
        reference,
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Hybrid,
        RoutingKind::Ectn,
    ]
}

fn base_config(
    scale: &Scale,
    routing: RoutingKind,
    pattern: PatternKind,
    load: f64,
) -> SimulationConfig {
    SimulationConfig::builder()
        .topology(scale.topology)
        .network(scale.network)
        .routing(routing)
        .routing_config(RoutingConfig::calibrated_for(
            &scale.topology,
            &scale.network.vcs,
        ))
        .pattern(pattern)
        .offered_load(load)
        .warmup_cycles(scale.warmup)
        .measurement_cycles(scale.measure)
        .seed(1)
        .build()
        .expect("scale configurations are valid")
}

fn sweep_reports(
    scale: &Scale,
    routings: &[RoutingKind],
    pattern: PatternKind,
    loads: &[f64],
) -> Vec<Vec<SteadyStateReport>> {
    routings
        .iter()
        .map(|&routing| {
            let configs: Vec<SimulationConfig> = loads
                .iter()
                .map(|&load| base_config(scale, routing, pattern, load))
                .collect();
            run_sweep(&configs, scale.seeds, df_sim::num_threads())
        })
        .collect()
}

/// Table I: the simulation parameters of the given scale (the paper's table
/// is reproduced exactly by `Scale::paper()`).
pub fn table1(scale: &Scale) -> Table {
    let t = &scale.topology;
    let n = &scale.network;
    let rc = RoutingConfig::calibrated_for(t, &n.vcs);
    let mut table = Table::new(
        format!("Table I — simulation parameters ({} scale)", scale.name),
        &["parameter", "value"],
    );
    let rows: Vec<(String, String)> = vec![
        (
            "Router size".into(),
            format!(
                "{} ports (h={} global, p={} injection, {} local)",
                t.radix(),
                t.h,
                t.p,
                t.a - 1
            ),
        ),
        (
            "Router latency".into(),
            format!("{} cycles", n.latencies.router_pipeline),
        ),
        (
            "Frequency speedup".into(),
            format!("{}x", n.allocator_speedup),
        ),
        (
            "Group size".into(),
            format!("{} routers, {} computing nodes", t.a, t.a * t.p),
        ),
        (
            "System size".into(),
            format!(
                "{} groups, {} computing nodes",
                t.num_groups(),
                t.num_nodes()
            ),
        ),
        ("Global link arrangement".into(), "Palmtree".into()),
        (
            "Link latency".into(),
            format!(
                "{} (local), {} (global) cycles",
                n.latencies.local_link, n.latencies.global_link
            ),
        ),
        (
            "Virtual channels".into(),
            format!(
                "{} (global ports), {} (injection ports), {} (local ports)",
                n.vcs.global, n.vcs.injection, n.vcs.local
            ),
        ),
        ("Switching".into(), "Virtual Cut-Through".into()),
        (
            "Buffer size (phits)".into(),
            format!(
                "{} (output), {} (local input/VC), {} (global input/VC)",
                n.buffers.output_buffer,
                n.buffers.local_input_per_vc,
                n.buffers.global_input_per_vc
            ),
        ),
        (
            "Packet size".into(),
            format!("{} phits", n.packet_size_phits),
        ),
        (
            "Congestion thresholds".into(),
            format!(
                "{:.0}% (OLM), {:.0}% (Hybrid), T = {} (PB)",
                100.0 * rc.olm_congestion_fraction,
                100.0 * rc.hybrid_congestion_fraction,
                rc.pb_ugal_threshold_packets
            ),
        ),
        (
            "Contention thresholds".into(),
            format!(
                "{} (Base, ECtN), {} (Hybrid), {} (ECtN combined)",
                rc.contention_threshold, rc.hybrid_contention_threshold, rc.ectn_combined_threshold
            ),
        ),
        (
            "ECtN partial update".into(),
            format!("{} cycles", rc.ectn_update_period),
        ),
    ];
    for (k, v) in rows {
        table.push_row(vec![k, v]);
    }
    table
}

/// Figure 5 (a: UN, b: ADV+1, c: ADV+h): average packet latency and accepted
/// load versus offered load, one series per routing mechanism. Returns
/// `(latency_table, throughput_table)`.
pub fn figure5(scale: &Scale, pattern: PatternKind) -> (Table, Table) {
    let routings = figure5_routings(pattern);
    let loads = match pattern {
        PatternKind::Uniform => &scale.uniform_loads,
        _ => &scale.adversarial_loads,
    };
    let all = sweep_reports(scale, &routings, pattern, loads);

    let mut headers: Vec<String> = vec!["offered_load".into()];
    headers.extend(routings.iter().map(|r| r.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut latency = Table::new(
        format!(
            "Figure 5 ({}) — average packet latency (cycles)",
            pattern.label()
        ),
        &header_refs,
    );
    let mut throughput = Table::new(
        format!(
            "Figure 5 ({}) — accepted load (phits/node/cycle)",
            pattern.label()
        ),
        &header_refs,
    );
    for (i, &load) in loads.iter().enumerate() {
        let mut lat_row = vec![load];
        let mut thr_row = vec![load];
        for series in &all {
            lat_row.push(series[i].avg_packet_latency);
            thr_row.push(series[i].accepted_load);
        }
        latency.push_numeric_row(&lat_row, 2);
        throughput.push_numeric_row(&thr_row, 4);
    }
    (latency, throughput)
}

/// Figure 6: average latency under an ADV+1/UN mix at a fixed total load,
/// versus the percentage of uniform traffic.
pub fn figure6(scale: &Scale, total_load: f64) -> Table {
    let routings = [
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Hybrid,
        RoutingKind::Ectn,
    ];
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut headers: Vec<String> = vec!["pct_uniform".into()];
    headers.extend(routings.iter().map(|r| r.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("Figure 6 — latency with mixed ADV+1/UN traffic at load {total_load:.2}"),
        &header_refs,
    );
    for &frac in &fractions {
        let pattern = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: frac,
        };
        let configs: Vec<SimulationConfig> = routings
            .iter()
            .map(|&r| base_config(scale, r, pattern, total_load))
            .collect();
        let reports = run_sweep(&configs, scale.seeds, df_sim::num_threads());
        let mut row = vec![frac * 100.0];
        row.extend(reports.iter().map(|r| r.avg_packet_latency));
        table.push_numeric_row(&row, 2);
    }
    table
}

/// One transient run (UN → ADV+1 at the end of warm-up) for one mechanism.
pub fn transient_run(
    scale: &Scale,
    routing: RoutingKind,
    network: NetworkConfig,
    load: f64,
    follow: u64,
) -> TransientReport {
    let schedule = TrafficSchedule::switch_at(
        PatternKind::Uniform,
        PatternKind::Adversarial { offset: 1 },
        scale.warmup,
    );
    let config = SimulationConfig::builder()
        .topology(scale.topology)
        .network(network)
        .routing(routing)
        .routing_config(RoutingConfig::calibrated_for(&scale.topology, &network.vcs))
        .schedule(schedule)
        .offered_load(load)
        .warmup_cycles(scale.warmup)
        .measurement_cycles(follow)
        .seed(1)
        .build()
        .expect("valid configuration");
    TransientExperiment::new(config, follow).run()
}

/// Figures 7a/7b (and 8, 9 via the `network`/`follow`/`window` arguments):
/// latency and misrouted-percentage evolution after a UN→ADV+1 change.
/// Returns `(latency_table, misroute_table)`.
pub fn figure7(
    scale: &Scale,
    network: NetworkConfig,
    load: f64,
    follow: u64,
    window: i64,
    title: &str,
) -> (Table, Table) {
    let routings = [
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Hybrid,
        RoutingKind::Ectn,
    ];
    let reports: Vec<TransientReport> = routings
        .iter()
        .map(|&r| transient_run(scale, r, network, load, follow))
        .collect();

    let mut headers: Vec<String> = vec!["cycle".into()];
    headers.extend(routings.iter().map(|r| r.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut latency = Table::new(format!("{title} — average latency (cycles)"), &header_refs);
    let mut misroute = Table::new(format!("{title} — misrouted packets (%)"), &header_refs);

    let start = -(window / 4);
    let mut t = start;
    while t < follow as i64 {
        let mut lat_row = vec![t as f64];
        let mut mis_row = vec![t as f64];
        for report in &reports {
            lat_row.push(report.mean_latency_between(t, t + window));
            mis_row.push(report.mean_misroute_between(t, t + window));
        }
        latency.push_numeric_row(&lat_row, 1);
        misroute.push_numeric_row(&mis_row, 1);
        t += window;
    }
    (latency, misroute)
}

/// Figure 9: long-timescale latency evolution for PB versus ECtN, exposing
/// PB's oscillations. Returns the latency table plus a summary table with the
/// post-convergence oscillation amplitude (std-dev of window means).
pub fn figure9(scale: &Scale, load: f64, follow: u64, window: i64) -> (Table, Table) {
    let routings = [RoutingKind::PiggyBacking, RoutingKind::Ectn];
    let reports: Vec<TransientReport> = routings
        .iter()
        .map(|&r| transient_run(scale, r, scale.network, load, follow))
        .collect();
    let mut latency = Table::new(
        "Figure 9 — latency evolution, PB vs ECtN".to_string(),
        &["cycle", "PB", "ECtN"],
    );
    let mut t = 0i64;
    while t < follow as i64 {
        latency.push_numeric_row(
            &[
                t as f64,
                reports[0].mean_latency_between(t, t + window),
                reports[1].mean_latency_between(t, t + window),
            ],
            1,
        );
        t += window;
    }
    let mut summary = Table::new(
        "Figure 9 — post-convergence oscillation (std-dev of window-mean latency)",
        &["routing", "mean latency", "std dev"],
    );
    for report in &reports {
        let mut stats = df_engine::RunningStats::new();
        let mut w = (follow as i64) / 3;
        while w < follow as i64 {
            let m = report.mean_latency_between(w, w + window);
            if m.is_finite() {
                stats.push(m);
            }
            w += window;
        }
        summary.push_row(vec![
            report.routing.label().to_string(),
            format!("{:.1}", stats.mean()),
            format!("{:.2}", stats.std_dev()),
        ]);
    }
    (latency, summary)
}

/// Figure 10 (a: UN, b: ADV+1): sensitivity of Base to the misrouting
/// threshold. Returns `(latency_table, throughput_table)`.
pub fn figure10(scale: &Scale, pattern: PatternKind, thresholds: &[u32]) -> (Table, Table) {
    let loads = match pattern {
        PatternKind::Uniform => &scale.uniform_loads,
        _ => &scale.adversarial_loads,
    };
    let mut headers: Vec<String> = vec!["offered_load".into()];
    headers.extend(thresholds.iter().map(|t| format!("th={t}")));
    let reference = match pattern {
        PatternKind::Uniform => RoutingKind::Minimal,
        _ => RoutingKind::Valiant,
    };
    headers.push(reference.label().to_string());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut latency = Table::new(
        format!(
            "Figure 10 ({}) — Base threshold sensitivity, latency (cycles)",
            pattern.label()
        ),
        &header_refs,
    );
    let mut throughput = Table::new(
        format!(
            "Figure 10 ({}) — Base threshold sensitivity, accepted load (phits/node/cycle)",
            pattern.label()
        ),
        &header_refs,
    );

    // one load sweep per threshold plus the oblivious reference
    let mut series: Vec<Vec<SteadyStateReport>> = thresholds
        .iter()
        .map(|&th| {
            let configs: Vec<SimulationConfig> = loads
                .iter()
                .map(|&load| {
                    let mut c = base_config(scale, RoutingKind::Base, pattern, load);
                    c.routing_config = c.routing_config.with_contention_threshold(th);
                    c
                })
                .collect();
            run_sweep(&configs, scale.seeds, df_sim::num_threads())
        })
        .collect();
    let reference_series = {
        let configs: Vec<SimulationConfig> = loads
            .iter()
            .map(|&load| base_config(scale, reference, pattern, load))
            .collect();
        run_sweep(&configs, scale.seeds, df_sim::num_threads())
    };
    series.push(reference_series);

    for (i, &load) in loads.iter().enumerate() {
        let mut lat_row = vec![load];
        let mut thr_row = vec![load];
        for s in &series {
            lat_row.push(s[i].avg_packet_latency);
            thr_row.push(s[i].accepted_load);
        }
        latency.push_numeric_row(&lat_row, 2);
        throughput.push_numeric_row(&thr_row, 4);
    }
    (latency, throughput)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_sets_match_the_paper_figures() {
        let un = figure5_routings(PatternKind::Uniform);
        assert_eq!(un[0], RoutingKind::Minimal);
        assert_eq!(un.len(), 6);
        let adv = figure5_routings(PatternKind::Adversarial { offset: 1 });
        assert_eq!(adv[0], RoutingKind::Valiant);
    }

    #[test]
    fn table1_lists_every_parameter_row() {
        let t = table1(&Scale::paper());
        assert_eq!(t.num_rows(), 14);
        assert_eq!(
            t.cell(0, 1).unwrap(),
            "31 ports (h=8 global, p=8 injection, 15 local)"
        );
        assert!(t.cell(4, 1).unwrap().contains("129 groups, 16512"));
    }

    #[test]
    fn figure5_bench_scale_produces_full_tables() {
        let scale = Scale::bench();
        let (lat, thr) = figure5(&scale, PatternKind::Uniform);
        assert_eq!(lat.num_rows(), scale.uniform_loads.len());
        assert_eq!(thr.num_rows(), scale.uniform_loads.len());
        assert_eq!(lat.headers().len(), 7);
        // latency numbers are positive and finite at the lowest load
        let first = lat.cell(0, 1).unwrap().parse::<f64>().unwrap();
        assert!(first > 0.0);
    }

    #[test]
    fn figure7_bench_scale_produces_series() {
        let scale = Scale::bench();
        let (lat, mis) = figure7(&scale, scale.network, 0.2, 300, 50, "Figure 7 (bench)");
        assert!(lat.num_rows() > 3);
        assert_eq!(lat.num_rows(), mis.num_rows());
        assert_eq!(lat.headers().len(), 6);
    }
}
