//! # df-bench — figure-regeneration harness
//!
//! One function per table/figure of the paper's evaluation section. Each
//! function sweeps the relevant parameter (offered load, traffic mix,
//! misrouting threshold, time) for the relevant set of routing mechanisms and
//! returns [`Table`]s with the same rows/series the paper plots.
//!
//! The binaries in `src/bin/` (one per figure) print these tables at a
//! selectable scale; the Criterion benches in `benches/` time representative
//! slices of the same code paths.

#![warn(missing_docs)]

pub mod baseline;
pub mod figures;
pub mod kernel_bench;
pub mod scale;

pub use baseline::{
    check_against_anchored_baseline, check_against_baseline, parse_bench_runs, parse_frozen_legacy,
    parse_schema_version, parse_topology, BaselineRun,
};
pub use figures::*;
pub use kernel_bench::{measure_kernel_run, KernelRunMeasurement};
pub use scale::Scale;
