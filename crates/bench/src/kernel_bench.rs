//! Shared harness for the kernel throughput benchmarks.
//!
//! `bench_kernel` (legacy vs optimized) and `bench_parallel` (optimized vs
//! sharded at several worker counts) time the same thing: a warmed-up
//! steady-state run of one configuration, reporting wall-clock and what was
//! delivered. This module is that single measurement so the two binaries
//! cannot drift apart in warmup/measurement/timing methodology.

use df_model::NetworkConfig;
use df_routing::RoutingKind;
use df_sim::{KernelMode, Network, SimulationConfig};
use df_topology::TopologyParams;
use df_traffic::PatternKind;
use std::time::Instant;

/// One timed kernel run: wall-clock plus the delivery figures the
/// benchmark JSONs record (and the bit-identity cross-checks compare).
pub struct KernelRunMeasurement {
    /// Offered load of the run in phits/(node·cycle).
    pub offered_load: f64,
    /// Wall-clock seconds for the measured window.
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Delivered phits per wall-clock second.
    pub phits_per_sec: f64,
    /// Phits delivered inside the measurement window (must be identical
    /// across equivalent kernels).
    pub delivered_phits: u64,
    /// Bit pattern of the mean packet latency (the second half of the
    /// bit-identity cross-check).
    pub latency_bits: u64,
}

/// Run Base routing under uniform traffic at `load` on `topology` with the
/// given `kernel`: warm up, open the measurement window, time `measured`
/// cycles. Seed 1 — fixed, so equivalent kernels must reproduce each other
/// bit for bit.
pub fn measure_kernel_run(
    topology: impl Into<TopologyParams>,
    network: NetworkConfig,
    kernel: KernelMode,
    load: f64,
    warmup: u64,
    measured: u64,
) -> KernelRunMeasurement {
    let config = SimulationConfig::builder()
        .topology(topology)
        .network(network)
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(load)
        .warmup_cycles(warmup)
        .measurement_cycles(measured)
        .seed(1)
        .kernel(kernel)
        .build()
        .expect("valid benchmark configuration");
    let mut net = Network::new(config);
    net.run_cycles(warmup);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    let t0 = Instant::now();
    net.run_cycles(measured);
    let wall = t0.elapsed().as_secs_f64();
    let summary = net.metrics().window_summary();
    KernelRunMeasurement {
        offered_load: load,
        wall_seconds: wall,
        cycles_per_sec: measured as f64 / wall,
        phits_per_sec: summary.delivered_phits as f64 / wall,
        delivered_phits: summary.delivered_phits,
        latency_bits: summary.avg_packet_latency.to_bits(),
    }
}
