//! The perf-regression gate: compare a fresh `bench_kernel` run against a
//! committed `BENCH_kernel.json` baseline.
//!
//! The container has no `serde_json`, and the baseline file is our own
//! writer's output, so a deliberately narrow line-oriented extractor is
//! enough: each run is one line of the `"runs"` array carrying `"kernel"`,
//! `"offered_load"` and `"cycles_per_sec"` fields. Anything that does not
//! parse is an error, not a silent pass — a gate that cannot read its
//! baseline must fail loudly.
//!
//! Schema v2 adds a `"frozen_legacy"` block: the legacy-kernel reference
//! throughput of the machine that produced the *original* baseline, frozen
//! once and carried forward verbatim by the writer on every regeneration.
//! The gate normalizes against that anchor instead of whatever legacy
//! numbers the most recent regeneration happened to measure, so the
//! reference point no longer drifts each time the baseline file is
//! refreshed. v1 files (no `"schema_version"` field) keep working: the
//! gate falls back to the legacy runs embedded in the `"runs"` array.

/// One baseline run: `(kernel name, offered load, cycles per second)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Kernel name (`"optimized"` / `"legacy"`).
    pub kernel: String,
    /// Offered load of the run.
    pub offered_load: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// Extract the quoted/numeric value following `"key": ` on `line`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

/// The `"topology"` (scale name) recorded in a `BENCH_kernel.json`-style
/// file, if present. The gate refuses cross-scale comparisons: a medium
/// run gated against a small baseline would report a phantom regression.
pub fn parse_topology(text: &str) -> Option<String> {
    text.lines()
        .find_map(|line| field(line, "topology"))
        .map(str::to_string)
}

/// The `"schema_version"` of a baseline file. Files that predate the
/// version field — every v1 `BENCH_kernel.json` — report 1.
pub fn parse_schema_version(text: &str) -> u64 {
    text.lines()
        .find_map(|line| field(line, "schema_version"))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Parse the `"frozen_legacy"` anchor block of a schema-v2 baseline: one
/// line per load starting `{"frozen_kernel":`, carrying the
/// legacy-kernel throughput of the machine that produced the original
/// baseline. Returns an empty vector for v1 files (no block present);
/// a present-but-malformed line is an error, never a silent skip.
pub fn parse_frozen_legacy(text: &str) -> Result<Vec<BaselineRun>, String> {
    let mut anchors = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with("{\"frozen_kernel\":") {
            continue;
        }
        let kernel = field(line, "frozen_kernel")
            .ok_or_else(|| format!("frozen line without a frozen_kernel field: {line}"))?
            .to_string();
        let offered_load: f64 = field(line, "offered_load")
            .ok_or_else(|| format!("frozen line without an offered_load field: {line}"))?
            .parse()
            .map_err(|e| format!("bad offered_load in {line}: {e}"))?;
        let cycles_per_sec: f64 = field(line, "cycles_per_sec")
            .ok_or_else(|| format!("frozen line without a cycles_per_sec field: {line}"))?
            .parse()
            .map_err(|e| format!("bad cycles_per_sec in {line}: {e}"))?;
        anchors.push(BaselineRun {
            kernel,
            offered_load,
            cycles_per_sec,
        });
    }
    Ok(anchors)
}

/// Parse the `"runs"` entries of a `BENCH_kernel.json` /
/// `BENCH_parallel.json`-style file.
pub fn parse_bench_runs(text: &str) -> Result<Vec<BaselineRun>, String> {
    let mut runs = Vec::new();
    for line in text.lines() {
        if !line.trim_start().starts_with("{\"kernel\":") {
            continue;
        }
        let kernel = field(line, "kernel")
            .ok_or_else(|| format!("run line without a kernel field: {line}"))?
            .to_string();
        let offered_load: f64 = field(line, "offered_load")
            .ok_or_else(|| format!("run line without an offered_load field: {line}"))?
            .parse()
            .map_err(|e| format!("bad offered_load in {line}: {e}"))?;
        let cycles_per_sec: f64 = field(line, "cycles_per_sec")
            .ok_or_else(|| format!("run line without a cycles_per_sec field: {line}"))?
            .parse()
            .map_err(|e| format!("bad cycles_per_sec in {line}: {e}"))?;
        runs.push(BaselineRun {
            kernel,
            offered_load,
            cycles_per_sec,
        });
    }
    if runs.is_empty() {
        return Err("no runs found in the baseline file".into());
    }
    Ok(runs)
}

/// Gate a fresh set of `(kernel, load, cycles/s)` measurements against a
/// baseline: every *optimized-kernel* run whose `(kernel, load)` pair
/// exists in the baseline must retain at least `1 - tolerance` of the
/// baseline throughput, **hardware-normalized**: when both the fresh run
/// and the baseline carry a legacy-kernel measurement at the same load,
/// the baseline expectation is scaled by `current_legacy /
/// baseline_legacy` first. The legacy kernel is the frozen reference
/// implementation, so that ratio captures how fast *this machine and
/// window* are relative to the machine that produced the baseline — a
/// slower CI runner does not trip the gate, while a genuine
/// optimized-kernel regression shows up on any hardware. Without a legacy
/// reference point the comparison falls back to absolute cycles/s.
/// Legacy-kernel runs are never gated themselves, and a comparison with
/// **zero** overlapping optimized points is itself a violation: a gate
/// that compared nothing must not report green.
pub fn check_against_baseline(
    current: &[BaselineRun],
    baseline: &[BaselineRun],
    tolerance: f64,
) -> Vec<String> {
    check_against_anchored_baseline(current, baseline, &[], tolerance)
}

/// [`check_against_baseline`] with an explicit frozen legacy anchor
/// (schema v2). When `frozen` holds a legacy measurement at the run's
/// load, the speed factor is `current_legacy / frozen_legacy` — the
/// anchor committed when the baseline was first frozen, immune to drift
/// from later regenerations. Loads absent from `frozen` fall back to the
/// v1 behaviour (legacy runs embedded in `baseline`), and an empty
/// `frozen` reproduces v1 exactly.
pub fn check_against_anchored_baseline(
    current: &[BaselineRun],
    baseline: &[BaselineRun],
    frozen: &[BaselineRun],
    tolerance: f64,
) -> Vec<String> {
    let find = |runs: &[BaselineRun], kernel: &str, load: f64| -> Option<f64> {
        runs.iter()
            .find(|b| b.kernel == kernel && b.offered_load == load)
            .map(|b| b.cycles_per_sec)
    };
    let mut violations = Vec::new();
    let mut compared = 0usize;
    for run in current.iter().filter(|r| r.kernel == "optimized") {
        let Some(base_opt) = find(baseline, "optimized", run.offered_load) else {
            continue;
        };
        compared += 1;
        // hardware normalisation via the frozen legacy reference kernel:
        // prefer the v2 frozen anchor, fall back to the baseline's own runs
        let anchor_leg = find(frozen, "legacy", run.offered_load)
            .or_else(|| find(baseline, "legacy", run.offered_load));
        let speed_factor = match (find(current, "legacy", run.offered_load), anchor_leg) {
            (Some(cur_leg), Some(base_leg)) if base_leg > 0.0 => cur_leg / base_leg,
            _ => 1.0,
        };
        let expected = base_opt * speed_factor;
        let floor = expected * (1.0 - tolerance);
        if run.cycles_per_sec < floor {
            violations.push(format!(
                "optimized @ load {}: {:.0} cycles/s is below {:.0} ({}% of the {:.0} baseline \
                 scaled by the {:.2}x legacy-reference speed factor)",
                run.offered_load,
                run.cycles_per_sec,
                floor,
                ((1.0 - tolerance) * 100.0).round(),
                base_opt,
                speed_factor
            ));
        }
    }
    if compared == 0 {
        violations.push(
            "no overlapping optimized-kernel (kernel, load) points between the fresh run and \
             the baseline — the gate compared nothing (stale baseline or changed load list?)"
                .into(),
        );
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "kernel-throughput",
  "runs": [
    {"kernel": "legacy", "offered_load": 0.1, "wall_seconds": 1.0, "cycles_per_sec": 1000.0, "phits_per_sec": 10.0, "delivered_phits": 5},
    {"kernel": "optimized", "offered_load": 0.1, "wall_seconds": 0.5, "cycles_per_sec": 2000.0, "phits_per_sec": 20.0, "delivered_phits": 5},
    {"kernel": "optimized", "offered_load": 0.3, "wall_seconds": 0.5, "cycles_per_sec": 1500.5, "phits_per_sec": 20.0, "delivered_phits": 5}
  ]
}"#;

    fn run(kernel: &str, load: f64, cps: f64) -> BaselineRun {
        BaselineRun {
            kernel: kernel.into(),
            offered_load: load,
            cycles_per_sec: cps,
        }
    }

    #[test]
    fn parses_the_writers_format() {
        let runs = parse_bench_runs(SAMPLE).unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], run("legacy", 0.1, 1000.0));
        assert_eq!(runs[1], run("optimized", 0.1, 2000.0));
        assert_eq!(runs[2].cycles_per_sec, 1500.5);
        // no topology field in the sample; the committed file has one
        assert_eq!(parse_topology(SAMPLE), None);
        assert_eq!(
            parse_topology("{\n  \"topology\": \"small\",\n}").as_deref(),
            Some("small")
        );
    }

    #[test]
    fn parses_the_committed_baseline() {
        // the real committed file must stay parseable, or the CI gate
        // silently loses its baseline
        let committed = include_str!("../../../BENCH_kernel.json");
        let runs = parse_bench_runs(committed).expect("committed baseline parses");
        assert!(runs.iter().any(|r| r.kernel == "optimized"));
        assert!(runs.iter().all(|r| r.cycles_per_sec > 0.0));
        // the committed baseline is schema v2: a frozen legacy anchor per load
        assert_eq!(parse_schema_version(committed), 2);
        let frozen = parse_frozen_legacy(committed).expect("frozen block parses");
        assert!(!frozen.is_empty());
        assert!(frozen.iter().all(|a| a.kernel == "legacy"));
        for run in runs.iter().filter(|r| r.kernel == "optimized") {
            assert!(
                frozen.iter().any(|a| a.offered_load == run.offered_load),
                "no frozen anchor for load {}",
                run.offered_load
            );
        }
    }

    #[test]
    fn parses_schema_version_and_frozen_anchors() {
        // v1 files have no version field and no frozen block
        assert_eq!(parse_schema_version(SAMPLE), 1);
        assert_eq!(parse_frozen_legacy(SAMPLE).unwrap(), vec![]);
        let v2 = r#"{
  "benchmark": "kernel-throughput",
  "schema_version": 2,
  "frozen_legacy": [
    {"frozen_kernel": "legacy", "offered_load": 0.1, "cycles_per_sec": 500.0},
    {"frozen_kernel": "legacy", "offered_load": 0.3, "cycles_per_sec": 400.0}
  ],
  "runs": [
    {"kernel": "legacy", "offered_load": 0.1, "wall_seconds": 1.0, "cycles_per_sec": 450.0, "phits_per_sec": 10.0, "delivered_phits": 5},
    {"kernel": "optimized", "offered_load": 0.1, "wall_seconds": 0.5, "cycles_per_sec": 2000.0, "phits_per_sec": 20.0, "delivered_phits": 5}
  ]
}"#;
        assert_eq!(parse_schema_version(v2), 2);
        let frozen = parse_frozen_legacy(v2).unwrap();
        assert_eq!(frozen.len(), 2);
        assert_eq!(frozen[0], run("legacy", 0.1, 500.0));
        assert_eq!(frozen[1], run("legacy", 0.3, 400.0));
        // frozen lines are not runs and runs are not frozen lines
        let runs = parse_bench_runs(v2).unwrap();
        assert_eq!(runs.len(), 2);
        // a malformed frozen line errors instead of being skipped
        assert!(parse_frozen_legacy("{\"frozen_kernel\": \"legacy\"}").is_err());
    }

    #[test]
    fn empty_or_malformed_baselines_error() {
        assert!(parse_bench_runs("{}").is_err());
        assert!(parse_bench_runs("{\"runs\": [\n{\"kernel\": \"x\"}\n]}").is_err());
    }

    #[test]
    fn gate_fires_only_beyond_the_tolerance() {
        let baseline = [run("optimized", 0.1, 1000.0), run("legacy", 0.1, 500.0)];
        // 25% down at 30% tolerance: pass
        assert!(check_against_baseline(&[run("optimized", 0.1, 750.0)], &baseline, 0.3).is_empty());
        // 35% down: fail
        let v = check_against_baseline(&[run("optimized", 0.1, 650.0)], &baseline, 0.3);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("below"));
        // legacy runs never gate — but gating *only* legacy runs means the
        // gate compared nothing, which must fail rather than pass vacuously
        let v = check_against_baseline(&[run("legacy", 0.1, 1.0)], &baseline, 0.3);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("compared nothing"));
        // a load list with zero baseline overlap is the same failure
        let v = check_against_baseline(&[run("optimized", 0.9, 1.0)], &baseline, 0.3);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("compared nothing"));
        // overlap on one point gates that point and ignores the rest
        assert!(check_against_baseline(
            &[run("optimized", 0.1, 900.0), run("optimized", 0.9, 1.0)],
            &baseline,
            0.3
        )
        .is_empty());
    }

    #[test]
    fn gate_normalises_by_the_legacy_reference_speed() {
        let baseline = [run("optimized", 0.1, 1000.0), run("legacy", 0.1, 500.0)];
        // a half-speed machine: legacy runs at 250 instead of 500, so the
        // optimized expectation halves too — 400 cycles/s is healthy here
        // even though it is far below the absolute 700 floor
        let slow = [run("optimized", 0.1, 400.0), run("legacy", 0.1, 250.0)];
        assert!(check_against_baseline(&slow, &baseline, 0.3).is_empty());
        // a double-speed machine hides an absolute-only regression: 1200
        // beats the absolute floor, but the legacy reference shows this
        // machine should reach ~2000 — the gate must fire
        let fast_regressed = [run("optimized", 0.1, 1200.0), run("legacy", 0.1, 1000.0)];
        let v = check_against_baseline(&fast_regressed, &baseline, 0.3);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("speed factor"));
        // a proportionally healthy fast machine passes
        let fast_ok = [run("optimized", 0.1, 1900.0), run("legacy", 0.1, 1000.0)];
        assert!(check_against_baseline(&fast_ok, &baseline, 0.3).is_empty());
    }

    #[test]
    fn anchored_gate_prefers_the_frozen_legacy_anchor() {
        // the baseline's own legacy run has drifted (a later regeneration on
        // a faster machine measured 1000), but the frozen anchor remembers
        // the original 500 cycles/s reference point
        let baseline = [run("optimized", 0.1, 1000.0), run("legacy", 0.1, 1000.0)];
        let frozen = [run("legacy", 0.1, 500.0)];
        // this machine runs legacy at 500 = exactly the frozen anchor, so
        // the optimized expectation is the unscaled 1000. Against the
        // drifted in-runs legacy the speed factor would be 0.5 and 450
        // would pass — the anchor keeps the gate honest.
        let current = [run("optimized", 0.1, 450.0), run("legacy", 0.1, 500.0)];
        assert!(check_against_baseline(&current, &baseline, 0.3).is_empty());
        let v = check_against_anchored_baseline(&current, &baseline, &frozen, 0.3);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("speed factor"));
        // loads missing from the frozen block fall back to v1 behaviour
        let v2_empty = check_against_anchored_baseline(&current, &baseline, &[], 0.3);
        assert_eq!(v2_empty, check_against_baseline(&current, &baseline, 0.3));
    }
}
