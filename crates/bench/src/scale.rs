//! Experiment scales: how large a network and how long a run.
//!
//! The paper simulates a 16,512-node Dragonfly for 15,000 measured cycles,
//! averaging 10 seeds per point. That is reproducible here
//! (`Scale::paper()`), but the default scales keep the balanced `a = 2p = 2h`
//! proportion at laptop-friendly sizes so every figure regenerates in
//! minutes. `EXPERIMENTS.md` records which scale each reported run used.

use df_model::NetworkConfig;
use df_topology::DragonflyParams;

/// A named experiment scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable name ("small", "medium", "paper").
    pub name: &'static str,
    /// Dragonfly sizing.
    pub topology: DragonflyParams,
    /// Router/link configuration.
    pub network: NetworkConfig,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Seeds averaged per point.
    pub seeds: u64,
    /// Offered-load points for uniform-traffic sweeps.
    pub uniform_loads: Vec<f64>,
    /// Offered-load points for adversarial-traffic sweeps.
    pub adversarial_loads: Vec<f64>,
}

impl Scale {
    /// 72-node network, single seed: regenerates every figure in a couple of
    /// minutes. This is the scale used for the committed `EXPERIMENTS.md`
    /// numbers.
    pub fn small() -> Self {
        Scale {
            name: "small",
            topology: DragonflyParams::small(),
            network: NetworkConfig::paper_table1(),
            warmup: 3_000,
            measure: 6_000,
            seeds: 2,
            uniform_loads: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            adversarial_loads: vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// 1,056-node network (p=4, a=8, h=4), closer to the paper's threshold
    /// calibration; minutes to hours depending on the figure.
    pub fn medium() -> Self {
        Scale {
            name: "medium",
            topology: DragonflyParams::medium(),
            network: NetworkConfig::paper_table1(),
            warmup: 5_000,
            measure: 10_000,
            seeds: 3,
            uniform_loads: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            adversarial_loads: vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// The paper's full Table I configuration: 16,512 nodes, 10 seeds,
    /// 15,000 measured cycles. Expect long runs.
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            topology: DragonflyParams::paper_table1(),
            network: NetworkConfig::paper_table1(),
            warmup: 10_000,
            measure: 15_000,
            seeds: 10,
            uniform_loads: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            adversarial_loads: vec![0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5],
        }
    }

    /// A deliberately tiny scale used by the Criterion benches so `cargo
    /// bench` finishes quickly while still executing the full code path.
    pub fn bench() -> Self {
        Scale {
            name: "bench",
            topology: DragonflyParams::small(),
            network: NetworkConfig::fast_test(),
            warmup: 200,
            measure: 400,
            seeds: 1,
            uniform_loads: vec![0.1, 0.3],
            adversarial_loads: vec![0.1, 0.3],
        }
    }

    /// Parse a scale name from a CLI argument.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "paper" => Some(Self::paper()),
            "bench" => Some(Self::bench()),
            _ => None,
        }
    }

    /// Scale named on the command line (first free argument), defaulting to
    /// small.
    pub fn from_args() -> Self {
        for arg in std::env::args().skip(1) {
            if let Some(scale) = Self::from_name(&arg) {
                return scale;
            }
        }
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scales_resolve() {
        assert_eq!(Scale::from_name("small").unwrap().name, "small");
        assert_eq!(Scale::from_name("medium").unwrap().name, "medium");
        assert_eq!(Scale::from_name("paper").unwrap().name, "paper");
        assert!(Scale::from_name("galactic").is_none());
    }

    #[test]
    fn paper_scale_matches_table1() {
        let s = Scale::paper();
        assert_eq!(s.topology.num_nodes(), 16_512);
        assert_eq!(s.measure, 15_000);
        assert_eq!(s.seeds, 10);
    }

    #[test]
    fn load_points_are_sorted_and_in_range() {
        for scale in [Scale::small(), Scale::medium(), Scale::paper(), Scale::bench()] {
            for loads in [&scale.uniform_loads, &scale.adversarial_loads] {
                assert!(!loads.is_empty());
                assert!(loads.windows(2).all(|w| w[0] < w[1]));
                assert!(loads.iter().all(|&l| l > 0.0 && l <= 1.0));
            }
        }
    }
}
