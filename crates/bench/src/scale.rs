//! Experiment scales: how large a network and how long a run.
//!
//! The paper simulates a 16,512-node Dragonfly for 15,000 measured cycles,
//! averaging 10 seeds per point. That is reproducible here
//! (`Scale::paper()`), but the default scales keep the balanced `a = 2p = 2h`
//! proportion at laptop-friendly sizes so every figure regenerates in
//! minutes. `EXPERIMENTS.md` records which scale each reported run used.

use df_model::NetworkConfig;
use df_topology::{DragonflyParams, MegaflyParams, TopologyKind, TopologyParams};

/// A named experiment scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable name ("small", "medium", "paper").
    pub name: &'static str,
    /// Dragonfly sizing (also the sizing template for other topology
    /// kinds — see [`Scale::topology_params`]).
    pub topology: DragonflyParams,
    /// Which topology family the run instantiates (`--topology=` on the
    /// CLI; defaults to the paper's canonical Dragonfly).
    pub topology_kind: TopologyKind,
    /// Router/link configuration.
    pub network: NetworkConfig,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Seeds averaged per point.
    pub seeds: u64,
    /// Offered-load points for uniform-traffic sweeps.
    pub uniform_loads: Vec<f64>,
    /// Offered-load points for adversarial-traffic sweeps.
    pub adversarial_loads: Vec<f64>,
}

impl Scale {
    /// 72-node network, single seed: regenerates every figure in a couple of
    /// minutes. This is the scale used for the committed `EXPERIMENTS.md`
    /// numbers.
    pub fn small() -> Self {
        Scale {
            name: "small",
            topology: DragonflyParams::small(),
            topology_kind: TopologyKind::Dragonfly,
            network: NetworkConfig::paper_table1(),
            warmup: 3_000,
            measure: 6_000,
            seeds: 2,
            uniform_loads: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            adversarial_loads: vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// 1,056-node network (p=4, a=8, h=4), closer to the paper's threshold
    /// calibration; minutes to hours depending on the figure.
    pub fn medium() -> Self {
        Scale {
            name: "medium",
            topology: DragonflyParams::medium(),
            topology_kind: TopologyKind::Dragonfly,
            network: NetworkConfig::paper_table1(),
            warmup: 5_000,
            measure: 10_000,
            seeds: 3,
            uniform_loads: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            adversarial_loads: vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// The paper's full Table I configuration: 16,512 nodes, 10 seeds,
    /// 15,000 measured cycles. Expect long runs.
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            topology: DragonflyParams::paper_table1(),
            topology_kind: TopologyKind::Dragonfly,
            network: NetworkConfig::paper_table1(),
            warmup: 10_000,
            measure: 15_000,
            seeds: 10,
            uniform_loads: vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            adversarial_loads: vec![0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5],
        }
    }

    /// The full Table I topology with deliberately short windows: enough to
    /// prove the 16,512-node network constructs, routes and delivers (the
    /// `--ignored` paper-scale smoke test and the `bench_parallel` smoke),
    /// without the hours a real `paper` point takes.
    pub fn paper_smoke() -> Self {
        Scale {
            name: "paper-smoke",
            topology: DragonflyParams::paper_table1(),
            topology_kind: TopologyKind::Dragonfly,
            network: NetworkConfig::paper_table1(),
            warmup: 50,
            measure: 200,
            seeds: 1,
            uniform_loads: vec![0.1],
            adversarial_loads: vec![0.1],
        }
    }

    /// A deliberately tiny scale used by the Criterion benches so `cargo
    /// bench` finishes quickly while still executing the full code path.
    pub fn bench() -> Self {
        Scale {
            name: "bench",
            topology: DragonflyParams::small(),
            topology_kind: TopologyKind::Dragonfly,
            network: NetworkConfig::fast_test(),
            warmup: 200,
            measure: 400,
            seeds: 1,
            uniform_loads: vec![0.1, 0.3],
            adversarial_loads: vec![0.1, 0.3],
        }
    }

    /// Topology family names [`Scale::from_arg_list`]'s `--topology=` flag
    /// accepts.
    pub const TOPOLOGY_NAMES: &'static [&'static str] = &["dragonfly", "megafly", "dragonfly+"];

    /// The scale's sizing as [`TopologyParams`] of the selected kind. The
    /// Dragonfly sizing doubles as the template: `--topology=megafly` maps
    /// `(p, a, h, groups)` onto a balanced `l = s = a` leaf/spine block with
    /// the same terminals, group count and global links per group — always
    /// valid, because both families share the `groups <= a*h + 1` palmtree
    /// bound.
    pub fn topology_params(&self) -> TopologyParams {
        match self.topology_kind {
            TopologyKind::Dragonfly => self.topology.into(),
            TopologyKind::Megafly => {
                let d = self.topology;
                MegaflyParams::new(d.p, d.a, d.a, d.h, d.groups)
                    .expect("every Dragonfly scale maps onto a balanced Megafly block")
                    .into()
            }
        }
    }

    /// The names [`Scale::from_name`] accepts.
    pub const NAMES: &'static [&'static str] =
        &["small", "medium", "paper", "paper-smoke", "bench"];

    /// Parse a scale name from a CLI argument.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "paper" => Some(Self::paper()),
            "paper-smoke" => Some(Self::paper_smoke()),
            "bench" => Some(Self::bench()),
            _ => None,
        }
    }

    /// Scale named on the command line (first free argument), defaulting to
    /// small.
    ///
    /// A word-like argument that is *not* a known scale name (or one of the
    /// shared runner flags) aborts with the list of valid names instead of
    /// silently falling back to `small` — a mistyped `papper` used to buy
    /// you a multi-hour run of the wrong topology.
    pub fn from_args() -> Self {
        Self::from_args_with_flags(Self::small(), &[])
    }

    /// Like [`Scale::from_args`], with a caller-chosen default when no scale
    /// is named and the caller's own word-like flags exempted from the typo
    /// check — each binary declares the flags *it* accepts rather than this
    /// parser knowing every binary's CLI.
    ///
    /// Aborts the process with exit code 2 on a rejected argument (see
    /// [`Scale::from_arg_list`] for the testable core).
    pub fn from_args_with_flags(default: Self, flags: &[&str]) -> Self {
        match Self::from_arg_list(default, flags, std::env::args().skip(1)) {
            Ok(scale) => scale,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Like [`Scale::from_args`], for the Dragonfly-only paper
    /// reproductions (`fig6`–`fig9`, `table1`): any `--topology=` selection
    /// aborts with exit code 2 instead of being silently ignored — these
    /// binaries reproduce figures defined on the paper's canonical
    /// Dragonfly, and running one under a `--topology=megafly` flag used to
    /// produce a Dragonfly table labelled by nothing at all.
    pub fn from_args_dragonfly_only(bin: &str) -> Self {
        match Self::from_arg_list_dragonfly_only(Self::small(), &[], bin, std::env::args().skip(1))
        {
            Ok(scale) => scale,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The testable core of [`Scale::from_args_dragonfly_only`]: reject any
    /// `--topology` argument naming the binary and the topology-aware
    /// alternatives, then fall through to the ordinary parser.
    pub fn from_arg_list_dragonfly_only(
        default: Self,
        flags: &[&str],
        bin: &str,
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, String> {
        let args: Vec<String> = args.into_iter().collect();
        if let Some(arg) = args.iter().find(|a| a.starts_with("--topology")) {
            return Err(format!(
                "error: {bin} reproduces a Dragonfly-only paper experiment and does not \
                 accept '{arg}' (Figures 6-9 and Table 1 are defined on the canonical \
                 Dragonfly; topology-aware runners: scenario_matrix, fault_recovery, \
                 bench_kernel, sweep_service)"
            ));
        }
        Self::from_arg_list(default, flags, args)
    }

    /// The pure core of the CLI scale parser: scan `args` for the first
    /// recognized scale name (falling back to `default`), rejecting any
    /// word-like argument that is neither a scale nor one of the caller's
    /// declared `flags`. Returns the error message the process-aborting
    /// wrappers print — unit-testable without spawning a process.
    pub fn from_arg_list(
        default: Self,
        flags: &[&str],
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, String> {
        let mut found: Option<Scale> = None;
        let mut kind: Option<TopologyKind> = None;
        for arg in args {
            if let Some(name) = arg.strip_prefix("--topology=") {
                kind = Some(match name {
                    "dragonfly" => TopologyKind::Dragonfly,
                    "megafly" | "dragonfly+" => TopologyKind::Megafly,
                    other => {
                        return Err(format!(
                            "error: unrecognized topology '{other}' (valid topologies: {})",
                            Self::TOPOLOGY_NAMES.join(", ")
                        ))
                    }
                });
            } else if let Some(scale) = Self::from_name(&arg) {
                if found.is_none() {
                    found = Some(scale);
                }
            } else if is_unrecognized_scale_like(&arg, flags) {
                return Err(format!(
                    "error: unrecognized scale '{arg}' (valid scales: {}{})",
                    Self::NAMES.join(", "),
                    if flags.is_empty() {
                        String::new()
                    } else {
                        format!("; flags: {}", flags.join(", "))
                    }
                ));
            }
        }
        let mut scale = found.unwrap_or(default);
        if let Some(kind) = kind {
            scale.topology_kind = kind;
        }
        Ok(scale)
    }
}

/// Whether `arg` reads like an *attempted* scale name that resolves to
/// nothing: a word of letters/digits/hyphens/underscores containing at
/// least one letter (so bare cycle counts are skipped, and `key=value`
/// flags never match) that is neither a known scale nor one of the
/// caller's declared flags. Catches `papper`, `paper_smoke` and `paper2`
/// alike.
fn is_unrecognized_scale_like(arg: &str, flags: &[&str]) -> bool {
    !arg.is_empty()
        && arg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        && arg.chars().any(|c| c.is_ascii_alphabetic())
        && Scale::from_name(arg).is_none()
        && !flags.contains(&arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scales_resolve() {
        assert_eq!(Scale::from_name("small").unwrap().name, "small");
        assert_eq!(Scale::from_name("medium").unwrap().name, "medium");
        assert_eq!(Scale::from_name("paper").unwrap().name, "paper");
        assert_eq!(Scale::from_name("paper-smoke").unwrap().name, "paper-smoke");
        assert!(Scale::from_name("galactic").is_none());
        // every advertised name resolves to a scale of that name
        for name in Scale::NAMES {
            assert_eq!(Scale::from_name(name).unwrap().name, *name);
        }
    }

    #[test]
    fn scale_typo_detection_is_precise() {
        let flags = ["smoke", "csv"];
        // typos abort loudly, whatever character class they use
        assert!(is_unrecognized_scale_like("papper", &flags));
        assert!(is_unrecognized_scale_like("paper_smoke", &flags));
        assert!(is_unrecognized_scale_like("paper2", &flags));
        assert!(is_unrecognized_scale_like("medium-", &flags));
        // the caller's declared flags are exempt; undeclared words are not
        assert!(!is_unrecognized_scale_like("smoke", &flags));
        assert!(is_unrecognized_scale_like("smoke", &[]));
        assert!(!is_unrecognized_scale_like("un", &["un", "adv1", "advh"]));
        // valid scales, cycle counts and key=value flags always pass
        for name in Scale::NAMES {
            assert!(!is_unrecognized_scale_like(name, &[]));
        }
        assert!(!is_unrecognized_scale_like("3000", &[]));
        assert!(!is_unrecognized_scale_like("workers=1,2,4", &[]));
        assert!(!is_unrecognized_scale_like("", &[]));
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn from_arg_list_accepts_scales_and_defaults() {
        let s = Scale::from_arg_list(Scale::small(), &[], strings(&["medium"])).unwrap();
        assert_eq!(s.name, "medium");
        // no scale named: the caller's default wins
        let s = Scale::from_arg_list(Scale::bench(), &[], strings(&["3000"])).unwrap();
        assert_eq!(s.name, "bench");
        // the first named scale wins over later ones
        let s = Scale::from_arg_list(Scale::small(), &[], strings(&["paper", "medium"])).unwrap();
        assert_eq!(s.name, "paper");
    }

    #[test]
    fn from_arg_list_rejects_mistyped_scales() {
        for bad in ["papper", "paper_smoke", "paper2", "smal"] {
            let err = Scale::from_arg_list(Scale::small(), &["smoke", "csv"], strings(&[bad]))
                .unwrap_err();
            assert!(
                err.contains("unrecognized scale") && err.contains(bad),
                "rejection message must name the bad argument: {err}"
            );
            assert!(
                err.contains("small, medium, paper"),
                "message lists valid names"
            );
        }
        // the rejection fires even when a valid scale comes first
        assert!(
            Scale::from_arg_list(Scale::small(), &[], strings(&["medium", "galactic"])).is_err()
        );
    }

    #[test]
    fn from_arg_list_exempts_declared_flags_only() {
        let flags = ["smoke", "csv", "--check-against"];
        let s = Scale::from_arg_list(
            Scale::small(),
            &flags,
            strings(&[
                "medium",
                "smoke",
                "csv",
                "--check-against",
                "BENCH_kernel.json",
            ]),
        )
        .unwrap();
        assert_eq!(s.name, "medium");
        // the same words without the declaration are typos
        assert!(Scale::from_arg_list(Scale::small(), &[], strings(&["smoke"])).is_err());
    }

    #[test]
    fn topology_flag_selects_the_family() {
        let s =
            Scale::from_arg_list(Scale::small(), &[], strings(&["--topology=megafly"])).unwrap();
        assert_eq!(s.topology_kind, TopologyKind::Megafly);
        assert_eq!(s.name, "small");
        let mf = s.topology_params();
        assert_eq!(mf.kind(), TopologyKind::Megafly);
        // the mapped Megafly keeps the template's group count and radix shape
        assert_eq!(mf.num_groups(), s.topology.num_groups());
        assert_eq!(mf.nodes_per_group(), s.topology.p * s.topology.a);
        // the synonym and the default
        let s =
            Scale::from_arg_list(Scale::small(), &[], strings(&["--topology=dragonfly+"])).unwrap();
        assert_eq!(s.topology_kind, TopologyKind::Megafly);
        let s = Scale::from_arg_list(Scale::small(), &[], strings(&["medium"])).unwrap();
        assert_eq!(s.topology_kind, TopologyKind::Dragonfly);
        assert_eq!(s.topology_params().kind(), TopologyKind::Dragonfly);
    }

    #[test]
    fn topology_flag_rejects_unknown_names_loudly() {
        for bad in [
            "--topology=megaflier",
            "--topology=",
            "--topology=Dragonfly",
        ] {
            let err = Scale::from_arg_list(Scale::small(), &[], strings(&[bad])).unwrap_err();
            assert!(
                err.contains("unrecognized topology") && err.contains("dragonfly, megafly"),
                "rejection must name the valid topologies: {err}"
            );
        }
        // every scale maps onto a valid Megafly block
        for name in Scale::NAMES {
            let mut s = Scale::from_name(name).unwrap();
            s.topology_kind = TopologyKind::Megafly;
            assert_eq!(s.topology_params().kind(), TopologyKind::Megafly);
            assert_eq!(s.topology_params().num_groups(), s.topology.num_groups());
        }
    }

    #[test]
    fn dragonfly_only_parser_rejects_topology_selections() {
        for arg in ["--topology=megafly", "--topology=dragonfly", "--topology"] {
            let err = Scale::from_arg_list_dragonfly_only(
                Scale::small(),
                &[],
                "fig6",
                strings(&["bench", arg]),
            )
            .unwrap_err();
            assert!(
                err.contains("fig6") && err.contains("Dragonfly-only"),
                "rejection must name the binary and the reason: {err}"
            );
        }
        // everything else parses exactly like the ordinary parser
        let s = Scale::from_arg_list_dragonfly_only(
            Scale::small(),
            &[],
            "table1",
            strings(&["medium"]),
        )
        .unwrap();
        assert_eq!(s.name, "medium");
        assert!(Scale::from_arg_list_dragonfly_only(
            Scale::small(),
            &[],
            "fig7",
            strings(&["papper"])
        )
        .is_err());
    }

    #[test]
    fn paper_smoke_uses_the_full_table1_topology() {
        let s = Scale::paper_smoke();
        assert_eq!(s.topology.num_nodes(), 16_512);
        assert_eq!(s.topology, DragonflyParams::paper_table1());
        assert!(s.measure <= 500, "the smoke scale must stay short");
    }

    #[test]
    fn paper_scale_matches_table1() {
        let s = Scale::paper();
        assert_eq!(s.topology.num_nodes(), 16_512);
        assert_eq!(s.measure, 15_000);
        assert_eq!(s.seeds, 10);
    }

    #[test]
    fn load_points_are_sorted_and_in_range() {
        for scale in [
            Scale::small(),
            Scale::medium(),
            Scale::paper(),
            Scale::paper_smoke(),
            Scale::bench(),
        ] {
            for loads in [&scale.uniform_loads, &scale.adversarial_loads] {
                assert!(!loads.is_empty());
                assert!(loads.windows(2).all(|w| w[0] < w[1]));
                assert!(loads.iter().all(|&l| l > 0.0 && l <= 1.0));
            }
        }
    }
}
