//! The parallel scenario-matrix runner: execute a `scenarios × loads ×
//! routings` cross product across OS threads with deterministic per-cell
//! seeding and print the structured results table.
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin scenario_matrix -- [small|medium|paper] [smoke] [csv] [--topology=dragonfly|megafly]
//! ```
//!
//! * scale name — machine under test and measurement windows (default
//!   `small`),
//! * `--topology=` — topology family (default `dragonfly`; `megafly` runs
//!   the matrix on the Dragonfly+ instance of the same sizing),
//! * `smoke` — short windows for CI (a few seconds end to end),
//! * `csv` — emit CSV instead of the aligned text table.
//!
//! Every cell's seed is derived from `(base seed, scenario, load, routing)`
//! alone, so the table is bit-for-bit identical across reruns and across
//! worker counts — rerun the command and diff the output to check.

use df_routing::RoutingKind;
use df_sim::{
    matrix_table, num_threads, run_matrix, FaultPlan, Scenario, ScenarioMatrix, SimulationConfig,
};
use df_topology::{GroupId, RouterId};
use df_traffic::{InjectionKind, PatternKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &["smoke", "csv"]);
    let smoke = args.iter().any(|a| a == "smoke");
    let csv = args.iter().any(|a| a == "csv");

    let (warmup, measure, seeds) = if smoke {
        (300, 600, 1)
    } else {
        (scale.warmup, scale.measure, scale.seeds)
    };

    let base = SimulationConfig::builder()
        .topology(scale.topology_params())
        .network(scale.network)
        .warmup_cycles(warmup)
        .measurement_cycles(measure)
        .seed(1)
        .build()
        .expect("valid base configuration");

    // The faults family: deterministic failures layered over steady
    // traffic — a global-link outage window on the busiest ADV+1 link and
    // a graceful router drain/restore, scaled to the run's windows.
    let topo = scale.topology_params().build();
    let (gw, gport) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    let fault_scenarios = vec![
        Scenario::named("ADV-linkloss")
            .hold(PatternKind::Adversarial { offset: 1 })
            .link_down(warmup / 2, gw, gport)
            .link_up(warmup + measure / 2, gw, gport),
        Scenario::named("UN-drain")
            .hold(PatternKind::Uniform)
            .router_drain(warmup / 2, RouterId(1))
            .router_restore(warmup + measure / 2, RouterId(1)),
    ];

    // The workload axis: steady patterns spanning benign, adversarial,
    // locality-skewed and permutation-style traffic, one bursty variant and
    // one phased transient.
    let mut scenarios = vec![
        Scenario::steady(PatternKind::Uniform),
        Scenario::steady(PatternKind::Adversarial { offset: 1 }),
        Scenario::steady(PatternKind::Hotspot {
            hotspots: 4,
            fraction: 0.5,
        }),
        Scenario::steady(PatternKind::BitReversal),
        Scenario::steady(PatternKind::GroupLocal {
            local_fraction: 0.6,
        }),
        Scenario::named("UN-bursty")
            .injection(InjectionKind::Bursty {
                mean_on: 50.0,
                mean_off: 50.0,
            })
            .hold(PatternKind::Uniform),
        Scenario::transient(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            warmup / 2,
        ),
    ];
    scenarios.extend(fault_scenarios);

    let matrix = ScenarioMatrix {
        base,
        scenarios,
        loads: vec![0.1, 0.25, 0.4],
        routings: vec![
            RoutingKind::Minimal,
            RoutingKind::Olm,
            RoutingKind::Base,
            RoutingKind::Ectn,
        ],
        seeds_per_cell: seeds,
    };

    let threads = num_threads();
    eprintln!(
        "scenario matrix: {} scenarios x {} loads x {} routings = {} cells on {} threads ({})",
        matrix.scenarios.len(),
        matrix.loads.len(),
        matrix.routings.len(),
        matrix.num_cells(),
        threads,
        scale.name,
    );
    let start = std::time::Instant::now();
    let cells = run_matrix(&matrix, threads);
    let elapsed = start.elapsed();

    let table = matrix_table(format!("scenario matrix ({}, seed 1)", scale.name), &cells);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }
    eprintln!(
        "{} cells in {:.2}s ({:.1} cells/s)",
        cells.len(),
        elapsed.as_secs_f64(),
        cells.len() as f64 / elapsed.as_secs_f64().max(1e-9)
    );
}
