//! Print Table I (simulation parameters) for the selected scale.
//! Usage: `cargo run --release -p df-bench --bin table1 -- [small|medium|paper]`

fn main() {
    let scale = df_bench::Scale::from_args();
    println!("{}", df_bench::table1(&scale).to_text());
}
