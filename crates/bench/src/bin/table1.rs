//! Print Table I (simulation parameters) for the selected scale.
//! Usage: `cargo run --release -p df-bench --bin table1 -- [small|medium|paper]`
//! Dragonfly-only paper reproduction: `--topology=` selections are rejected.

fn main() {
    let scale = df_bench::Scale::from_args_dragonfly_only("table1");
    println!("{}", df_bench::table1(&scale).to_text());
}
