//! Regenerate Figure 10: sensitivity of Base to the misrouting threshold
//! under UN and ADV+1 traffic.
//! Usage: `cargo run --release -p df-bench --bin fig10 -- [small|medium|paper] [un|adv1]`

use df_traffic::PatternKind;

fn main() {
    let scale =
        df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &["un", "adv1", "advh"]);
    let args: Vec<String> = std::env::args().collect();
    let rc = df_routing::RoutingConfig::calibrated_for(&scale.topology, &scale.network.vcs);
    let th = rc.contention_threshold;
    // the paper sweeps th-3..th+1 for UN and th..th+6 for ADV; scale the same
    // way around the calibrated threshold
    let un_ths: Vec<u32> = (th.saturating_sub(3).max(1)..=th + 1).collect();
    let adv_ths: Vec<u32> = (th..=th + 6).step_by(2).collect();
    let both = !(args.iter().any(|a| a == "un") || args.iter().any(|a| a == "adv1"));
    if both || args.iter().any(|a| a == "un") {
        let (lat, thr) = df_bench::figure10(&scale, PatternKind::Uniform, &un_ths);
        println!("{}", lat.to_text());
        println!("{}", thr.to_text());
    }
    if both || args.iter().any(|a| a == "adv1") {
        let (lat, thr) =
            df_bench::figure10(&scale, PatternKind::Adversarial { offset: 1 }, &adv_ths);
        println!("{}", lat.to_text());
        println!("{}", thr.to_text());
    }
}
