//! Collective-workload benchmark: application completion time, per-rank
//! stall totals and packet latency for a set of task-layer collectives
//! (all-to-all, both all-reduce algorithms, barriers, neighbor sweeps and
//! a barrier-gated sequence) under each contention/credit-based routing
//! mechanism. Prints the table and writes `COLLECTIVES.csv` into the
//! working directory; every cell is seeded and deterministic, so the CSV
//! reproduces bit-for-bit on any machine (CI regenerates it and diffs
//! against the committed copy).
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin collectives -- [small|medium|paper] [csv]
//! ```

use df_engine::Table;
use df_routing::RoutingKind;
use df_sim::{run_task_workload, SimulationConfig};
use df_traffic::{AllReduceAlgorithm, CollectiveKind, PatternKind, RankPlacement, TaskWorkload};

/// The workload mix: every collective kind, both all-reduce algorithms,
/// both placements, and a barrier-gated sequence. Rank counts stay valid
/// on every scale (the smallest topology has 72 nodes).
fn workloads() -> Vec<TaskWorkload> {
    vec![
        TaskWorkload::single(CollectiveKind::AllToAll, 16, 2)
            .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 16, 2),
        TaskWorkload::single(
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
            16,
            2,
        )
        .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::Barrier, 32, 1)
            .with_placement(RankPlacement::GroupSpread),
        TaskWorkload::single(CollectiveKind::SweepNeighbors, 16, 4),
        TaskWorkload {
            ranks: 16,
            placement: RankPlacement::GroupSpread,
            sequence: vec![
                CollectiveKind::Barrier,
                CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
            ],
            packets_per_message: 2,
        },
    ]
}

const ROUTINGS: [RoutingKind; 4] = [
    RoutingKind::Base,
    RoutingKind::PiggyBacking,
    RoutingKind::Ectn,
    RoutingKind::Olm,
];

fn main() {
    let scale = df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &["csv"]);
    let csv_stdout = std::env::args().any(|a| a == "csv");

    let mut table = Table::new(
        format!(
            "Collective workloads — application completion time ({} scale)",
            scale.name
        ),
        &[
            "workload",
            "routing",
            "ranks",
            "steps",
            "completion_cycle",
            "delivered_packets",
            "total_stall_cycles",
            "max_rank_stall",
            "mean_rank_stall",
            "avg_packet_latency",
        ],
    );
    for workload in workloads() {
        for routing in ROUTINGS {
            let config = SimulationConfig::builder()
                .topology(scale.topology)
                .network(scale.network)
                .routing(routing)
                .pattern(PatternKind::Uniform)
                .offered_load(0.2)
                .warmup_cycles(200)
                .measurement_cycles(400)
                .seed(11)
                .workload(workload.clone())
                .build()
                .expect("valid collective configuration");
            let report = run_task_workload(config, 2_000_000);
            assert!(
                report.completed,
                "{} under {} must complete within the cycle budget",
                workload.label(),
                routing.label()
            );
            table.push_row(vec![
                workload.label(),
                routing.label().to_string(),
                workload.ranks.to_string(),
                report.total_steps.to_string(),
                report.completion_cycle.expect("completed").to_string(),
                report.delivered_packets.to_string(),
                report.total_stall_cycles.to_string(),
                report.max_rank_stall_cycles.to_string(),
                format!("{:.2}", report.mean_rank_stall_cycles),
                format!("{:.3}", report.avg_packet_latency),
            ]);
        }
    }

    if csv_stdout {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_text());
    }
    std::fs::write("COLLECTIVES.csv", table.to_csv()).expect("write COLLECTIVES.csv");
    eprintln!("wrote COLLECTIVES.csv");
}
