//! Regenerate Figure 5: latency and throughput vs offered load under UN,
//! ADV+1 and ADV+h.
//! Usage: `cargo run --release -p df-bench --bin fig5 -- [small|medium|paper] [un|adv1|advh]`

use df_traffic::PatternKind;

fn main() {
    let scale =
        df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &["un", "adv1", "advh"]);
    let args: Vec<String> = std::env::args().collect();
    let which: Vec<PatternKind> = if args.iter().any(|a| a == "un") {
        vec![PatternKind::Uniform]
    } else if args.iter().any(|a| a == "adv1") {
        vec![PatternKind::Adversarial { offset: 1 }]
    } else if args.iter().any(|a| a == "advh") {
        vec![PatternKind::Adversarial {
            offset: scale.topology.h,
        }]
    } else {
        vec![
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            PatternKind::Adversarial {
                offset: scale.topology.h,
            },
        ]
    };
    for pattern in which {
        let (latency, throughput) = df_bench::figure5(&scale, pattern);
        println!("{}", latency.to_text());
        println!("{}", throughput.to_text());
    }
}
