//! Regenerate Figure 8: the same transient as Figure 7 but with large input
//! buffers (256 phits/VC local, 2048 phits/VC global), which slows the
//! credit-based mechanisms but not the contention-based ones.
//! Usage: `cargo run --release -p df-bench --bin fig8 -- [small|medium|paper]`
//! Dragonfly-only paper reproduction: `--topology=` selections are rejected.

use df_model::NetworkConfig;

fn main() {
    let scale = df_bench::Scale::from_args_dragonfly_only("fig8");
    let large = NetworkConfig {
        buffers: df_model::BufferConfig::large(),
        ..scale.network
    };
    let (latency, misroute) = df_bench::figure7(
        &scale,
        large,
        0.20,
        3_000,
        100,
        "Figure 8 — UN->ADV+1, large buffers",
    );
    println!("{}", latency.to_text());
    println!("{}", misroute.to_text());
}
