//! Parallel-kernel throughput benchmark: simulated-cycles/sec for the
//! sequential optimized kernel versus `KernelMode::Parallel` at several
//! worker counts, with a built-in bit-identity cross-check (every parallel
//! run must deliver exactly the phits — and the exact mean-latency bit
//! pattern — of the sequential baseline, or the benchmark aborts). Writes
//! `BENCH_parallel.json` into the working directory so successive PRs
//! accumulate a performance trajectory.
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin bench_parallel \
//!     [small|medium|paper|paper-smoke] [measured_cycles] [workers=1,2,4]
//! ```
//!
//! Defaults: the `medium` (1,056-node) scale, 1,500 measured cycles, worker
//! counts 1/2/4 (plus 8 when the host has that many CPUs). The recorded
//! speedups are only meaningful relative to `host_available_parallelism` —
//! a single-CPU container can demonstrate bit-identity but not wall-clock
//! speedup. When the host has fewer CPUs than the largest requested worker
//! count, the run will not overwrite an existing `BENCH_parallel.json`
//! (the numbers would record scheduler thrash, not scaling): it writes
//! `BENCH_parallel.advisory.json` instead, unless `allow-undersized-host`
//! is passed. The JSON carries `speedups_advisory` so downstream readers
//! never mistake an undersized run for a scaling measurement.

use df_bench::{measure_kernel_run, KernelRunMeasurement};
use df_sim::KernelMode;
use std::fmt::Write as _;

struct RunResult {
    kernel: String,
    measurement: KernelRunMeasurement,
}

fn bench_one(
    scale: &df_bench::Scale,
    kernel: KernelMode,
    kernel_name: String,
    load: f64,
    warmup: u64,
    measured: u64,
) -> RunResult {
    RunResult {
        kernel: kernel_name,
        measurement: measure_kernel_run(
            scale.topology,
            scale.network,
            kernel,
            load,
            warmup,
            measured,
        ),
    }
}

fn main() {
    let scale = df_bench::Scale::from_args_with_flags(
        df_bench::Scale::medium(),
        &["allow-undersized-host"],
    );
    let mut measured: u64 = match scale.name {
        "paper" | "paper-smoke" => scale.measure.min(500),
        _ => 1_500,
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts: Vec<usize> = vec![1, 2, 4];
    if host_cpus >= 8 {
        worker_counts.push(8);
    }
    let mut allow_undersized = false;
    for arg in std::env::args().skip(1) {
        if arg == "allow-undersized-host" {
            allow_undersized = true;
        } else if let Ok(n) = arg.parse::<u64>() {
            measured = n;
        } else if let Some(list) = arg.strip_prefix("workers=") {
            worker_counts = list
                .split(',')
                .map(|w| {
                    w.parse::<usize>()
                        .expect("workers=N,M,... must be integers")
                })
                .collect();
        }
    }
    let warmup = match scale.name {
        "paper" | "paper-smoke" => 50,
        _ => 300,
    };
    // Mid load keeps a realistic active set; far-past-saturation load keeps
    // every router busy, the regime intra-run parallelism targets. The big
    // topologies get one low-load point instead — the paper's steady-state
    // regime at a size where even that is expensive sequentially.
    let loads: Vec<f64> = match scale.name {
        "paper" | "paper-smoke" => vec![0.1],
        _ => vec![0.3, 0.9],
    };
    let max_workers = worker_counts.iter().copied().max().unwrap_or(1);
    // A host that cannot actually run the requested workers side by side
    // measures scheduler time-slicing, not scaling; bit-identity still
    // holds, but the wall-clock numbers must not be read as speedups.
    let undersized_host = host_cpus < max_workers;
    let speedups_advisory = undersized_host || host_cpus == 1;

    println!(
        "parallel-kernel benchmark: {} topology ({} nodes), {} measured cycles, host CPUs: {}",
        scale.name,
        scale.topology.num_nodes(),
        measured,
        host_cpus
    );
    if speedups_advisory {
        println!(
            "  NOTE: advisory run — host parallelism is {host_cpus}, largest requested worker \
             count is {max_workers}; speedup figures reflect time-slicing, not scaling \
             (bit-identity checks still binding)"
        );
    }
    let mut results: Vec<RunResult> = Vec::new();
    let mut speedups: Vec<(f64, usize, f64)> = Vec::new();
    for &load in &loads {
        let baseline = bench_one(
            &scale,
            KernelMode::Optimized,
            "optimized".to_string(),
            load,
            warmup,
            measured,
        );
        println!(
            "  load {:.1} optimized  : {:>10.0} cycles/s  ({:.3}s wall, {} phits)",
            load,
            baseline.measurement.cycles_per_sec,
            baseline.measurement.wall_seconds,
            baseline.measurement.delivered_phits
        );
        for &workers in &worker_counts {
            let r = bench_one(
                &scale,
                KernelMode::Parallel { workers },
                format!("parallel:{workers}"),
                load,
                warmup,
                measured,
            );
            // the determinism contract, enforced where it is cheapest to
            // notice a violation: identical work or the benchmark is void
            assert_eq!(
                (r.measurement.delivered_phits, r.measurement.latency_bits),
                (
                    baseline.measurement.delivered_phits,
                    baseline.measurement.latency_bits
                ),
                "parallel({workers}) diverged from the optimized kernel at load {load}"
            );
            let speedup = r.measurement.cycles_per_sec / baseline.measurement.cycles_per_sec;
            println!(
                "  load {:.1} parallel:{workers}: {:>10.0} cycles/s  ({:.3}s wall)  {speedup:.2}x  [bit-identical]",
                load, r.measurement.cycles_per_sec, r.measurement.wall_seconds
            );
            speedups.push((load, workers, speedup));
            results.push(r);
        }
        results.push(baseline);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"parallel-kernel-throughput\",\n");
    let _ = writeln!(json, "  \"topology\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"num_nodes\": {},", scale.topology.num_nodes());
    json.push_str("  \"routing\": \"base\",\n");
    json.push_str("  \"pattern\": \"uniform\",\n");
    let _ = writeln!(json, "  \"warmup_cycles\": {warmup},");
    let _ = writeln!(json, "  \"measured_cycles\": {measured},");
    let _ = writeln!(json, "  \"host_available_parallelism\": {host_cpus},");
    let _ = writeln!(json, "  \"max_requested_workers\": {max_workers},");
    let _ = writeln!(json, "  \"speedups_advisory\": {speedups_advisory},");
    if speedups_advisory {
        json.push_str(
            "  \"advisory_reason\": \"host_available_parallelism below the largest requested \
             worker count (or 1): wall-clock speedups reflect time-slicing, not scaling\",\n",
        );
    }
    json.push_str("  \"results_bit_identical\": true,\n");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"offered_load\": {}, \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.1}, \"delivered_phits\": {}}}{comma}",
            r.kernel, r.measurement.offered_load, r.measurement.wall_seconds, r.measurement.cycles_per_sec, r.measurement.delivered_phits
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_parallel_over_optimized\": {\n");
    for (i, (load, workers, speedup)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"load_{load}_workers_{workers}\": {speedup:.3}{comma}"
        );
    }
    json.push_str("  }\n}\n");

    // An undersized host must not replace the committed scaling baseline
    // with time-slicing numbers: divert to a clearly-named side file unless
    // the caller explicitly opts in.
    let baseline_exists = std::path::Path::new("BENCH_parallel.json").exists();
    let out_path = if undersized_host && !allow_undersized && baseline_exists {
        println!(
            "refusing to overwrite the committed BENCH_parallel.json: host has {host_cpus} CPUs \
             but the largest requested worker count is {max_workers} \
             (pass allow-undersized-host to override)"
        );
        "BENCH_parallel.advisory.json"
    } else {
        "BENCH_parallel.json"
    };
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
