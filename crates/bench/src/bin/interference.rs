//! Multi-job interference benchmark: per-job slowdown versus an isolated
//! solo run for a set of concurrent collective job mixes sharing one
//! network under background uniform traffic. Each mix is run once shared
//! (all jobs contending) and once per job solo (identical configuration
//! with only the other jobs removed); the table reports both completion
//! times and the slowdown ratio per job and routing mechanism. Prints the
//! table and writes `INTERFERENCE.csv` into the working directory; every
//! cell is seeded and deterministic, so the CSV reproduces bit-for-bit on
//! any machine (CI regenerates it and diffs against the committed copy).
//!
//! Topology-aware: `--topology=megafly` runs the same mixes on the
//! Dragonfly+ instance.
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin interference -- [small|medium|paper] [csv] [--topology=...]
//! ```

use df_engine::Table;
use df_routing::RoutingKind;
use df_sim::{run_interference, SimulationConfig};
use df_traffic::{
    AllReduceAlgorithm, CollectiveKind, JobPlacement, JobSpec, PatternKind, TaskWorkload,
};

/// The job mixes: a symmetric bandwidth-heavy pair on interleaved
/// group-spread placements (ranks share routers and global links), an
/// asymmetric heavy/light pair, and a three-job mix with a deferred
/// mini-app exercising start cycles and compute delays. Rank counts stay
/// valid on every scale (the smallest topology has 72 nodes).
fn mixes() -> Vec<(&'static str, Vec<JobSpec>)> {
    let a2a = |packets| TaskWorkload::single(CollectiveKind::AllToAll, 8, packets);
    let ring = TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), 8, 2);
    let mini = TaskWorkload::mini_app(8, 2, AllReduceAlgorithm::RecursiveDoubling, 1);
    vec![
        (
            "a2a+a2a",
            vec![
                JobSpec::new(a2a(6), JobPlacement::group_spread(0)),
                JobSpec::new(a2a(6), JobPlacement::group_spread(1)),
            ],
        ),
        (
            "a2a+ring",
            vec![
                JobSpec::new(a2a(2), JobPlacement::block(0)),
                JobSpec::new(ring.clone(), JobPlacement::block(8)),
            ],
        ),
        (
            "3job",
            vec![
                JobSpec::new(a2a(2), JobPlacement::block(0)),
                JobSpec::new(ring, JobPlacement::block(8)),
                JobSpec::new(mini, JobPlacement::block(16))
                    .starting_at(50)
                    .with_compute_delay(5),
            ],
        ),
    ]
}

const ROUTINGS: [RoutingKind; 3] = [
    RoutingKind::Base,
    RoutingKind::PiggyBacking,
    RoutingKind::Ectn,
];

fn main() {
    let scale = df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &["csv"]);
    let csv_stdout = std::env::args().any(|a| a == "csv");

    let mut table = Table::new(
        format!(
            "Multi-job interference — per-job slowdown vs isolation ({} scale, {:?})",
            scale.name, scale.topology_kind
        ),
        &[
            "mix",
            "job",
            "routing",
            "ranks",
            "start_cycle",
            "solo_elapsed",
            "shared_elapsed",
            "slowdown",
            "solo_stalls",
            "shared_stalls",
        ],
    );
    for (mix, jobs) in mixes() {
        for routing in ROUTINGS {
            let config = SimulationConfig::builder()
                .topology(scale.topology_params())
                .network(scale.network)
                .routing(routing)
                .pattern(PatternKind::Uniform)
                .offered_load(0.2)
                .warmup_cycles(200)
                .measurement_cycles(400)
                .seed(11)
                .jobs(jobs.clone())
                .build()
                .expect("valid multi-job configuration");
            let report = run_interference(config, 2_000_000);
            assert!(
                report.shared.all_completed,
                "{mix} under {} must complete within the cycle budget",
                routing.label()
            );
            for (i, spec) in jobs.iter().enumerate() {
                let shared = &report.shared.jobs[i];
                let solo = &report.solo[i];
                table.push_row(vec![
                    mix.to_string(),
                    spec.label(),
                    routing.label().to_string(),
                    spec.workload.ranks.to_string(),
                    spec.start_cycle.to_string(),
                    solo.elapsed_cycles.expect("solo run completed").to_string(),
                    shared
                        .elapsed_cycles
                        .expect("shared run completed")
                        .to_string(),
                    format!("{:.4}", report.slowdown(i).expect("both completed")),
                    solo.total_stall_cycles.to_string(),
                    shared.total_stall_cycles.to_string(),
                ]);
            }
        }
    }

    if csv_stdout {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_text());
    }
    std::fs::write("INTERFERENCE.csv", table.to_csv()).expect("write INTERFERENCE.csv");
    eprintln!("wrote INTERFERENCE.csv");
}
