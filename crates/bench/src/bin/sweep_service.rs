//! Sweep-as-a-service: the crash-recoverable scenario-matrix runner over a
//! run directory. Kill it at any point — rerunning the same command resumes
//! from the journal and the latest per-cell snapshots and produces a results
//! table byte-identical to an uninterrupted run.
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin sweep_service -- \
//!     run-dir=target/sweep [small|medium|paper] [smoke] [csv] \
//!     [threads=N] [checkpoint-every=N] [stream=N] [seeds=N] \
//!     [interrupt-after=N] [interrupt-mid-at=N]
//! ```
//!
//! * `run-dir=` — the run directory (journal, snapshots, `results.csv`);
//!   required.
//! * scale name / `smoke` — topology and measurement windows, as in the
//!   other runners.
//! * `threads=` — worker threads (default: available parallelism).
//! * `checkpoint-every=` — cycles between mid-cell snapshots (default 2000;
//!   0 disables mid-cell recovery).
//! * `stream=` — stream per-window telemetry of every sub-run to stderr
//!   with the given window width in cycles.
//! * `seeds=` — seeds averaged per cell (default 1, or the scale's count).
//! * `interrupt-after=` / `interrupt-mid-at=` — CI hooks that stop the
//!   service early as if it had been killed (between sub-runs, or mid-cell
//!   right after a checkpoint).
//!
//! Exit code 0 = matrix complete (`results.csv` written), 3 = interrupted
//! by a hook (resume by rerunning), 2 = bad arguments.

use std::path::PathBuf;

use df_routing::RoutingKind;
use df_sim::runner::{run_sweep_service, RunnerOptions};
use df_sim::{matrix_table, FaultPlan, Scenario, ScenarioMatrix, SimulationConfig};
use df_topology::{Dragonfly, GroupId};
use df_traffic::PatternKind;

fn parse_kv(args: &[String], key: &str) -> Option<u64> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {key}= wants an integer, got '{v}'");
                std::process::exit(2);
            })
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(run_dir) = args.iter().find_map(|a| a.strip_prefix("run-dir=")) else {
        eprintln!("error: run-dir=DIR is required (see the module docs)");
        std::process::exit(2);
    };
    let scale = args
        .iter()
        .find_map(|a| df_bench::Scale::from_name(a))
        .unwrap_or_else(df_bench::Scale::small);
    let smoke = args.iter().any(|a| a == "smoke");
    let csv = args.iter().any(|a| a == "csv");

    let (warmup, measure, seeds) = if smoke {
        (300, 600, 1)
    } else {
        (scale.warmup, scale.measure, scale.seeds)
    };
    let seeds = parse_kv(&args, "seeds").unwrap_or(seeds);

    let base = SimulationConfig::builder()
        .topology(scale.topology)
        .network(scale.network)
        .warmup_cycles(warmup)
        .measurement_cycles(measure)
        .seed(1)
        .build()
        .expect("valid base configuration");

    // Benign + adversarial steady workloads plus one mid-run link outage —
    // the outage exercises snapshot/resume straddling fault windows.
    // NOTE: deliberately pinned to the concrete Dragonfly family; new code
    // should build `scale.topology_params().build()` and go through the
    // `Topology` trait so the `--topology` flag keeps working.
    let topo = Dragonfly::new(scale.topology);
    let (gw, gport) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    let matrix = ScenarioMatrix {
        base,
        scenarios: vec![
            Scenario::steady(PatternKind::Uniform),
            Scenario::steady(PatternKind::Adversarial { offset: 1 }),
            Scenario::named("ADV-linkloss")
                .hold(PatternKind::Adversarial { offset: 1 })
                .link_down(warmup / 2, gw, gport)
                .link_up(warmup + measure / 2, gw, gport),
        ],
        loads: vec![0.1, 0.25, 0.4],
        routings: vec![
            RoutingKind::Minimal,
            RoutingKind::Base,
            RoutingKind::PiggyBacking,
            RoutingKind::Ectn,
        ],
        seeds_per_cell: seeds,
    };

    let mut options = RunnerOptions::new(PathBuf::from(run_dir));
    options.threads = parse_kv(&args, "threads").unwrap_or(df_sim::num_threads() as u64) as usize;
    if let Some(every) = parse_kv(&args, "checkpoint-every") {
        options.checkpoint_every = every;
    }
    options.stream_window = parse_kv(&args, "stream");
    options.interrupt_after_subruns = parse_kv(&args, "interrupt-after").map(|n| n as usize);
    options.interrupt_mid_subrun_at = parse_kv(&args, "interrupt-mid-at");

    eprintln!(
        "sweep service: {} cells x {} seeds over {} ({} threads, checkpoints every {} cycles) -> {}",
        matrix.num_cells(),
        matrix.seeds_per_cell,
        scale.name,
        options.threads,
        options.checkpoint_every,
        options.run_dir.display(),
    );

    let outcome = match run_sweep_service(&matrix, &options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep service failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep service: {} sub-runs recovered from the journal, {} executed, {} resumed mid-cell",
        outcome.recovered_subruns,
        outcome.executed_subruns,
        outcome.resumed_from_snapshot.len(),
    );
    if !outcome.complete {
        eprintln!("sweep service: interrupted; rerun the same command to resume");
        std::process::exit(3);
    }

    let table = matrix_table(
        format!("sweep service ({}, seed 1)", scale.name),
        &outcome.cells,
    );
    let rendered_csv = table.to_csv();
    let results_path = options.run_dir.join("results.csv");
    if let Err(e) = std::fs::write(&results_path, &rendered_csv) {
        eprintln!("cannot write {}: {e}", results_path.display());
        std::process::exit(1);
    }
    if csv {
        print!("{rendered_csv}");
    } else {
        print!("{}", table.to_text());
    }
    eprintln!("results written to {}", results_path.display());
}
