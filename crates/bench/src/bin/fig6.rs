//! Regenerate Figure 6: latency under a mixed ADV+1/UN pattern at 35% load.
//! Usage: `cargo run --release -p df-bench --bin fig6 -- [small|medium|paper]`
//! Dragonfly-only paper reproduction: `--topology=` selections are rejected.

fn main() {
    let scale = df_bench::Scale::from_args_dragonfly_only("fig6");
    println!("{}", df_bench::figure6(&scale, 0.35).to_text());
}
