//! Availability under sustained failure churn: throughput retained and
//! packet loss versus failure rate × repair time, per routing mechanism —
//! now executed through the crash-recoverable sweep service with multiple
//! seeds per cell.
//!
//! Each (MTBF, MTTR) cell is a matrix scenario carrying a seeded
//! [`ChurnModel`] — exponential failure/repair processes over global links,
//! local links and nodes. The churn seed depends only on the cell, never on
//! the routing or traffic seed, so discovery-only Base and both
//! link-state-flooding mechanisms (PB, ECtN) replay the identical failure
//! sequence, and every traffic seed measures the same outage trace.
//! Throughput retained is the cell's pooled measured-window delivery over
//! the same routing's churn-free pool, so congestion differences between
//! mechanisms divide out; packet loss is dropped-on-fault packets over
//! everything injected. Latency is reported as the across-seed mean ± ci95.
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin availability -- \
//!     [small|medium|paper] [run-dir=DIR] [seeds=N] [threads=N]
//! ```
//!
//! Runs are journaled and checkpointed under the run directory
//! (default `target/availability-run`): kill the process at any point and
//! rerun the same command to resume; the finished surface is byte-identical
//! either way. Prints the table and writes `AVAILABILITY.csv` into the
//! working directory.

use std::path::PathBuf;

use df_routing::RoutingKind;
use df_sim::runner::{run_sweep_service, RunnerOptions};
use df_sim::{ChurnModel, ChurnRate, Scenario, ScenarioMatrix, SimulationConfig};
use df_traffic::PatternKind;

fn parse_kv(args: &[String], key: &str) -> Option<u64> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("{key}=")))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {key}= wants an integer, got '{v}'");
                std::process::exit(2);
            })
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = args
        .iter()
        .find_map(|a| df_bench::Scale::from_name(a))
        .unwrap_or_else(df_bench::Scale::small);
    let seeds = parse_kv(&args, "seeds").unwrap_or(5).max(1);
    let run_dir = args
        .iter()
        .find_map(|a| a.strip_prefix("run-dir="))
        .unwrap_or("target/availability-run");

    let warmup = 200u64;
    let measure = scale.measure.max(500);
    // Global-link MTBFs from gentle to harsh (per-link failure rate
    // 1/MTBF per cycle); local links fail half as often, nodes a quarter.
    let mtbfs = [8_000.0, 4_000.0, 2_000.0];
    let mttrs = [250.0, 500.0];
    let routings = [
        RoutingKind::Base,
        RoutingKind::PiggyBacking,
        RoutingKind::Ectn,
    ];

    // One healthy reference scenario (the denominator of "retained") plus
    // one churn scenario per (MTBF, MTTR) cell. The churn seed depends only
    // on the cell, so every routing and every traffic seed replays the
    // identical failure sequence.
    let mut scenarios =
        vec![Scenario::named("healthy").hold(PatternKind::Adversarial { offset: 1 })];
    let mut cell_of: Vec<(String, f64, f64)> = Vec::new();
    for (i, &mtbf) in mtbfs.iter().enumerate() {
        for (j, &mttr) in mttrs.iter().enumerate() {
            let seed = 31 + (i as u64) * 10 + j as u64;
            let name = format!("churn-m{}-r{}", mtbf as u64, mttr as u64);
            cell_of.push((name.clone(), mtbf, mttr));
            scenarios.push(
                Scenario::named(name)
                    .hold(PatternKind::Adversarial { offset: 1 })
                    .churn(
                        ChurnModel::new(seed, warmup, warmup + measure)
                            .global_links(ChurnRate::new(mtbf, mttr))
                            .local_links(ChurnRate::new(2.0 * mtbf, mttr))
                            .nodes(ChurnRate::new(4.0 * mtbf, mttr)),
                    ),
            );
        }
    }

    let base = SimulationConfig::builder()
        .topology(scale.topology)
        .network(scale.network)
        .warmup_cycles(warmup)
        .measurement_cycles(measure)
        .seed(11)
        .build()
        .expect("valid availability configuration");
    let matrix = ScenarioMatrix {
        base,
        scenarios,
        loads: vec![0.2],
        routings: routings.to_vec(),
        seeds_per_cell: seeds,
    };

    eprintln!(
        "availability: {} topology, ADV+1 at load 0.2, churn over [{warmup}, {}), \
         MTBF sweep {mtbfs:?} x MTTR {mttrs:?}, {seeds} seeds/cell -> {run_dir}",
        scale.name,
        warmup + measure
    );

    let mut options = RunnerOptions::new(PathBuf::from(run_dir));
    options.threads = parse_kv(&args, "threads").unwrap_or(df_sim::num_threads() as u64) as usize;
    let outcome = match run_sweep_service(&matrix, &options) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("availability sweep failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "availability: {} sub-runs recovered, {} executed, {} resumed mid-cell",
        outcome.recovered_subruns,
        outcome.executed_subruns,
        outcome.resumed_from_snapshot.len(),
    );
    if !outcome.complete {
        eprintln!("availability: interrupted; rerun the same command to resume");
        std::process::exit(3);
    }

    // Pooled delivery of the churn-free scenario, per routing.
    let healthy = |routing: RoutingKind| -> u64 {
        outcome
            .cells
            .iter()
            .find(|c| c.key.scenario == "healthy" && c.key.routing == routing)
            .map(|c| c.report.delivered_packets)
            .expect("healthy reference cell present")
    };

    let mut csv = String::from(
        "routing,mtbf_cycles,mttr_cycles,failure_rate_per_link_cycle,seeds,\
         delivered_window,healthy_window,throughput_retained,avg_latency,latency_ci95,\
         dropped_packets,retargeted_packets,injected_packets,packet_loss\n",
    );
    for (name, mtbf, mttr) in &cell_of {
        for routing in routings {
            let cell = outcome
                .cells
                .iter()
                .find(|c| &c.key.scenario == name && c.key.routing == routing)
                .expect("churn cell present");
            let r = &cell.report;
            let healthy = healthy(routing);
            let retained = r.delivered_packets as f64 / healthy as f64;
            let loss = r.dropped_on_fault_packets as f64 / r.injected_packets as f64;
            let line = format!(
                "{},{},{},{:.6e},{},{},{},{:.4},{:.2},{:.2},{},{},{},{:.6}\n",
                routing.label(),
                mtbf,
                mttr,
                1.0 / mtbf,
                seeds,
                r.delivered_packets,
                healthy,
                retained,
                r.avg_packet_latency,
                r.latency_ci95,
                r.dropped_on_fault_packets,
                r.retargeted_packets,
                r.injected_packets,
                loss
            );
            csv.push_str(&line);
            print!("{line}");
        }
    }
    std::fs::write("AVAILABILITY.csv", &csv).expect("write AVAILABILITY.csv");
    eprintln!("wrote AVAILABILITY.csv");

    // The availability headline: at every failure rate, the mechanisms
    // that flood link state must retain at least as much throughput as
    // discovery-only Base. Report the comparison so a regression is
    // visible in the bench output, not just in the committed CSV.
    for (name, mtbf, mttr) in &cell_of {
        let retained = |routing: RoutingKind| -> f64 {
            outcome
                .cells
                .iter()
                .find(|c| &c.key.scenario == name && c.key.routing == routing)
                .map(|c| c.report.delivered_packets as f64 / healthy(routing) as f64)
                .unwrap()
        };
        let base = retained(RoutingKind::Base);
        let pb = retained(RoutingKind::PiggyBacking);
        let ectn = retained(RoutingKind::Ectn);
        eprintln!(
            "  mtbf {mtbf:>6} mttr {mttr:>4}: retained Base {base:.4}  PB {pb:.4} ({})  \
             ECtN {ectn:.4} ({})",
            if pb > base { "ahead" } else { "BEHIND" },
            if ectn > base { "ahead" } else { "BEHIND" },
        );
    }
}
