//! Availability under sustained failure churn: throughput retained and
//! packet loss versus failure rate × repair time, per routing mechanism.
//!
//! Each cell lowers a seeded [`ChurnModel`] — exponential MTBF/MTTR
//! processes over global links, local links and nodes — into a fault plan
//! and replays the same failure sequence under discovery-only Base and
//! both link-state-flooding mechanisms (PB, ECtN). Throughput retained is
//! the cell's measured-window delivery divided by the same routing's
//! churn-free run, so congestion differences between mechanisms divide
//! out and the column isolates what the failures cost. Packet loss is
//! dropped-on-fault packets over everything injected.
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin availability -- [small|medium|paper]
//! ```
//!
//! Prints the table and writes `AVAILABILITY.csv` into the working
//! directory. Deterministic: the churn seed depends only on the
//! (MTBF, MTTR) cell, never on the routing or wall clock — rerun and diff.

use df_routing::RoutingKind;
use df_sim::{ChurnModel, ChurnRate, Network, SimulationConfig};
use df_traffic::PatternKind;

/// One measured cell of the availability surface.
struct Cell {
    routing: RoutingKind,
    mtbf: f64,
    mttr: f64,
    delivered: u64,
    healthy: u64,
    dropped: u64,
    retargeted: u64,
    injected: u64,
}

fn run_once(
    scale: &df_bench::Scale,
    routing: RoutingKind,
    churn: Option<ChurnModel>,
) -> (u64, u64, u64, u64) {
    let warmup = 200u64;
    let measure = 4 * scale.measure.max(500);
    let mut builder = SimulationConfig::builder()
        .topology(scale.topology)
        .network(scale.network)
        .routing(routing)
        .pattern(PatternKind::Adversarial { offset: 1 })
        .offered_load(0.2)
        .warmup_cycles(warmup)
        .measurement_cycles(measure)
        .seed(11);
    if let Some(churn) = churn {
        builder = builder.churn(churn);
    }
    let cfg = builder.build().expect("valid availability configuration");
    let mut net = Network::new(cfg);
    net.run_cycles(warmup);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    net.run_cycles(measure);
    (
        net.metrics().window_summary().delivered_packets,
        net.metrics().dropped_on_fault_packets(),
        net.metrics().retargeted_packets(),
        net.injected_packets_total(),
    )
}

fn main() {
    let scale = df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &[]);
    let warmup = 200u64;
    let measure = 4 * scale.measure.max(500);
    // Global-link MTBFs from gentle to harsh (per-link failure rate
    // 1/MTBF per cycle); local links fail half as often, nodes a quarter.
    let mtbfs = [8_000.0, 4_000.0, 2_000.0];
    let mttrs = [250.0, 500.0];
    let routings = [
        RoutingKind::Base,
        RoutingKind::PiggyBacking,
        RoutingKind::Ectn,
    ];

    eprintln!(
        "availability: {} topology, ADV+1 at load 0.2, churn over [{warmup}, {}), \
         MTBF sweep {mtbfs:?} x MTTR {mttrs:?}",
        scale.name,
        warmup + measure
    );

    // churn-free reference per routing: the denominator of "retained"
    let mut healthy = Vec::new();
    for routing in routings {
        let (delivered, _, _, _) = run_once(&scale, routing, None);
        healthy.push((routing, delivered));
    }

    let mut cells: Vec<Cell> = Vec::new();
    for (i, &mtbf) in mtbfs.iter().enumerate() {
        for (j, &mttr) in mttrs.iter().enumerate() {
            // the seed depends only on the cell, so every routing replays
            // the identical failure sequence
            let seed = 31 + (i as u64) * 10 + j as u64;
            for routing in routings {
                let churn = ChurnModel::new(seed, warmup, warmup + measure)
                    .global_links(ChurnRate::new(mtbf, mttr))
                    .local_links(ChurnRate::new(2.0 * mtbf, mttr))
                    .nodes(ChurnRate::new(4.0 * mtbf, mttr));
                let (delivered, dropped, retargeted, injected) =
                    run_once(&scale, routing, Some(churn));
                let healthy = healthy
                    .iter()
                    .find(|(r, _)| *r == routing)
                    .map(|(_, d)| *d)
                    .unwrap();
                cells.push(Cell {
                    routing,
                    mtbf,
                    mttr,
                    delivered,
                    healthy,
                    dropped,
                    retargeted,
                    injected,
                });
            }
        }
    }

    let mut csv = String::from(
        "routing,mtbf_cycles,mttr_cycles,failure_rate_per_link_cycle,\
         delivered_window,healthy_window,throughput_retained,dropped_packets,\
         retargeted_packets,injected_packets,packet_loss\n",
    );
    for c in &cells {
        let retained = c.delivered as f64 / c.healthy as f64;
        let loss = c.dropped as f64 / c.injected as f64;
        let line = format!(
            "{},{},{},{:.6e},{},{},{:.4},{},{},{},{:.6}\n",
            c.routing.label(),
            c.mtbf,
            c.mttr,
            1.0 / c.mtbf,
            c.delivered,
            c.healthy,
            retained,
            c.dropped,
            c.retargeted,
            c.injected,
            loss
        );
        csv.push_str(&line);
        print!("{line}");
    }
    std::fs::write("AVAILABILITY.csv", &csv).expect("write AVAILABILITY.csv");
    eprintln!("wrote AVAILABILITY.csv");

    // The availability headline: at every failure rate, the mechanisms
    // that flood link state must retain at least as much throughput as
    // discovery-only Base. Report the comparison so a regression is
    // visible in the bench output, not just in the committed CSV.
    for &mtbf in &mtbfs {
        for &mttr in &mttrs {
            let retained = |routing: RoutingKind| -> f64 {
                cells
                    .iter()
                    .find(|c| c.routing == routing && c.mtbf == mtbf && c.mttr == mttr)
                    .map(|c| c.delivered as f64 / c.healthy as f64)
                    .unwrap()
            };
            let base = retained(RoutingKind::Base);
            let pb = retained(RoutingKind::PiggyBacking);
            let ectn = retained(RoutingKind::Ectn);
            eprintln!(
                "  mtbf {mtbf:>6} mttr {mttr:>4}: retained Base {base:.4}  PB {pb:.4} ({})  \
                 ECtN {ectn:.4} ({})",
                if pb > base { "ahead" } else { "BEHIND" },
                if ectn > base { "ahead" } else { "BEHIND" },
            );
        }
    }
}
