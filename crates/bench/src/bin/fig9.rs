//! Regenerate Figure 9: long-timescale latency after UN→ADV+1 for PB versus
//! ECtN, showing PB's routing oscillations and ECtN's flat response.
//! Usage: `cargo run --release -p df-bench --bin fig9 -- [small|medium|paper]`
//! Dragonfly-only paper reproduction: `--topology=` selections are rejected.

fn main() {
    let scale = df_bench::Scale::from_args_dragonfly_only("fig9");
    let (latency, summary) = df_bench::figure9(&scale, 0.20, 4_000, 100);
    println!("{}", latency.to_text());
    println!("{}", summary.to_text());
}
