//! Kernel throughput benchmark: simulated-cycles/sec and phits/sec for the
//! optimized (time-wheel, activity-gated) kernel versus the legacy
//! (binary-heap, full-scan) kernel, at a low, a mid and a saturating offered
//! load. Writes `BENCH_kernel.json` into the working directory so successive
//! PRs accumulate a performance trajectory.
//!
//! Usage: `cargo run --release -p df-bench --bin bench_kernel
//! [small|medium|paper|paper-smoke] [measured_cycles]`
//!
//! The `paper`/`paper-smoke` names run the full 16,512-node Table I
//! topology with a short default window — sequential-kernel throughput at
//! the paper's own scale (see `bench_parallel` for the multi-worker run).

use df_bench::{measure_kernel_run, KernelRunMeasurement};
use df_model::NetworkConfig;
use df_sim::KernelMode;
use df_topology::DragonflyParams;
use std::fmt::Write as _;

struct RunResult {
    kernel: &'static str,
    measurement: KernelRunMeasurement,
}

fn bench_one(
    topology: DragonflyParams,
    kernel: KernelMode,
    kernel_name: &'static str,
    load: f64,
    warmup: u64,
    measured: u64,
) -> RunResult {
    RunResult {
        kernel: kernel_name,
        measurement: measure_kernel_run(
            topology,
            NetworkConfig::paper_table1(),
            kernel,
            load,
            warmup,
            measured,
        ),
    }
}

fn main() {
    // Scale::from_args aborts loudly on a mistyped scale name instead of
    // silently benchmarking the small topology.
    let scale = df_bench::Scale::from_args();
    let scale_name = scale.name;
    let mut measured: u64 = match scale_name {
        "paper" | "paper-smoke" => 300,
        _ => 3_000,
    };
    for arg in std::env::args().skip(1) {
        if let Ok(n) = arg.parse::<u64>() {
            measured = n;
        }
    }
    let topology = scale.topology;
    let warmup = if topology.num_nodes() > 10_000 { 100 } else { 500 };
    // Low load is where activity gating shines, mid load is the trajectory
    // anchor, and 0.9 offered is far past saturation for uniform traffic —
    // every router stays busy, so it measures pure per-event overhead.
    let loads = [0.1, 0.3, 0.9];

    println!("kernel throughput benchmark: {scale_name} topology, {measured} measured cycles");
    let mut results: Vec<RunResult> = Vec::new();
    for &load in &loads {
        for (kernel, name) in [
            (KernelMode::Legacy, "legacy"),
            (KernelMode::Optimized, "optimized"),
        ] {
            let r = bench_one(topology, kernel, name, load, warmup, measured);
            println!(
                "  load {:.1} {:9}: {:>12.0} cycles/s  {:>12.0} phits/s  ({:.3}s wall)",
                r.measurement.offered_load, r.kernel, r.measurement.cycles_per_sec, r.measurement.phits_per_sec, r.measurement.wall_seconds
            );
            results.push(r);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"kernel-throughput\",\n");
    let _ = writeln!(json, "  \"topology\": \"{scale_name}\",");
    json.push_str("  \"network\": \"paper_table1\",\n");
    json.push_str("  \"routing\": \"base\",\n");
    json.push_str("  \"pattern\": \"uniform\",\n");
    let _ = writeln!(json, "  \"warmup_cycles\": {warmup},");
    let _ = writeln!(json, "  \"measured_cycles\": {measured},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"offered_load\": {}, \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.1}, \"phits_per_sec\": {:.1}, \"delivered_phits\": {}}}{comma}",
            r.kernel, r.measurement.offered_load, r.measurement.wall_seconds, r.measurement.cycles_per_sec, r.measurement.phits_per_sec, r.measurement.delivered_phits
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_optimized_over_legacy\": {\n");
    for (i, &load) in loads.iter().enumerate() {
        let legacy = results
            .iter()
            .find(|r| r.measurement.offered_load == load && r.kernel == "legacy")
            .expect("legacy run exists");
        let optimized = results
            .iter()
            .find(|r| r.measurement.offered_load == load && r.kernel == "optimized")
            .expect("optimized run exists");
        let comma = if i + 1 == loads.len() { "" } else { "," };
        let speedup = optimized.measurement.cycles_per_sec / legacy.measurement.cycles_per_sec;
        println!("  load {load:.1}: optimized/legacy = {speedup:.2}x");
        let _ = writeln!(json, "    \"{load}\": {speedup:.3}{comma}");
    }
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");
}
