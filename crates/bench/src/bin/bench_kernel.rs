//! Kernel throughput benchmark: simulated-cycles/sec and phits/sec for the
//! optimized (time-wheel, activity-gated) kernel versus the legacy
//! (binary-heap, full-scan) kernel, at a low, a mid and a saturating offered
//! load. Writes `BENCH_kernel.json` into the working directory so successive
//! PRs accumulate a performance trajectory.
//!
//! Usage: `cargo run --release -p df-bench --bin bench_kernel
//! [small|medium|paper|paper-smoke] [measured_cycles]
//! [--check-against <BENCH_kernel.json>]`
//!
//! The `paper`/`paper-smoke` names run the full 16,512-node Table I
//! topology with a short default window — sequential-kernel throughput at
//! the paper's own scale (see `bench_parallel` for the multi-worker run).
//!
//! With `--check-against`, the freshly measured optimized-kernel
//! throughput is gated against the given committed baseline: any load
//! point that drops more than 30% below the baseline cycles/s fails the
//! run with exit code 1 (the CI perf-regression gate). The gate is
//! hardware-normalized against the baseline's `frozen_legacy` anchor
//! (schema v2) — the legacy-kernel throughput frozen when the baseline
//! was first committed — and the writer carries that anchor block
//! forward verbatim, so regenerating the baseline never moves the
//! reference point.

use df_bench::{measure_kernel_run, KernelRunMeasurement};
use df_model::NetworkConfig;
use df_sim::KernelMode;
use df_topology::TopologyParams;
use std::fmt::Write as _;

struct RunResult {
    kernel: &'static str,
    measurement: KernelRunMeasurement,
}

fn bench_one(
    topology: TopologyParams,
    kernel: KernelMode,
    kernel_name: &'static str,
    load: f64,
    warmup: u64,
    measured: u64,
) -> RunResult {
    RunResult {
        kernel: kernel_name,
        measurement: measure_kernel_run(
            topology,
            NetworkConfig::paper_table1(),
            kernel,
            load,
            warmup,
            measured,
        ),
    }
}

/// Allowed throughput drop before the `--check-against` gate fails.
const REGRESSION_TOLERANCE: f64 = 0.30;

fn main() {
    // Strip `--check-against` (and its value — which may be an arbitrary
    // word-like path) before scale parsing, so the typo check only ever
    // sees arguments that are meant to be scales or cycle counts.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut check_against: Option<String> = None;
    let mut scale_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--check-against" {
            i += 1;
            check_against = Some(raw.get(i).cloned().unwrap_or_else(|| {
                eprintln!("error: --check-against needs a baseline path");
                std::process::exit(2);
            }));
        } else if let Some(path) = raw[i].strip_prefix("--check-against=") {
            check_against = Some(path.to_string());
        } else {
            scale_args.push(raw[i].clone());
        }
        i += 1;
    }
    // Scale::from_arg_list aborts loudly on a mistyped scale name instead
    // of silently benchmarking the small topology.
    let scale = df_bench::Scale::from_arg_list(df_bench::Scale::small(), &[], scale_args.clone())
        .unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        });
    let scale_name = scale.name;
    let mut measured: u64 = match scale_name {
        "paper" | "paper-smoke" => 300,
        _ => 3_000,
    };
    for arg in &scale_args {
        if let Ok(n) = arg.parse::<u64>() {
            measured = n;
        }
    }
    // read the baseline up front: a gate that cannot read its baseline must
    // fail before spending minutes benchmarking
    let baseline = check_against.as_deref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        // cross-scale comparisons are meaningless (a medium run gated
        // against a small baseline reports a phantom regression)
        if let Some(base_topo) = df_bench::parse_topology(&text) {
            if base_topo != scale_name {
                eprintln!(
                    "error: baseline {path} was measured on the '{base_topo}' topology, \
                     this run uses '{scale_name}' — not comparable"
                );
                std::process::exit(2);
            }
        }
        let runs = df_bench::parse_bench_runs(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        let frozen = df_bench::parse_frozen_legacy(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse frozen anchors in {path}: {e}");
            std::process::exit(2);
        });
        if df_bench::parse_schema_version(&text) >= 2 && frozen.is_empty() {
            eprintln!("error: baseline {path} declares schema v2 but has no frozen_legacy block");
            std::process::exit(2);
        }
        (runs, frozen)
    });
    let topology = scale.topology_params();
    let warmup = if topology.num_nodes() > 10_000 {
        100
    } else {
        500
    };
    // Low load is where activity gating shines, mid load is the trajectory
    // anchor, and 0.9 offered is far past saturation for uniform traffic —
    // every router stays busy, so it measures pure per-event overhead.
    let loads = [0.1, 0.3, 0.9];

    println!("kernel throughput benchmark: {scale_name} topology, {measured} measured cycles");
    let mut results: Vec<RunResult> = Vec::new();
    for &load in &loads {
        for (kernel, name) in [
            (KernelMode::Legacy, "legacy"),
            (KernelMode::Optimized, "optimized"),
        ] {
            let r = bench_one(topology, kernel, name, load, warmup, measured);
            println!(
                "  load {:.1} {:9}: {:>12.0} cycles/s  {:>12.0} phits/s  ({:.3}s wall)",
                r.measurement.offered_load,
                r.kernel,
                r.measurement.cycles_per_sec,
                r.measurement.phits_per_sec,
                r.measurement.wall_seconds
            );
            results.push(r);
        }
    }

    // The frozen legacy anchor: carried forward verbatim from the baseline
    // we gate against (so it never drifts across regenerations). A v1
    // baseline donates its embedded legacy runs as the anchor-to-be; with
    // no baseline at all, this run's own legacy measurements become the
    // anchor for every future regeneration.
    let frozen_anchors: Vec<df_bench::BaselineRun> = match &baseline {
        Some((_, frozen)) if !frozen.is_empty() => frozen.clone(),
        Some((runs, _)) => runs
            .iter()
            .filter(|r| r.kernel == "legacy")
            .cloned()
            .collect(),
        None => results
            .iter()
            .filter(|r| r.kernel == "legacy")
            .map(|r| df_bench::BaselineRun {
                kernel: r.kernel.to_string(),
                offered_load: r.measurement.offered_load,
                cycles_per_sec: r.measurement.cycles_per_sec,
            })
            .collect(),
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"kernel-throughput\",\n");
    json.push_str("  \"schema_version\": 2,\n");
    let _ = writeln!(json, "  \"topology\": \"{scale_name}\",");
    json.push_str("  \"network\": \"paper_table1\",\n");
    json.push_str("  \"routing\": \"base\",\n");
    json.push_str("  \"pattern\": \"uniform\",\n");
    let _ = writeln!(json, "  \"warmup_cycles\": {warmup},");
    let _ = writeln!(json, "  \"measured_cycles\": {measured},");
    json.push_str("  \"frozen_legacy\": [\n");
    for (i, a) in frozen_anchors.iter().enumerate() {
        let comma = if i + 1 == frozen_anchors.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"frozen_kernel\": \"{}\", \"offered_load\": {}, \"cycles_per_sec\": {:.1}}}{comma}",
            a.kernel, a.offered_load, a.cycles_per_sec
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"offered_load\": {}, \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.1}, \"phits_per_sec\": {:.1}, \"delivered_phits\": {}}}{comma}",
            r.kernel, r.measurement.offered_load, r.measurement.wall_seconds, r.measurement.cycles_per_sec, r.measurement.phits_per_sec, r.measurement.delivered_phits
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_optimized_over_legacy\": {\n");
    for (i, &load) in loads.iter().enumerate() {
        let legacy = results
            .iter()
            .find(|r| r.measurement.offered_load == load && r.kernel == "legacy")
            .expect("legacy run exists");
        let optimized = results
            .iter()
            .find(|r| r.measurement.offered_load == load && r.kernel == "optimized")
            .expect("optimized run exists");
        let comma = if i + 1 == loads.len() { "" } else { "," };
        let speedup = optimized.measurement.cycles_per_sec / legacy.measurement.cycles_per_sec;
        println!("  load {load:.1}: optimized/legacy = {speedup:.2}x");
        let _ = writeln!(json, "    \"{load}\": {speedup:.3}{comma}");
    }
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");

    if let Some((baseline, frozen)) = baseline {
        let current: Vec<df_bench::BaselineRun> = results
            .iter()
            .map(|r| df_bench::BaselineRun {
                kernel: r.kernel.to_string(),
                offered_load: r.measurement.offered_load,
                cycles_per_sec: r.measurement.cycles_per_sec,
            })
            .collect();
        let violations = df_bench::check_against_anchored_baseline(
            &current,
            &baseline,
            &frozen,
            REGRESSION_TOLERANCE,
        );
        if violations.is_empty() {
            println!(
                "perf gate: optimized-kernel throughput within {}% of the baseline",
                (REGRESSION_TOLERANCE * 100.0).round()
            );
        } else {
            eprintln!("perf gate FAILED:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
