//! Kernel throughput benchmark: simulated-cycles/sec and phits/sec for the
//! optimized (time-wheel, activity-gated) kernel versus the legacy
//! (binary-heap, full-scan) kernel, at a low, a mid and a saturating offered
//! load. Writes `BENCH_kernel.json` into the working directory so successive
//! PRs accumulate a performance trajectory.
//!
//! Usage: `cargo run --release -p df-bench --bin bench_kernel [small|medium]
//! [measured_cycles]`

use df_model::NetworkConfig;
use df_routing::RoutingKind;
use df_sim::{KernelMode, Network, SimulationConfig};
use df_topology::DragonflyParams;
use df_traffic::PatternKind;
use std::fmt::Write as _;
use std::time::Instant;

struct RunResult {
    kernel: &'static str,
    offered_load: f64,
    wall_seconds: f64,
    cycles_per_sec: f64,
    phits_per_sec: f64,
    delivered_phits: u64,
}

fn bench_one(
    topology: DragonflyParams,
    kernel: KernelMode,
    kernel_name: &'static str,
    load: f64,
    warmup: u64,
    measured: u64,
) -> RunResult {
    let config = SimulationConfig::builder()
        .topology(topology)
        .network(NetworkConfig::paper_table1())
        .routing(RoutingKind::Base)
        .pattern(PatternKind::Uniform)
        .offered_load(load)
        .warmup_cycles(warmup)
        .measurement_cycles(measured)
        .seed(1)
        .kernel(kernel)
        .build()
        .expect("valid benchmark configuration");
    let mut net = Network::new(config);
    net.run_cycles(warmup);
    let start = net.cycle();
    net.metrics_mut().start_measurement(start);
    let t0 = Instant::now();
    net.run_cycles(measured);
    let wall = t0.elapsed().as_secs_f64();
    let delivered_phits = net.metrics().window_summary().delivered_phits;
    RunResult {
        kernel: kernel_name,
        offered_load: load,
        wall_seconds: wall,
        cycles_per_sec: measured as f64 / wall,
        phits_per_sec: delivered_phits as f64 / wall,
        delivered_phits,
    }
}

fn main() {
    let mut scale_name = "small";
    let mut measured: u64 = 3_000;
    for arg in std::env::args().skip(1) {
        if arg == "small" || arg == "medium" {
            scale_name = if arg == "small" { "small" } else { "medium" };
        } else if let Ok(n) = arg.parse::<u64>() {
            measured = n;
        }
    }
    let topology = match scale_name {
        "medium" => DragonflyParams::medium(),
        _ => DragonflyParams::small(),
    };
    let warmup = 500;
    // Low load is where activity gating shines, mid load is the trajectory
    // anchor, and 0.9 offered is far past saturation for uniform traffic —
    // every router stays busy, so it measures pure per-event overhead.
    let loads = [0.1, 0.3, 0.9];

    println!("kernel throughput benchmark: {scale_name} topology, {measured} measured cycles");
    let mut results: Vec<RunResult> = Vec::new();
    for &load in &loads {
        for (kernel, name) in [
            (KernelMode::Legacy, "legacy"),
            (KernelMode::Optimized, "optimized"),
        ] {
            let r = bench_one(topology, kernel, name, load, warmup, measured);
            println!(
                "  load {:.1} {:9}: {:>12.0} cycles/s  {:>12.0} phits/s  ({:.3}s wall)",
                r.offered_load, r.kernel, r.cycles_per_sec, r.phits_per_sec, r.wall_seconds
            );
            results.push(r);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"kernel-throughput\",\n");
    let _ = writeln!(json, "  \"topology\": \"{scale_name}\",");
    json.push_str("  \"network\": \"paper_table1\",\n");
    json.push_str("  \"routing\": \"base\",\n");
    json.push_str("  \"pattern\": \"uniform\",\n");
    let _ = writeln!(json, "  \"warmup_cycles\": {warmup},");
    let _ = writeln!(json, "  \"measured_cycles\": {measured},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"offered_load\": {}, \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.1}, \"phits_per_sec\": {:.1}, \"delivered_phits\": {}}}{comma}",
            r.kernel, r.offered_load, r.wall_seconds, r.cycles_per_sec, r.phits_per_sec, r.delivered_phits
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_optimized_over_legacy\": {\n");
    for (i, &load) in loads.iter().enumerate() {
        let legacy = results
            .iter()
            .find(|r| r.offered_load == load && r.kernel == "legacy")
            .expect("legacy run exists");
        let optimized = results
            .iter()
            .find(|r| r.offered_load == load && r.kernel == "optimized")
            .expect("optimized run exists");
        let comma = if i + 1 == loads.len() { "" } else { "," };
        let speedup = optimized.cycles_per_sec / legacy.cycles_per_sec;
        println!("  load {load:.1}: optimized/legacy = {speedup:.2}x");
        let _ = writeln!(json, "    \"{load}\": {speedup:.3}{comma}");
    }
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");
}
