//! Throughput during and after a link loss: the fault-injection recovery
//! curve.
//!
//! Fails the busiest ADV+1 global link (group 0 → group 1) at the end of
//! warm-up, restores it a third of the way into the measurement window, and
//! records the per-bin delivered throughput of every routing mechanism
//! around the outage — the fault-injection analogue of the paper's
//! transient figures (response to a *topology* change instead of a traffic
//! change).
//!
//! Usage:
//! ```text
//! cargo run --release -p df-bench --bin fault_recovery -- [small|medium|paper] [csv]
//! ```
//!
//! Prints one row per time bin (cycles relative to the fault) with one
//! column per routing mechanism (delivered phits per node·cycle in the
//! bin), then a during/after summary per mechanism on stderr. Deterministic:
//! rerun and diff.

use df_routing::RoutingKind;
use df_sim::{FaultPlan, Network, SimulationConfig};
use df_topology::{Dragonfly, GroupId};
use df_traffic::PatternKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = df_bench::Scale::from_args_with_flags(df_bench::Scale::small(), &["csv"]);
    let csv = args.iter().any(|a| a == "csv");

    let warmup = scale.warmup;
    let measure = scale.measure;
    let down_at = warmup;
    let up_at = warmup + measure / 3;
    let load = 0.15;

    // NOTE: deliberately pinned to the concrete Dragonfly family (the
    // recovery curve is a paper artifact); new code should build
    // `scale.topology_params().build()` and go through the `Topology` trait.
    let topo = Dragonfly::new(scale.topology);
    let (gw, gport) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(1));
    let routings = [
        RoutingKind::Minimal,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Ectn,
    ];

    eprintln!(
        "fault recovery: {} topology, ADV+1 at load {load}, link g0->g1 down @{down_at} up @{up_at}",
        scale.name
    );

    let num_nodes = scale.topology.num_nodes() as f64;
    let packet_phits = scale.network.packet_size_phits as u64;
    let mut bin_width = 0u64;
    let mut series: Vec<(RoutingKind, Vec<(i64, u64)>)> = Vec::new();
    for routing in routings {
        let cfg = SimulationConfig::builder()
            .topology(scale.topology)
            .network(scale.network)
            .routing(routing)
            .pattern(PatternKind::Adversarial { offset: 1 })
            .offered_load(load)
            .warmup_cycles(warmup)
            .measurement_cycles(measure)
            .seed(1)
            .faults(
                FaultPlan::new()
                    .link_down(down_at, gw, gport)
                    .link_up(up_at, gw, gport),
            )
            .build()
            .expect("valid configuration");
        let mut net = Network::new(cfg);
        net.run_cycles(warmup + measure);
        // the transient series origin is the end of warm-up for a constant
        // schedule — exactly the fault cycle
        let counts = net.metrics().delivery_count_series();
        bin_width = net.metrics().series_bin_width();
        let accepted = |from: i64, to: i64| -> f64 {
            if to <= from {
                return f64::NAN;
            }
            let phits: u64 = counts
                .iter()
                .filter(|(t, _)| *t >= from && *t < to)
                .map(|(_, n)| n * packet_phits)
                .sum();
            phits as f64 / (num_nodes * (to - from) as f64)
        };
        let outage = (up_at - down_at) as i64;
        // post-repair settling margin, clamped so short smoke scales keep a
        // non-empty window
        let settle = (measure as i64 / 4).clamp(1, 200);
        let after_from = (outage + settle).min(measure as i64 - 1);
        let before = accepted(-(warmup as i64) / 2, 0);
        let during = accepted(0, outage);
        let after = accepted(after_from, measure as i64);
        eprintln!(
            "  {:8}: accepted before {before:.4}  during outage {during:.4}  after repair {after:.4}  (dropped {} packets)",
            routing.label(),
            net.metrics().dropped_on_fault_packets(),
        );
        series.push((routing, counts));
    }

    // merged table: one row per bin present in any series
    let mut times: Vec<i64> = series
        .iter()
        .flat_map(|(_, s)| s.iter().map(|(t, _)| *t))
        .collect();
    times.sort_unstable();
    times.dedup();
    let sep = if csv { "," } else { "\t" };
    let header: Vec<String> = std::iter::once("cycles_since_fault".to_string())
        .chain(series.iter().map(|(r, _)| r.label().to_string()))
        .collect();
    println!("{}", header.join(sep));
    for t in times {
        let mut row = vec![t.to_string()];
        for (_, s) in &series {
            let phits = s
                .iter()
                .find(|(st, _)| *st == t)
                .map(|(_, n)| n * packet_phits)
                .unwrap_or(0);
            // per-bin accepted load in phits/(node·cycle)
            row.push(format!(
                "{:.5}",
                phits as f64 / (num_nodes * bin_width.max(1) as f64)
            ));
        }
        println!("{}", row.join(sep));
    }
}
