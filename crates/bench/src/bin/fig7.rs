//! Regenerate Figure 7: transient latency and misrouted-packet percentage
//! after a UN→ADV+1 traffic change at 20% load with Table I (small) buffers.
//! Usage: `cargo run --release -p df-bench --bin fig7 -- [small|medium|paper]`
//! Dragonfly-only paper reproduction: `--topology=` selections are rejected.

fn main() {
    let scale = df_bench::Scale::from_args_dragonfly_only("fig7");
    let (latency, misroute) = df_bench::figure7(
        &scale,
        scale.network,
        0.20,
        1_500,
        50,
        "Figure 7 — UN->ADV+1, Table I buffers",
    );
    println!("{}", latency.to_text());
    println!("{}", misroute.to_text());
}
