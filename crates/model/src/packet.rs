//! Packets and their per-packet routing state.
//!
//! The simulator uses Virtual Cut-Through switching: packets (8 phits in the
//! paper's Table I) move between buffers as a unit, buffer occupancy is
//! accounted in phits, and a packet's tail defines when resources (input
//! buffer slots, contention-counter increments) are released.
//!
//! The [`RoutingState`] carried by each packet records everything the
//! hop-by-hop routing algorithms need to remember between routers:
//!
//! * the number of local/global hops already taken (drives the hop-indexed
//!   virtual-channel assignment that guarantees deadlock freedom),
//! * the Valiant intermediate router for source-routed schemes (VAL, PB),
//! * the committed nonminimal global link for in-transit schemes (OLM, Base,
//!   Hybrid, ECtN),
//! * the committed local-misroute detour,
//! * whether (and when) the packet was misrouted, for the misrouted-packet
//!   statistics of Figures 7b and the throughput discussion.

use df_topology::{GroupId, NodeId, Port, RouterId, Topology};
use serde::{Deserialize, Serialize};

use crate::time::Cycle;

/// Unique identifier of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl PacketId {
    /// Raw value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Summary of the misrouting a packet experienced, used by the statistics
/// collectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisrouteFlags {
    /// The packet took (or irrevocably committed to) a nonminimal global
    /// path — through an intermediate group, or to a Valiant intermediate
    /// router outside the source and destination routers' minimal path.
    pub global: bool,
    /// The packet took at least one nonminimal local hop.
    pub local: bool,
}

/// The router a packet is currently trying to reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteObjective {
    /// Head to the committed nonminimal global link's gateway router (and
    /// then take that global link).
    NonminimalGateway(RouterId, Port),
    /// Head to a committed local-misroute detour router.
    LocalDetour(RouterId),
    /// Head to the Valiant intermediate router (source-routed schemes).
    Intermediate(RouterId),
    /// Head minimally to the destination router.
    Destination(RouterId),
    /// Already at the destination router: eject to the terminal port.
    Eject(Port),
}

/// Per-packet routing state, updated as the packet traverses the network.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingState {
    /// Local (intra-group) hops already taken.
    pub local_hops: u8,
    /// Global (inter-group) hops already taken.
    pub global_hops: u8,
    /// Local hops taken since the last global hop (i.e. inside the group the
    /// packet currently sits in). Drives the phase-based VC assignment.
    pub local_hops_since_global: u8,
    /// Valiant intermediate router (VAL, and PB when it source-routes
    /// nonminimally). `None` for purely in-transit adaptive schemes.
    pub intermediate_router: Option<RouterId>,
    /// Set once the Valiant intermediate router has been visited.
    pub intermediate_reached: bool,
    /// Committed nonminimal global link: the gateway router inside the
    /// current group that owns it and the global port to take there.
    /// Cleared when the global hop is taken.
    pub nonminimal_global: Option<(RouterId, Port)>,
    /// Committed local-misroute detour router in the current group. Cleared
    /// on arrival at that router.
    pub local_detour: Option<RouterId>,
    /// Group in which the packet last performed a local misroute (at most one
    /// local misroute per group is allowed, which bounds path length).
    pub local_misrouted_in: Option<GroupId>,
    /// Misrouting summary for statistics.
    pub flags: MisrouteFlags,
    /// Whether the minimal-vs-nonminimal commitment has been counted by the
    /// statistics (the transient figures count decisions at commit time).
    pub commit_recorded: bool,
}

impl RoutingState {
    /// Fresh state for a newly generated packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the packet has committed to a nonminimal global path (either
    /// in-transit or via a Valiant intermediate router).
    pub fn globally_misrouted(&self) -> bool {
        self.flags.global
    }

    /// True if the packet has taken a nonminimal local hop.
    pub fn locally_misrouted(&self) -> bool {
        self.flags.local
    }

    /// Commit to a Valiant-style intermediate router (source routing).
    pub fn commit_intermediate(&mut self, router: RouterId, counts_as_misroute: bool) {
        self.intermediate_router = Some(router);
        self.intermediate_reached = false;
        if counts_as_misroute {
            self.flags.global = true;
        }
    }

    /// Commit to an in-transit nonminimal global link (gateway router and its
    /// global port within the current group).
    pub fn commit_nonminimal_global(&mut self, gateway: RouterId, port: Port) {
        debug_assert!(
            self.nonminimal_global.is_none(),
            "only one global misroute per packet"
        );
        self.nonminimal_global = Some((gateway, port));
        self.flags.global = true;
    }

    /// Replace a committed nonminimal global link whose gateway link died
    /// with a live alternative (fault re-commit). Unlike
    /// [`commit_nonminimal_global`](Self::commit_nonminimal_global) this may
    /// overwrite an existing commitment: the committed hop was never taken
    /// (`global_hops` is still 0), so the one-global-misroute bound — which
    /// counts *hops*, not intents — is preserved.
    pub fn recommit_nonminimal_global(&mut self, gateway: RouterId, port: Port) {
        debug_assert_eq!(self.global_hops, 0, "re-commit only before the global hop");
        self.nonminimal_global = Some((gateway, port));
        self.flags.global = true;
    }

    /// Drop a committed nonminimal global link whose gateway link died and
    /// fall back to the minimal path (fault re-commit). The misroute flag is
    /// kept: the packet's statistics still record the intent.
    pub fn abandon_nonminimal_global(&mut self) {
        self.nonminimal_global = None;
    }

    /// Replace a Valiant intermediate router whose path died with a live
    /// alternative (fault re-commit).
    pub fn recommit_intermediate(&mut self, router: RouterId) {
        debug_assert!(!self.intermediate_reached, "waypoint already visited");
        self.intermediate_router = Some(router);
        self.intermediate_reached = false;
    }

    /// Abandon a Valiant intermediate router that can no longer be reached
    /// (fault re-commit): the packet skips the waypoint and heads minimally
    /// to its destination — strictly fewer hops, so the VC ladder is
    /// trivially preserved.
    pub fn abandon_intermediate(&mut self) {
        self.intermediate_reached = true;
    }

    /// Abandon a committed local detour whose link died (fault re-commit).
    /// `local_misrouted_in` is kept: the once-per-group bound still counts
    /// the attempt.
    pub fn abandon_local_detour(&mut self) {
        self.local_detour = None;
    }

    /// Commit to a local-misroute detour through `router` in group `group`.
    pub fn commit_local_detour(&mut self, router: RouterId, group: GroupId) {
        self.local_detour = Some(router);
        self.local_misrouted_in = Some(group);
        self.flags.local = true;
    }

    /// Whether a local misroute is still allowed in `group`.
    pub fn local_misroute_allowed_in(&self, group: GroupId) -> bool {
        self.local_misrouted_in != Some(group)
    }

    /// Record the traversal of one hop leaving a router through `port`, and
    /// update commitments the hop fulfils. `arrived_at` is the router at the
    /// far end of the hop.
    pub fn note_hop(&mut self, topo: &impl Topology, port: Port, arrived_at: RouterId) {
        match port.class(&topo.layout()) {
            df_topology::PortClass::Local => {
                self.local_hops += 1;
                self.local_hops_since_global += 1;
            }
            df_topology::PortClass::Global => {
                self.global_hops += 1;
                self.local_hops_since_global = 0;
                // taking any global hop consumes a pending nonminimal-global
                // commitment (it was the committed link, by construction)
                self.nonminimal_global = None;
            }
            df_topology::PortClass::Terminal => {}
        }
        if self.local_detour == Some(arrived_at) {
            self.local_detour = None;
        }
        if self.intermediate_router == Some(arrived_at) {
            self.intermediate_reached = true;
        }
    }

    /// The router-level objective of the packet when it sits in router
    /// `current` and is destined to node `dst`.
    pub fn objective(
        &self,
        topo: &impl Topology,
        current: RouterId,
        dst: NodeId,
    ) -> RouteObjective {
        let dst_router = topo.node_router(dst);
        // 1. pending local detour has priority (we already committed the hop)
        if let Some(detour) = self.local_detour {
            if detour != current {
                return RouteObjective::LocalDetour(detour);
            }
        }
        // 2. pending nonminimal global link
        if let Some((gateway, port)) = self.nonminimal_global {
            return RouteObjective::NonminimalGateway(gateway, port);
        }
        // 3. Valiant intermediate router not yet reached
        if let (Some(inter), false) = (self.intermediate_router, self.intermediate_reached) {
            if inter != current {
                return RouteObjective::Intermediate(inter);
            }
        }
        // 4. destination
        if current == dst_router {
            RouteObjective::Eject(topo.node_port(dst))
        } else {
            RouteObjective::Destination(dst_router)
        }
    }
}

/// A packet travelling through the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet length in phits (8 in Table I).
    pub size_phits: u32,
    /// Cycle at which the source generated the packet (latency is measured
    /// from generation, so it includes source-queue waiting time).
    pub generated_at: Cycle,
    /// Cycle at which the packet entered the injection buffer of its source
    /// router, if it has.
    pub injected_at: Option<Cycle>,
    /// Per-packet routing state.
    pub routing: RoutingState,
}

impl Packet {
    /// Create a freshly generated packet.
    pub fn new(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        size_phits: u32,
        generated_at: Cycle,
    ) -> Self {
        Packet {
            id,
            src,
            dst,
            size_phits,
            generated_at,
            injected_at: None,
            routing: RoutingState::new(),
        }
    }

    /// Total number of hops taken so far (local + global).
    pub fn hops(&self) -> u32 {
        self.routing.local_hops as u32 + self.routing.global_hops as u32
    }

    /// Serialize the packet exactly, routing state included (snapshot
    /// support).
    pub fn encode(&self, e: &mut df_engine::Encoder) {
        e.u64(self.id.0);
        e.u32(self.src.0);
        e.u32(self.dst.0);
        e.u32(self.size_phits);
        e.u64(self.generated_at);
        match self.injected_at {
            None => e.bool(false),
            Some(c) => {
                e.bool(true);
                e.u64(c);
            }
        }
        let r = &self.routing;
        e.u8(r.local_hops);
        e.u8(r.global_hops);
        e.u8(r.local_hops_since_global);
        match r.intermediate_router {
            None => e.bool(false),
            Some(id) => {
                e.bool(true);
                e.u32(id.0);
            }
        }
        e.bool(r.intermediate_reached);
        match r.nonminimal_global {
            None => e.bool(false),
            Some((gw, port)) => {
                e.bool(true);
                e.u32(gw.0);
                e.u32(port.0);
            }
        }
        match r.local_detour {
            None => e.bool(false),
            Some(id) => {
                e.bool(true);
                e.u32(id.0);
            }
        }
        match r.local_misrouted_in {
            None => e.bool(false),
            Some(g) => {
                e.bool(true);
                e.u32(g.0);
            }
        }
        e.bool(r.flags.global);
        e.bool(r.flags.local);
        e.bool(r.commit_recorded);
    }

    /// Rebuild a packet from [`encode`](Self::encode) output.
    pub fn decode(d: &mut df_engine::Decoder) -> Result<Self, df_engine::CodecError> {
        let id = PacketId(d.u64()?);
        let src = NodeId(d.u32()?);
        let dst = NodeId(d.u32()?);
        let size_phits = d.u32()?;
        let generated_at = d.u64()?;
        let injected_at = if d.bool()? { Some(d.u64()?) } else { None };
        let local_hops = d.u8()?;
        let global_hops = d.u8()?;
        let local_hops_since_global = d.u8()?;
        let intermediate_router = if d.bool()? {
            Some(RouterId(d.u32()?))
        } else {
            None
        };
        let intermediate_reached = d.bool()?;
        let nonminimal_global = if d.bool()? {
            Some((RouterId(d.u32()?), Port(d.u32()?)))
        } else {
            None
        };
        let local_detour = if d.bool()? {
            Some(RouterId(d.u32()?))
        } else {
            None
        };
        let local_misrouted_in = if d.bool()? {
            Some(GroupId(d.u32()?))
        } else {
            None
        };
        let flags = MisrouteFlags {
            global: d.bool()?,
            local: d.bool()?,
        };
        let commit_recorded = d.bool()?;
        Ok(Packet {
            id,
            src,
            dst,
            size_phits,
            generated_at,
            injected_at,
            routing: RoutingState {
                local_hops,
                global_hops,
                local_hops_since_global,
                intermediate_router,
                intermediate_reached,
                nonminimal_global,
                local_detour,
                local_misrouted_in,
                flags,
                commit_recorded,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small())
    }

    #[test]
    fn new_packet_has_clean_state() {
        let p = Packet::new(PacketId(1), NodeId(0), NodeId(50), 8, 100);
        assert_eq!(p.hops(), 0);
        assert!(!p.routing.globally_misrouted());
        assert!(!p.routing.locally_misrouted());
        assert_eq!(p.injected_at, None);
        assert_eq!(p.size_phits, 8);
    }

    #[test]
    fn objective_is_eject_at_destination_router() {
        let t = topo();
        let dst = NodeId(13);
        let dst_router = t.node_router(dst);
        let state = RoutingState::new();
        match state.objective(&t, dst_router, dst) {
            RouteObjective::Eject(port) => assert_eq!(port, t.node_port(dst)),
            other => panic!("expected eject, got {other:?}"),
        }
    }

    #[test]
    fn objective_is_destination_router_by_default() {
        let t = topo();
        let dst = NodeId(40);
        let state = RoutingState::new();
        match state.objective(&t, RouterId(0), dst) {
            RouteObjective::Destination(r) => assert_eq!(r, t.node_router(dst)),
            other => panic!("expected destination, got {other:?}"),
        }
    }

    #[test]
    fn valiant_intermediate_takes_priority_until_reached() {
        let t = topo();
        let dst = NodeId(40);
        let inter = RouterId(10);
        let mut state = RoutingState::new();
        state.commit_intermediate(inter, true);
        assert!(state.globally_misrouted());
        match state.objective(&t, RouterId(0), dst) {
            RouteObjective::Intermediate(r) => assert_eq!(r, inter),
            other => panic!("expected intermediate, got {other:?}"),
        }
        // arriving at the intermediate clears the waypoint
        state.note_hop(&t, t.local_port_to(RouterId(8), inter), inter);
        assert!(state.intermediate_reached);
        match state.objective(&t, inter, dst) {
            RouteObjective::Destination(r) => assert_eq!(r, t.node_router(dst)),
            other => panic!("expected destination, got {other:?}"),
        }
    }

    #[test]
    fn nonminimal_global_commitment_is_consumed_by_a_global_hop() {
        let t = topo();
        let dst = NodeId(60);
        let mut state = RoutingState::new();
        // commit to the global link of router 1, port offset 0
        let gateway = RouterId(1);
        let gport = Port::global(t.params(), 0);
        state.commit_nonminimal_global(gateway, gport);
        assert!(state.globally_misrouted());
        match state.objective(&t, RouterId(0), dst) {
            RouteObjective::NonminimalGateway(r, p) => {
                assert_eq!(r, gateway);
                assert_eq!(p, gport);
            }
            other => panic!("expected gateway, got {other:?}"),
        }
        // taking the global hop clears the commitment
        let (peer, _) = t.global_neighbor(gateway, 0).unwrap();
        state.note_hop(&t, gport, peer);
        assert_eq!(state.nonminimal_global, None);
        assert_eq!(state.global_hops, 1);
    }

    #[test]
    fn local_detour_has_priority_and_clears_on_arrival() {
        let t = topo();
        let dst = NodeId(60);
        let mut state = RoutingState::new();
        let group = t.router_group(RouterId(0));
        state.commit_local_detour(RouterId(2), group);
        assert!(state.locally_misrouted());
        assert!(!state.local_misroute_allowed_in(group));
        assert!(state.local_misroute_allowed_in(GroupId(5)));
        match state.objective(&t, RouterId(0), dst) {
            RouteObjective::LocalDetour(r) => assert_eq!(r, RouterId(2)),
            other => panic!("expected detour, got {other:?}"),
        }
        state.note_hop(&t, t.local_port_to(RouterId(0), RouterId(2)), RouterId(2));
        assert_eq!(state.local_detour, None);
        assert_eq!(state.local_hops, 1);
    }

    #[test]
    fn hop_counters_track_port_classes() {
        let t = topo();
        let mut state = RoutingState::new();
        state.note_hop(&t, Port::local(t.params(), 0), RouterId(1));
        state.note_hop(&t, Port::global(t.params(), 1), RouterId(20));
        state.note_hop(&t, Port::local(t.params(), 2), RouterId(21));
        assert_eq!(state.local_hops, 2);
        assert_eq!(state.global_hops, 1);
        // terminal hop does not count
        state.note_hop(&t, Port::terminal(0), RouterId(21));
        assert_eq!(state.local_hops, 2);
        assert_eq!(state.global_hops, 1);
    }

    #[test]
    #[should_panic(expected = "only one global misroute")]
    #[cfg(debug_assertions)]
    fn double_global_commit_is_a_bug() {
        let t = topo();
        let mut state = RoutingState::new();
        state.commit_nonminimal_global(RouterId(1), Port::global(t.params(), 0));
        state.commit_nonminimal_global(RouterId(2), Port::global(t.params(), 1));
    }

    #[test]
    fn minimal_commitment_does_not_set_flags() {
        let mut state = RoutingState::new();
        state.commit_intermediate(RouterId(9), false);
        assert!(!state.globally_misrouted());
    }

    #[test]
    fn recommit_replaces_a_dead_nonminimal_commitment() {
        let t = topo();
        let mut state = RoutingState::new();
        state.commit_nonminimal_global(RouterId(1), Port::global(t.params(), 0));
        // unlike commit_nonminimal_global, recommit may overwrite
        state.recommit_nonminimal_global(RouterId(2), Port::global(t.params(), 1));
        assert_eq!(
            state.nonminimal_global,
            Some((RouterId(2), Port::global(t.params(), 1)))
        );
        assert!(state.globally_misrouted(), "the misroute intent is kept");
        state.abandon_nonminimal_global();
        assert_eq!(state.nonminimal_global, None);
        assert!(
            state.globally_misrouted(),
            "abandoning keeps the statistics flag"
        );
    }

    #[test]
    fn waypoint_recommit_and_abandon() {
        let t = topo();
        let dst = NodeId(40);
        let mut state = RoutingState::new();
        state.commit_intermediate(RouterId(9), true);
        state.recommit_intermediate(RouterId(12));
        match state.objective(&t, RouterId(0), dst) {
            RouteObjective::Intermediate(r) => assert_eq!(r, RouterId(12)),
            other => panic!("expected the replacement waypoint, got {other:?}"),
        }
        state.abandon_intermediate();
        assert!(state.intermediate_reached);
        match state.objective(&t, RouterId(0), dst) {
            RouteObjective::Destination(_) => {}
            other => panic!("an abandoned waypoint routes to the destination, got {other:?}"),
        }
    }

    #[test]
    fn detour_abandon_keeps_the_per_group_budget_spent() {
        let t = topo();
        let group = t.router_group(RouterId(0));
        let mut state = RoutingState::new();
        state.commit_local_detour(RouterId(2), group);
        state.abandon_local_detour();
        assert_eq!(state.local_detour, None);
        assert!(
            !state.local_misroute_allowed_in(group),
            "abandoning a detour does not refund the once-per-group budget"
        );
    }
}
