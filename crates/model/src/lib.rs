//! # df-model — shared model types
//!
//! Types shared by the router microarchitecture (`df-router`), the routing
//! algorithms (`df-routing`), the traffic generators (`df-traffic`) and the
//! simulator (`df-sim`):
//!
//! * [`time`] — the simulation clock ([`Cycle`]),
//! * [`vc`] — virtual-channel identifiers,
//! * [`packet`] — packets and their per-packet routing state (hops taken,
//!   misrouting commitments, Valiant intermediate destinations),
//! * [`config`] — the network configuration corresponding to the paper's
//!   Table I (buffer sizes, virtual channels, link latencies, router
//!   pipeline, crossbar speedup, packet size) with paper-scale and scaled
//!   presets.

#![warn(missing_docs)]

pub mod config;
pub mod packet;
pub mod time;
pub mod vc;

pub use config::{BufferConfig, LatencyConfig, NetworkConfig, VcConfig};
pub use packet::{MisrouteFlags, Packet, PacketId, RouteObjective, RoutingState};
pub use time::Cycle;
pub use vc::VcId;
