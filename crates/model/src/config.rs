//! Network (router + link) configuration — the paper's Table I.
//!
//! [`NetworkConfig`] bundles everything the router microarchitecture and the
//! links need: virtual-channel counts per port class, buffer depths, link
//! latencies, router pipeline depth, crossbar speedup and packet size. The
//! routing-algorithm thresholds live in `df-routing::RoutingConfig`, and the
//! experiment-level knobs (warm-up, measurement window, offered load) in
//! `df-sim::SimulationConfig`.

use serde::{Deserialize, Serialize};

/// Virtual channel counts per port class.
///
/// The defaults follow Table I with one deviation documented in `DESIGN.md`:
/// local ports get 4 VCs for *all* routings (the paper uses 3 for the
/// OLM/contention family and 4 for VAL/PB). The uniform hop-indexed VC
/// assignment we use needs the 4th VC whenever both a global misroute and a
/// local misroute in the intermediate group are allowed on the same path,
/// which keeps the scheme trivially deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcConfig {
    /// VCs on injection (terminal, node→router) ports.
    pub injection: u8,
    /// VCs on local (intra-group) ports.
    pub local: u8,
    /// VCs on global (inter-group) ports.
    pub global: u8,
}

impl Default for VcConfig {
    fn default() -> Self {
        VcConfig {
            injection: 3,
            local: 4,
            global: 2,
        }
    }
}

impl VcConfig {
    /// Average number of VCs over the input ports of a router with the given
    /// port counts. This is the quantity the paper's §VI-A uses to reason
    /// about the misrouting threshold (2.74 for the Table I router).
    pub fn mean_vcs_per_port(
        &self,
        injection_ports: u32,
        local_ports: u32,
        global_ports: u32,
    ) -> f64 {
        let total_ports = injection_ports + local_ports + global_ports;
        if total_ports == 0 {
            return 0.0;
        }
        let total_vcs = self.injection as u32 * injection_ports
            + self.local as u32 * local_ports
            + self.global as u32 * global_ports;
        total_vcs as f64 / total_ports as f64
    }
}

/// Buffer depths, in phits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Input buffer per VC on injection ports.
    pub injection_input_per_vc: u32,
    /// Input buffer per VC on local ports.
    pub local_input_per_vc: u32,
    /// Input buffer per VC on global ports (deeper: the global link RTT is
    /// 10× the local one).
    pub global_input_per_vc: u32,
    /// Output buffer per port (shared across VCs).
    pub output_buffer: u32,
}

impl Default for BufferConfig {
    fn default() -> Self {
        // Table I: 32 phits for output and local input buffers (per VC),
        // 256 phits for global input buffers (per VC).
        BufferConfig {
            injection_input_per_vc: 32,
            local_input_per_vc: 32,
            global_input_per_vc: 256,
            output_buffer: 32,
        }
    }
}

impl BufferConfig {
    /// The "large buffers" variant used by Figure 8: 256-phit local and
    /// 2048-phit global input buffers per VC (output buffers keep their
    /// Table I size).
    pub fn large() -> Self {
        BufferConfig {
            injection_input_per_vc: 32,
            local_input_per_vc: 256,
            global_input_per_vc: 2048,
            output_buffer: 32,
        }
    }
}

/// Link and router latencies, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Local (intra-group) link latency, applied to data and credits.
    pub local_link: u32,
    /// Global (inter-group) link latency, applied to data and credits.
    pub global_link: u32,
    /// Injection/ejection link latency (node ↔ router).
    pub terminal_link: u32,
    /// Router pipeline latency (head-of-input-buffer to output buffer).
    pub router_pipeline: u32,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            local_link: 10,
            global_link: 100,
            terminal_link: 1,
            router_pipeline: 5,
        }
    }
}

/// Complete network configuration (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Packet size in phits (8 in the paper: 80-byte packets of 10-byte
    /// phits).
    pub packet_size_phits: u32,
    /// Phit size in bytes (10 in the paper — only used for documentation and
    /// bandwidth conversions).
    pub phit_bytes: u32,
    /// Crossbar / allocator frequency speedup: the allocator performs this
    /// many allocation iterations per cycle (2× in the paper, to mitigate
    /// head-of-line blocking of the simple separable allocator).
    pub allocator_speedup: u32,
    /// Virtual channels per port class.
    pub vcs: VcConfig,
    /// Buffer depths.
    pub buffers: BufferConfig,
    /// Latencies.
    pub latencies: LatencyConfig,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            packet_size_phits: 8,
            phit_bytes: 10,
            allocator_speedup: 2,
            vcs: VcConfig::default(),
            buffers: BufferConfig::default(),
            latencies: LatencyConfig::default(),
        }
    }
}

impl NetworkConfig {
    /// The configuration of the paper's Table I (default values).
    pub fn paper_table1() -> Self {
        Self::default()
    }

    /// Table I configuration with the Figure 8 "large buffers" variant.
    pub fn paper_large_buffers() -> Self {
        NetworkConfig {
            buffers: BufferConfig::large(),
            ..Self::default()
        }
    }

    /// A configuration with shorter link latencies, useful for fast unit
    /// tests where the 100-cycle global latency would dominate run time.
    pub fn fast_test() -> Self {
        NetworkConfig {
            latencies: LatencyConfig {
                local_link: 2,
                global_link: 6,
                terminal_link: 1,
                router_pipeline: 2,
            },
            ..Self::default()
        }
    }

    /// Number of VCs for a port of the given class.
    pub fn vcs_for(&self, class: df_topology::PortClass) -> u8 {
        match class {
            df_topology::PortClass::Terminal => self.vcs.injection,
            df_topology::PortClass::Local => self.vcs.local,
            df_topology::PortClass::Global => self.vcs.global,
        }
    }

    /// Input-buffer depth per VC for a port of the given class, in phits.
    pub fn input_buffer_for(&self, class: df_topology::PortClass) -> u32 {
        match class {
            df_topology::PortClass::Terminal => self.buffers.injection_input_per_vc,
            df_topology::PortClass::Local => self.buffers.local_input_per_vc,
            df_topology::PortClass::Global => self.buffers.global_input_per_vc,
        }
    }

    /// Link latency for a port of the given class, in cycles.
    pub fn link_latency_for(&self, class: df_topology::PortClass) -> u32 {
        match class {
            df_topology::PortClass::Terminal => self.latencies.terminal_link,
            df_topology::PortClass::Local => self.latencies.local_link,
            df_topology::PortClass::Global => self.latencies.global_link,
        }
    }

    /// Validate internal consistency (buffers can hold at least one packet,
    /// non-zero packet size, ...). Returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_size_phits == 0 {
            return Err("packet size must be at least one phit".into());
        }
        if self.allocator_speedup == 0 {
            return Err("allocator speedup must be at least 1".into());
        }
        if self.vcs.injection == 0 || self.vcs.local == 0 || self.vcs.global == 0 {
            return Err("every port class needs at least one VC".into());
        }
        let min_buf = self.packet_size_phits;
        if self.buffers.injection_input_per_vc < min_buf
            || self.buffers.local_input_per_vc < min_buf
            || self.buffers.global_input_per_vc < min_buf
            || self.buffers.output_buffer < min_buf
        {
            return Err(format!(
                "every buffer must hold at least one packet ({min_buf} phits)"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::PortClass;

    #[test]
    fn defaults_match_table1() {
        let c = NetworkConfig::paper_table1();
        assert_eq!(c.packet_size_phits, 8);
        assert_eq!(c.phit_bytes, 10);
        assert_eq!(c.allocator_speedup, 2);
        assert_eq!(c.latencies.local_link, 10);
        assert_eq!(c.latencies.global_link, 100);
        assert_eq!(c.latencies.router_pipeline, 5);
        assert_eq!(c.buffers.local_input_per_vc, 32);
        assert_eq!(c.buffers.global_input_per_vc, 256);
        assert_eq!(c.buffers.output_buffer, 32);
        assert_eq!(c.vcs.global, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn large_buffer_variant_matches_figure8() {
        let c = NetworkConfig::paper_large_buffers();
        assert_eq!(c.buffers.local_input_per_vc, 256);
        assert_eq!(c.buffers.global_input_per_vc, 2048);
        assert_eq!(
            c.buffers.output_buffer, 32,
            "output buffers keep Table I size"
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn per_class_lookups() {
        let c = NetworkConfig::paper_table1();
        assert_eq!(c.vcs_for(PortClass::Global), 2);
        assert_eq!(c.vcs_for(PortClass::Terminal), 3);
        assert_eq!(c.input_buffer_for(PortClass::Global), 256);
        assert_eq!(c.input_buffer_for(PortClass::Local), 32);
        assert_eq!(c.link_latency_for(PortClass::Local), 10);
        assert_eq!(c.link_latency_for(PortClass::Global), 100);
    }

    #[test]
    fn mean_vcs_per_port_reproduces_paper_analysis() {
        // The paper's §VI-A: with Table I VC counts (3 injection, 3 local,
        // 2 global on a 31-port router) the mean is 2.74. Our default uses 4
        // local VCs, so check the paper's number with the paper's counts.
        let paper_vcs = VcConfig {
            injection: 3,
            local: 3,
            global: 2,
        };
        let mean = paper_vcs.mean_vcs_per_port(8, 15, 8);
        assert!((mean - 2.74).abs() < 0.01, "mean {mean} should be ~2.74");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = NetworkConfig::paper_table1();
        c.packet_size_phits = 0;
        assert!(c.validate().is_err());

        let mut c = NetworkConfig::paper_table1();
        c.buffers.local_input_per_vc = 4; // smaller than one 8-phit packet
        assert!(c.validate().is_err());

        let mut c = NetworkConfig::paper_table1();
        c.vcs.global = 0;
        assert!(c.validate().is_err());

        let mut c = NetworkConfig::paper_table1();
        c.allocator_speedup = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fast_test_config_is_valid_and_quick() {
        let c = NetworkConfig::fast_test();
        assert!(c.validate().is_ok());
        assert!(c.latencies.global_link < 10);
    }

    #[test]
    fn copies_are_independent() {
        let a = NetworkConfig::paper_table1();
        let mut b = a;
        b.buffers.output_buffer = 64;
        assert_eq!(a.buffers.output_buffer, 32);
        assert_eq!(b.buffers.output_buffer, 64);
    }
}
