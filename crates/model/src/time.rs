//! Simulation clock.

/// A simulation cycle count.
///
/// The simulator is cycle-driven at router frequency (1 GHz in the paper's
/// parametrisation, which makes one cycle equal one nanosecond). A plain
/// `u64` alias keeps arithmetic ergonomic in the hot loop; experiments that
/// need signed arithmetic relative to an event (e.g. "cycles since the
/// traffic change" in the transient figures) convert to `i64` locally.
pub type Cycle = u64;

/// Sentinel used for "never" / "not yet scheduled" timestamps.
pub const NEVER: Cycle = Cycle::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_larger_than_any_realistic_time() {
        let horizon: Cycle = 100_000_000;
        assert!(NEVER > horizon);
    }
}
