//! Virtual-channel identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a virtual channel within a port.
///
/// The paper's deadlock-avoidance scheme assigns VCs by hop index (local VC =
/// number of local hops already taken, global VC = number of global hops
/// already taken), so VC indices are small (at most 3 locally, 1 globally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId(pub u8);

impl VcId {
    /// Raw index as `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

impl From<u8> for VcId {
    fn from(v: u8) -> Self {
        VcId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_basics() {
        assert_eq!(VcId(2).index(), 2);
        assert_eq!(VcId::from(3), VcId(3));
        assert!(VcId(0) < VcId(1));
        assert_eq!(VcId(1).to_string(), "vc1");
    }
}
