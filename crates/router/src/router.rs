//! The [`Router`] object: ports, buffers, counters and allocation for one
//! Dragonfly router.

use df_model::{Cycle, NetworkConfig, Packet, VcId};
use df_topology::{
    AnyTopology, GatewayLiveness, GroupId, Port, PortClass, PortLayout, PortPeer, RouterId,
    Topology,
};

use crate::allocator::{AllocationRequest, Allocator, Grant};
use crate::contention::ContentionCounters;
use crate::ectn::EctnState;
use crate::input::{InputPort, PoppedPacket};
use crate::output::OutputPort;
use crate::pb::PbState;

/// Everything the simulator must do after a grant is applied: return credits
/// upstream and (for non-terminal outputs) know where the packet is heading.
#[derive(Debug, Clone)]
pub struct AppliedGrant {
    /// The grant that was applied.
    pub grant: Grant,
    /// Size of the forwarded packet in phits (credits to return upstream).
    pub freed_phits: u32,
    /// Class of the input port the packet came from; terminal inputs have no
    /// upstream router, so no credit message is generated for them.
    pub input_class: PortClass,
}

/// An input-output-buffered virtual-channel router.
#[derive(Debug, Clone)]
pub struct Router {
    id: RouterId,
    topo: AnyTopology,
    config: NetworkConfig,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    contention: ContentionCounters,
    ectn: EctnState,
    pb: PbState,
    allocator: Allocator,
    /// Queued packets per input port — lets the per-cycle loop skip empty
    /// ports in O(1) instead of scanning every VC.
    occupied_per_port: Vec<u32>,
    /// Total queued input packets (sum of `occupied_per_port`).
    occupied_total: u32,
    /// Head packets currently awaiting contention-counter registration —
    /// an O(1) guard that skips the registration scan entirely on the
    /// (common) cycles where no new head appeared.
    unregistered_count: u32,
    /// Whether the *outgoing* direction of each port's link is usable
    /// (fault injection). All `true` in a healthy network; mirrored from
    /// the simulator's `LinkState` when fault events fire. A down port is
    /// never granted by the allocator and never transmits; packets staged
    /// behind it at the fault instant are dropped by the simulator
    /// ([`Router::drop_staged_for_dead_port`] — the serialisation buffer
    /// is lost with the link).
    link_up: Vec<bool>,
    /// Number of `false` entries in `link_up` (O(1) healthy fast path).
    links_down: u32,
    /// This router's (possibly stale) copy of the network-wide
    /// gateway-liveness map, refreshed by the PB/ECtN dissemination step.
    /// Pristine all-up — and never installed — for mechanisms without a
    /// dissemination channel (MIN, VAL, OLM, Base, Hybrid), which therefore
    /// keep the discover-at-gateway behaviour.
    link_view: GatewayLiveness,
}

impl Router {
    /// Build a router for position `id` of `topo` with the given
    /// configuration. Input buffers are sized by the class of the *local*
    /// port; output credits are sized by the class/VC-count of the peer's
    /// input port at the far end of each link.
    pub fn new(id: RouterId, topo: impl Into<AnyTopology>, config: NetworkConfig) -> Self {
        let topo = topo.into();
        let layout = topo.layout();
        let radix = layout.radix();
        let mut inputs = Vec::with_capacity(radix as usize);
        let mut outputs = Vec::with_capacity(radix as usize);
        for port in Port::all(&layout) {
            let class = port.class(&layout);
            inputs.push(InputPort::new(
                class,
                config.vcs_for(class),
                config.input_buffer_for(class),
            ));
            // The downstream buffer of an output link is the input buffer of
            // the same-class port on the peer router (links are symmetric in
            // class), except terminal ports which eject to the node.
            let output = match class {
                PortClass::Terminal => OutputPort::new(class, 0, 0, config.buffers.output_buffer),
                PortClass::Local | PortClass::Global => OutputPort::new(
                    class,
                    config.vcs_for(class),
                    config.input_buffer_for(class),
                    config.buffers.output_buffer,
                ),
            };
            outputs.push(output);
        }
        let global_links = topo.global_links_per_group() as usize;
        Router {
            id,
            topo,
            config,
            inputs,
            outputs,
            contention: ContentionCounters::new(radix as usize),
            ectn: EctnState::new(global_links),
            pb: PbState::new(topo.own_globals(id) as usize, global_links),
            allocator: Allocator::new(radix as usize),
            occupied_per_port: vec![0; radix as usize],
            occupied_total: 0,
            unregistered_count: 0,
            link_up: vec![true; radix as usize],
            links_down: 0,
            link_view: GatewayLiveness::new(&topo),
        }
    }

    // ------------------------------------------------------------------
    // Identity and configuration
    // ------------------------------------------------------------------

    /// This router's identifier.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// The group this router belongs to.
    pub fn group(&self) -> GroupId {
        self.topo.router_group(self.id)
    }

    /// The topology the router is embedded in.
    pub fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of ports (radix).
    pub fn num_ports(&self) -> usize {
        self.inputs.len()
    }

    // ------------------------------------------------------------------
    // State access
    // ------------------------------------------------------------------

    /// Contention counters (paper §III-B).
    pub fn contention(&self) -> &ContentionCounters {
        &self.contention
    }

    /// Mutable contention counters. The simulator normally updates them
    /// through [`Router::register_head`] / [`Router::apply_grant`]; direct
    /// access exists for tests and for the ablation studies that inject
    /// synthetic counter states.
    pub fn contention_mut(&mut self) -> &mut ContentionCounters {
        &mut self.contention
    }

    /// ECtN partial/combined counters (paper §III-D).
    pub fn ectn(&self) -> &EctnState {
        &self.ectn
    }

    /// Mutable ECtN state (used by the group broadcast step).
    pub fn ectn_mut(&mut self) -> &mut EctnState {
        &mut self.ectn
    }

    /// PiggyBacking saturation state.
    pub fn pb(&self) -> &PbState {
        &self.pb
    }

    /// Mutable PiggyBacking state (updated by the PB policy and the group
    /// dissemination step).
    pub fn pb_mut(&mut self) -> &mut PbState {
        &mut self.pb
    }

    /// Borrow an input port.
    pub fn input(&self, port: Port) -> &InputPort {
        &self.inputs[port.index()]
    }

    /// Mutably borrow an input port.
    pub fn input_mut(&mut self, port: Port) -> &mut InputPort {
        &mut self.inputs[port.index()]
    }

    /// Borrow an output port.
    pub fn output(&self, port: Port) -> &OutputPort {
        &self.outputs[port.index()]
    }

    /// Mutably borrow an output port.
    pub fn output_mut(&mut self, port: Port) -> &mut OutputPort {
        &mut self.outputs[port.index()]
    }

    /// Total packets buffered in all input VCs.
    pub fn queued_packets(&self) -> usize {
        self.inputs
            .iter()
            .map(|p| p.queued_packets())
            .sum::<usize>()
            + self
                .outputs
                .iter()
                .map(|o| o.staged_packets())
                .sum::<usize>()
    }

    // ------------------------------------------------------------------
    // Flow control entry points (called by the simulator)
    // ------------------------------------------------------------------

    /// Whether a packet of `size_phits` can be accepted into input VC
    /// `(port, vc)`. Used for injection (nodes have no credits) and for
    /// assertions; router-to-router transfers are guaranteed by credits.
    pub fn can_accept_input(&self, port: Port, vc: VcId, size_phits: u32) -> bool {
        self.inputs[port.index()]
            .vc(vc.index())
            .can_accept(size_phits)
    }

    /// Deliver a packet into input VC `(port, vc)` (link arrival or
    /// injection).
    pub fn receive_packet(&mut self, port: Port, vc: VcId, packet: Packet) {
        let input_vc = self.inputs[port.index()].vc_mut(vc.index());
        input_vc.push(packet);
        if input_vc.len() == 1 {
            // the packet became a head and needs counter registration
            self.unregistered_count += 1;
        }
        self.occupied_per_port[port.index()] += 1;
        self.occupied_total += 1;
    }

    /// Return `phits` credits for downstream VC `vc` of output `port` (the
    /// downstream router drained a packet; arrives after the link latency).
    pub fn receive_credits(&mut self, port: Port, vc: VcId, phits: u32) {
        self.outputs[port.index()].return_credits(vc, phits);
    }

    // ------------------------------------------------------------------
    // Link state (fault injection)
    // ------------------------------------------------------------------

    /// Whether the outgoing direction of `port`'s link is usable. Always
    /// true in a healthy network; routing policies consult this to steer
    /// around failed links and the allocator refuses grants towards down
    /// ports regardless of policy.
    #[inline]
    pub fn link_is_up(&self, port: Port) -> bool {
        self.link_up[port.index()]
    }

    /// Mark the outgoing direction of `port` up or down (mirrors the
    /// simulator's `LinkState` when a fault event fires).
    pub fn set_link_up(&mut self, port: Port, up: bool) {
        let flag = &mut self.link_up[port.index()];
        if *flag != up {
            *flag = up;
            if up {
                self.links_down -= 1;
            } else {
                self.links_down += 1;
            }
        }
    }

    /// Whether any outgoing link of this router is currently down (O(1)).
    #[inline]
    pub fn any_link_down(&self) -> bool {
        self.links_down > 0
    }

    /// This router's (possibly stale) view of the network-wide
    /// gateway-liveness map. Pristine all-up unless the routing mechanism
    /// disseminates link state (PB, ECtN).
    #[inline]
    pub fn link_view(&self) -> &GatewayLiveness {
        &self.link_view
    }

    /// Refresh the gateway-liveness view from the published copy (one
    /// integer compare when nothing changed).
    pub fn install_link_view(&mut self, published: &GatewayLiveness) {
        self.link_view.install_from(published);
    }

    /// Drop every packet staged in the output buffer of a port whose link
    /// just failed (the link-interface serialisation buffer is lost with the
    /// link). Returns the packets with the downstream VC each had consumed
    /// credits on, so the simulator can account the drops and ledger the
    /// credits exactly like in-flight drops.
    pub fn drop_staged_for_dead_port(&mut self, port: Port) -> Vec<(Packet, VcId)> {
        debug_assert!(!self.link_is_up(port), "only dead ports lose their stage");
        self.outputs[port.index()].drain_staged()
    }

    /// Discard the head packet of input VC `(port, vc)` — the fault-routing
    /// "unroutable packet" path. Releases the same per-router bookkeeping as
    /// [`Router::apply_grant`] (counter registrations, occupancy) but the
    /// packet leaves the network instead of an output buffer. Returns the
    /// packet and the input class (terminal inputs generate no upstream
    /// credit return).
    ///
    /// # Panics
    /// Panics if the input VC is empty.
    pub fn discard_head(&mut self, port: Port, vc: VcId) -> (Packet, PortClass) {
        let input_class = self.inputs[port.index()].class();
        let input_vc = self.inputs[port.index()].vc_mut(vc.index());
        let PoppedPacket {
            packet,
            registered_min_output,
            registered_ectn_link,
        } = input_vc
            .pop()
            .expect("discarded input VC must hold a packet");
        if registered_min_output.is_none() {
            self.unregistered_count -= 1;
        }
        if !input_vc.is_empty() {
            self.unregistered_count += 1;
        }
        self.occupied_per_port[port.index()] -= 1;
        self.occupied_total -= 1;
        if let Some(min_out) = registered_min_output {
            self.contention.decrement(min_out);
        }
        if let Some(link) = registered_ectn_link {
            self.ectn.decrement_partial(link);
        }
        (packet, input_class)
    }

    // ------------------------------------------------------------------
    // Contention / ECtN registration
    // ------------------------------------------------------------------

    /// Register the head packet of `(port, vc)`: increment the contention
    /// counter of its minimal output `min_output`, and if `ectn_link` is
    /// given (remote-destination packet at an injection or global input
    /// port), increment that ECtN partial counter as well.
    pub fn register_head(
        &mut self,
        port: Port,
        vc: VcId,
        min_output: Port,
        ectn_link: Option<u32>,
    ) {
        let input_vc = self.inputs[port.index()].vc_mut(vc.index());
        debug_assert!(input_vc.head_needs_registration());
        debug_assert!(self.unregistered_count > 0);
        self.unregistered_count -= 1;
        input_vc.set_registered_min_output(min_output);
        if let Some(link) = ectn_link {
            input_vc.set_registered_ectn_link(link);
        }
        self.contention.increment(min_output);
        if let Some(link) = ectn_link {
            self.ectn.increment_partial(link);
        }
    }

    /// `(port, vc)` pairs whose head packet has not yet been registered in
    /// the contention counters.
    pub fn unregistered_heads(&self) -> Vec<(Port, VcId)> {
        let mut out = Vec::new();
        for (p, input) in self.inputs.iter().enumerate() {
            for v in 0..input.num_vcs() {
                if input.vc(v).head_needs_registration() {
                    out.push((Port(p as u32), VcId(v as u8)));
                }
            }
        }
        out
    }

    /// `(port, vc)` pairs that currently hold at least one packet.
    pub fn occupied_vcs(&self) -> Vec<(Port, VcId)> {
        let mut out = Vec::new();
        for (p, input) in self.inputs.iter().enumerate() {
            for v in 0..input.num_vcs() {
                if !input.vc(v).is_empty() {
                    out.push((Port(p as u32), VcId(v as u8)));
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Run one iteration of the separable allocator over `requests`,
    /// checking output-buffer space and downstream credits. Grants are
    /// appended to the caller's reusable `grants` buffer (cleared first) —
    /// no allocation in steady state.
    pub fn allocate_into(&mut self, requests: &[AllocationRequest], grants: &mut Vec<Grant>) {
        let outputs = &self.outputs;
        let link_up = &self.link_up;
        self.allocator
            .allocate_into(requests, grants, |port, vc, size| {
                // a down link is never granted, whatever the routing policy
                // requested — the packet waits (and adaptive policies re-decide
                // next cycle)
                link_up[port.index()] && outputs[port.index()].can_accept(vc, size)
            })
    }

    /// Run one iteration of the separable allocator over `requests`
    /// (allocating convenience wrapper around [`Router::allocate_into`]).
    pub fn allocate(&mut self, requests: &[AllocationRequest]) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.allocate_into(requests, &mut grants);
        grants
    }

    /// Apply a grant: pop the packet from its input VC, release its counter
    /// registrations, update its routing state for the hop it is about to
    /// take, and stage it in the output buffer (consuming credits). Returns
    /// the bookkeeping the simulator needs (upstream credit return).
    ///
    /// # Panics
    /// Panics if the granted input VC is empty (allocator/sim bug).
    pub fn apply_grant(&mut self, grant: &Grant, now: Cycle) -> AppliedGrant {
        let input_class = self.inputs[grant.input_port.index()].class();
        let input_vc = self.inputs[grant.input_port.index()].vc_mut(grant.input_vc.index());
        let PoppedPacket {
            mut packet,
            registered_min_output,
            registered_ectn_link,
        } = input_vc.pop().expect("granted input VC must hold a packet");
        if registered_min_output.is_none() {
            // the departing head was never registered (possible in direct
            // unit-test drives); it no longer needs to be
            self.unregistered_count -= 1;
        }
        if !input_vc.is_empty() {
            // a new head surfaced and awaits registration
            self.unregistered_count += 1;
        }
        self.occupied_per_port[grant.input_port.index()] -= 1;
        self.occupied_total -= 1;
        if let Some(port) = registered_min_output {
            self.contention.decrement(port);
        }
        if let Some(link) = registered_ectn_link {
            self.ectn.decrement_partial(link);
        }
        // update routing state for the hop the packet is about to take
        let arrived_at = match self.topo.peer(self.id, grant.output_port) {
            PortPeer::Router(peer, _) => peer,
            PortPeer::Node(_) | PortPeer::Unconnected => self.id,
        };
        packet
            .routing
            .note_hop(&self.topo, grant.output_port, arrived_at);
        let freed_phits = packet.size_phits;
        let ready_at = now + self.config.latencies.router_pipeline as Cycle;
        self.outputs[grant.output_port.index()].accept(packet, grant.output_vc, ready_at);
        AppliedGrant {
            grant: *grant,
            freed_phits,
            input_class,
        }
    }

    /// Try to start transmission on every output port; appends, per port, the
    /// packet now occupying the link together with its downstream VC and the
    /// cycle at which its tail leaves this router (the simulator adds the
    /// link latency to schedule the remote arrival). Writes into the caller's
    /// reusable `sent` buffer — no allocation in steady state.
    pub fn transmit_outputs_into(
        &mut self,
        now: Cycle,
        sent: &mut Vec<(Port, Packet, VcId, Cycle)>,
    ) {
        // healthy routers (the overwhelmingly common case) skip the
        // per-port flag reads entirely via the O(1) down-counter
        let any_down = self.links_down > 0;
        for (p, output) in self.outputs.iter_mut().enumerate() {
            // a down link transmits nothing. In a full simulation the dead
            // port's stage is drained at the fault cycle
            // ([`Router::drop_staged_for_dead_port`]); the skip remains the
            // hard guarantee for anything staged outside that path (e.g.
            // direct unit-test drives).
            if any_down && !self.link_up[p] {
                continue;
            }
            if let Some((packet, vc, tail_at)) = output.try_transmit(now) {
                sent.push((Port(p as u32), packet, vc, tail_at));
            }
        }
    }

    /// Try to start transmission on every output port (allocating
    /// convenience wrapper around [`Router::transmit_outputs_into`]).
    pub fn transmit_outputs(&mut self, now: Cycle) -> Vec<(Port, Packet, VcId, Cycle)> {
        let mut sent = Vec::new();
        self.transmit_outputs_into(now, &mut sent);
        sent
    }

    /// Whether the router holds no traffic at all: every input VC empty and
    /// every output buffer drained. An idle router's allocation and
    /// transmission steps are provably no-ops (no heads to register, no
    /// requests, no staged packets), which is what lets the simulator's
    /// activity gate skip it.
    pub fn is_idle(&self) -> bool {
        self.occupied_total == 0 && self.outputs.iter().all(|o| o.staged_packets() == 0)
    }

    /// Whether any head packet still awaits contention-counter registration
    /// (O(1) guard for the registration scan).
    pub fn has_unregistered_heads(&self) -> bool {
        self.unregistered_count > 0
    }

    /// Queued input packets on `port` (O(1); lets the per-cycle loop skip
    /// empty ports without scanning their VCs).
    pub fn port_occupancy(&self, port: Port) -> u32 {
        self.occupied_per_port[port.index()]
    }

    // ------------------------------------------------------------------
    // Derived views used by routing policies
    // ------------------------------------------------------------------

    /// Occupancy fraction (0..1) of the path behind output `port`: staged
    /// output phits plus estimated downstream occupancy, over the combined
    /// capacity. This is the credit-based congestion signal used by OLM,
    /// Hybrid and PB.
    pub fn output_congestion_fraction(&self, port: Port) -> f64 {
        let o = &self.outputs[port.index()];
        let cap = o.congestion_capacity_phits();
        if cap == 0 {
            return 0.0;
        }
        o.congestion_phits() as f64 / cap as f64
    }

    /// Free credits for `(port, vc)`.
    pub fn credits_free(&self, port: Port, vc: VcId) -> u32 {
        self.outputs[port.index()].credits(vc)
    }

    /// Whether output `port` can accept a packet for downstream VC `vc`.
    pub fn output_can_accept(&self, port: Port, vc: VcId, size_phits: u32) -> bool {
        self.outputs[port.index()].can_accept(vc, size_phits)
    }

    // ------------------------------------------------------------------
    // Snapshot support
    // ------------------------------------------------------------------

    /// Serialise everything a restored router cannot rebuild from its
    /// configuration: input queues and registrations, output stages and
    /// credits, contention/ECtN/PB state, allocator round-robin pointers,
    /// per-port link health and the gateway-liveness view. The derived
    /// occupancy and registration counters are *not* written — restore
    /// recomputes them from the queues.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.inputs.len());
        for input in &self.inputs {
            input.save_state(e);
        }
        e.seq(self.outputs.len());
        for output in &self.outputs {
            output.save_state(e);
        }
        self.contention.save_state(e);
        self.ectn.save_state(e);
        self.pb.save_state(e);
        self.allocator.save_state(e);
        e.seq(self.link_up.len());
        for &up in &self.link_up {
            e.bool(up);
        }
        crate::snapshot::encode_gateway_liveness(&self.link_view, e);
    }

    /// Restore the state written by [`Router::save_state`] into a freshly
    /// built router of the *same* topology and configuration. Occupancy,
    /// registration and down-link counters are recomputed from the restored
    /// queues and flags.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let ports = d.seq(8)?;
        if ports != self.inputs.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "router input port count mismatch: snapshot has {ports}, config has {}",
                self.inputs.len()
            )));
        }
        for input in &mut self.inputs {
            input.restore_state(d)?;
        }
        let ports = d.seq(8)?;
        if ports != self.outputs.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "router output port count mismatch: snapshot has {ports}, config has {}",
                self.outputs.len()
            )));
        }
        for output in &mut self.outputs {
            output.restore_state(d)?;
        }
        self.contention.restore_state(d)?;
        self.ectn.restore_state(d)?;
        self.pb.restore_state(d)?;
        self.allocator.restore_state(d)?;
        let links = d.seq(1)?;
        if links != self.link_up.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "router link flag count mismatch: snapshot has {links}, config has {}",
                self.link_up.len()
            )));
        }
        for up in &mut self.link_up {
            *up = d.bool()?;
        }
        self.link_view =
            crate::snapshot::decode_gateway_liveness(d, self.topo.global_links_per_group())?;
        // rebuild the derived counters from the restored queues/flags
        self.links_down = self.link_up.iter().filter(|&&up| !up).count() as u32;
        self.occupied_total = 0;
        self.unregistered_count = 0;
        for (p, input) in self.inputs.iter().enumerate() {
            let queued = input.queued_packets() as u32;
            self.occupied_per_port[p] = queued;
            self.occupied_total += queued;
            for v in 0..input.num_vcs() {
                if input.vc(v).head_needs_registration() {
                    self.unregistered_count += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::{Packet, PacketId};
    use df_topology::{Dragonfly, DragonflyParams, NodeId};

    fn router() -> Router {
        let topo = Dragonfly::new(DragonflyParams::small());
        Router::new(RouterId(0), topo, NetworkConfig::fast_test())
    }

    fn packet(id: u64, dst: u32) -> Packet {
        Packet::new(PacketId(id), NodeId(0), NodeId(dst), 8, 0)
    }

    #[test]
    fn construction_matches_topology_radix() {
        let r = router();
        assert_eq!(r.num_ports(), 7); // p=2 + (a-1)=3 + h=2
        assert_eq!(r.id(), RouterId(0));
        assert_eq!(r.group(), GroupId(0));
        assert_eq!(r.queued_packets(), 0);
        // port classes
        assert_eq!(r.input(Port(0)).class(), PortClass::Terminal);
        assert_eq!(r.input(Port(2)).class(), PortClass::Local);
        assert_eq!(r.input(Port(5)).class(), PortClass::Global);
        // VC counts per class (defaults: 3 injection, 4 local, 2 global)
        assert_eq!(r.input(Port(0)).num_vcs(), 3);
        assert_eq!(r.input(Port(2)).num_vcs(), 4);
        assert_eq!(r.input(Port(5)).num_vcs(), 2);
        // global input buffers are deeper
        assert_eq!(r.input(Port(5)).vc(0).capacity_phits(), 256);
        assert_eq!(r.input(Port(2)).vc(0).capacity_phits(), 32);
        // output credits match the peer input buffers
        assert_eq!(r.output(Port(5)).credit_capacity(VcId(0)), 256);
        assert_eq!(r.output(Port(2)).credit_capacity(VcId(0)), 32);
        assert_eq!(
            r.output(Port(0)).num_downstream_vcs(),
            0,
            "ejection has no credits"
        );
    }

    #[test]
    fn receive_and_register_and_grant_lifecycle() {
        let mut r = router();
        let now = 0;
        // a packet arrives on local input port 2, vc 0
        r.receive_packet(Port(2), VcId(0), packet(1, 40));
        assert_eq!(r.queued_packets(), 1);
        assert_eq!(r.unregistered_heads(), vec![(Port(2), VcId(0))]);
        // register its minimal output (say global port 5) and an ECtN link
        r.register_head(Port(2), VcId(0), Port(5), Some(3));
        assert_eq!(r.contention().get(Port(5)), 1);
        assert_eq!(r.ectn().partial(3), 1);
        assert!(r.unregistered_heads().is_empty());
        // allocate it to output 5, downstream vc 0
        let req = AllocationRequest {
            input_port: Port(2),
            input_vc: VcId(0),
            output_port: Port(5),
            output_vc: VcId(0),
            size_phits: 8,
        };
        let grants = r.allocate(&[req]);
        assert_eq!(grants.len(), 1);
        let applied = r.apply_grant(&grants[0], now);
        assert_eq!(applied.freed_phits, 8);
        assert_eq!(applied.input_class, PortClass::Local);
        // counters released
        assert_eq!(r.contention().get(Port(5)), 0);
        assert_eq!(r.ectn().partial(3), 0);
        // credits consumed on the output
        assert_eq!(
            r.output(Port(5)).credits(VcId(0)),
            r.output(Port(5)).credit_capacity(VcId(0)) - 8
        );
        // the packet is staged; after the pipeline it transmits
        assert!(r.transmit_outputs(now).is_empty(), "pipeline not finished");
        let pipeline = r.config().latencies.router_pipeline as Cycle;
        let sent = r.transmit_outputs(now + pipeline);
        assert_eq!(sent.len(), 1);
        let (port, pkt, vc, tail_at) = &sent[0];
        assert_eq!(*port, Port(5));
        assert_eq!(pkt.id, PacketId(1));
        assert_eq!(*vc, VcId(0));
        assert_eq!(*tail_at, now + pipeline + 8);
        // the hop was recorded as a global hop
        assert_eq!(pkt.routing.global_hops, 1);
        assert_eq!(pkt.routing.local_hops, 0);
    }

    #[test]
    fn credits_flow_back() {
        let mut r = router();
        let cap = r.output(Port(2)).credit_capacity(VcId(1));
        r.receive_packet(Port(5), VcId(0), packet(1, 2));
        r.register_head(Port(5), VcId(0), Port(2), None);
        let req = AllocationRequest {
            input_port: Port(5),
            input_vc: VcId(0),
            output_port: Port(2),
            output_vc: VcId(1),
            size_phits: 8,
        };
        let grants = r.allocate(&[req]);
        r.apply_grant(&grants[0], 0);
        assert_eq!(r.credits_free(Port(2), VcId(1)), cap - 8);
        r.receive_credits(Port(2), VcId(1), 8);
        assert_eq!(r.credits_free(Port(2), VcId(1)), cap);
    }

    #[test]
    fn congestion_fraction_reflects_load() {
        let mut r = router();
        assert_eq!(r.output_congestion_fraction(Port(6)), 0.0);
        r.receive_packet(Port(2), VcId(0), packet(1, 60));
        r.register_head(Port(2), VcId(0), Port(6), None);
        let req = AllocationRequest {
            input_port: Port(2),
            input_vc: VcId(0),
            output_port: Port(6),
            output_vc: VcId(0),
            size_phits: 8,
        };
        let grants = r.allocate(&[req]);
        r.apply_grant(&grants[0], 0);
        assert!(r.output_congestion_fraction(Port(6)) > 0.0);
        assert!(r.output_can_accept(Port(6), VcId(0), 8));
    }

    #[test]
    fn allocation_respects_credit_exhaustion() {
        let mut r = router();
        // exhaust vc0 credits of local output 2 (capacity 32 = 4 packets)
        for i in 0..4 {
            r.receive_packet(Port(3), VcId(0), packet(i, 2));
            r.register_head(Port(3), VcId(0), Port(2), None);
            let req = AllocationRequest {
                input_port: Port(3),
                input_vc: VcId(0),
                output_port: Port(2),
                output_vc: VcId(0),
                size_phits: 8,
            };
            let grants = r.allocate(&[req]);
            assert_eq!(grants.len(), 1, "grant {i} should succeed");
            r.apply_grant(&grants[0], 0);
            // drain the output buffer so the output buffer is not the limit
            let _ = r.transmit_outputs(100 + i as Cycle * 20);
        }
        // the 5th packet cannot be granted: no credits left on vc0
        r.receive_packet(Port(3), VcId(0), packet(99, 2));
        r.register_head(Port(3), VcId(0), Port(2), None);
        let req = AllocationRequest {
            input_port: Port(3),
            input_vc: VcId(0),
            output_port: Port(2),
            output_vc: VcId(0),
            size_phits: 8,
        };
        assert!(r.allocate(&[req]).is_empty());
        // returning credits unblocks it
        r.receive_credits(Port(2), VcId(0), 8);
        assert_eq!(r.allocate(&[req]).len(), 1);
    }

    #[test]
    fn down_links_block_grants_and_transmission_until_restored() {
        let mut r = router();
        assert!(!r.any_link_down());
        // stage a packet towards local output 2, then fail the link
        r.receive_packet(Port(3), VcId(0), packet(1, 2));
        r.register_head(Port(3), VcId(0), Port(2), None);
        let req = AllocationRequest {
            input_port: Port(3),
            input_vc: VcId(0),
            output_port: Port(2),
            output_vc: VcId(0),
            size_phits: 8,
        };
        r.set_link_up(Port(2), false);
        assert!(!r.link_is_up(Port(2)));
        assert!(r.any_link_down());
        // the allocator refuses the down port even though credits exist
        assert!(
            r.allocate(&[req]).is_empty(),
            "down links must not be granted"
        );
        // restore and grant; then fail again before transmission
        r.set_link_up(Port(2), true);
        let grants = r.allocate(&[req]);
        assert_eq!(grants.len(), 1);
        r.apply_grant(&grants[0], 0);
        r.set_link_up(Port(2), false);
        let pipeline = r.config().latencies.router_pipeline as Cycle;
        assert!(
            r.transmit_outputs(pipeline).is_empty(),
            "staged packets wait while the link is down"
        );
        assert!(!r.is_idle(), "a blocked packet keeps the router busy");
        r.set_link_up(Port(2), true);
        assert!(!r.any_link_down());
        let sent = r.transmit_outputs(pipeline + 1);
        assert_eq!(sent.len(), 1, "restored links resume transmission");
    }

    #[test]
    fn set_link_up_is_idempotent() {
        let mut r = router();
        r.set_link_up(Port(5), false);
        r.set_link_up(Port(5), false);
        assert!(r.any_link_down());
        r.set_link_up(Port(5), true);
        assert!(
            !r.any_link_down(),
            "repeated sets must not corrupt the counter"
        );
    }

    #[test]
    fn occupied_vcs_lists_queued_only() {
        let mut r = router();
        assert!(r.occupied_vcs().is_empty());
        r.receive_packet(Port(0), VcId(1), packet(1, 9));
        assert_eq!(r.occupied_vcs(), vec![(Port(0), VcId(1))]);
    }
}
