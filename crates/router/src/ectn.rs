//! Explicit Contention Notification (ECtN) state — the paper's §III-D.
//!
//! Every router keeps two arrays with one counter per *global link of its
//! group* (`a*h` counters):
//!
//! * the **partial** array counts, among the packets at the head of this
//!   router's injection queues and global input queues, those whose
//!   destination lies in a remote group — indexed by the group-level global
//!   link their minimal path would use;
//! * the **combined** array is the sum of the partial arrays of all routers
//!   of the group, refreshed every `update_period` cycles when the partial
//!   arrays are broadcast inside the group.
//!
//! Misrouting at injection is triggered when the combined counter of the
//! minimal global link exceeds the (separate, higher) combined threshold.
//!
//! Since the failure-aware routing extension, the periodic broadcast
//! additionally piggybacks **gateway-liveness bits** (network-wide link
//! state, `df_topology::GatewayLiveness`) on the same messages and cadence
//! as the partial arrays, so ECtN source routers can exclude dead gateway
//! groups from their injection-time misroute candidates. The bits live in
//! the router's `link_view`, installed by
//! `dissemination::install_linkview_group` next to
//! [`EctnState::install_combined_from`].

use serde::{Deserialize, Serialize};

/// ECtN per-router state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EctnState {
    partial: Vec<u32>,
    combined: Vec<u32>,
}

impl EctnState {
    /// Create the state for a group with `global_links` global links
    /// (`a*h`).
    pub fn new(global_links: usize) -> Self {
        EctnState {
            partial: vec![0; global_links],
            combined: vec![0; global_links],
        }
    }

    /// Number of tracked global links.
    pub fn num_links(&self) -> usize {
        self.partial.len()
    }

    /// Current partial counter for group-level global link `link`.
    #[inline]
    pub fn partial(&self, link: u32) -> u32 {
        self.partial[link as usize]
    }

    /// Current combined counter for group-level global link `link` (as of the
    /// last broadcast).
    #[inline]
    pub fn combined(&self, link: u32) -> u32 {
        self.combined[link as usize]
    }

    /// Increment the partial counter for `link` (a packet bound to a remote
    /// group reached the head of an injection or global input queue).
    #[inline]
    pub fn increment_partial(&mut self, link: u32) {
        self.partial[link as usize] += 1;
    }

    /// Decrement the partial counter for `link` (that packet left its input
    /// queue).
    ///
    /// # Panics
    /// Panics on underflow (bookkeeping bug in the caller).
    #[inline]
    pub fn decrement_partial(&mut self, link: u32) {
        let c = &mut self.partial[link as usize];
        assert!(*c > 0, "ECtN partial counter underflow on link {link}");
        *c -= 1;
    }

    /// Snapshot of the partial array, as broadcast to the rest of the group.
    pub fn partial_snapshot(&self) -> Vec<u32> {
        self.partial.clone()
    }

    /// Add this router's partial counters into `acc` element-wise
    /// (allocation-free building block for the group broadcast).
    ///
    /// # Panics
    /// Panics if the length does not match the number of global links.
    pub fn add_partial_to(&self, acc: &mut [u32]) {
        assert_eq!(acc.len(), self.partial.len(), "partial array size mismatch");
        for (a, p) in acc.iter_mut().zip(self.partial.iter()) {
            *a += p;
        }
    }

    /// Install a freshly combined array (the sum of all partial snapshots of
    /// the group, computed at broadcast time).
    ///
    /// # Panics
    /// Panics if the length does not match the number of global links.
    pub fn install_combined(&mut self, combined: Vec<u32>) {
        assert_eq!(
            combined.len(),
            self.combined.len(),
            "combined array size mismatch"
        );
        self.combined = combined;
    }

    /// Install a freshly combined array by copying from a shared slice
    /// (allocation-free variant of [`EctnState::install_combined`], used by
    /// the simulator's periodic broadcast).
    ///
    /// # Panics
    /// Panics if the length does not match the number of global links.
    pub fn install_combined_from(&mut self, combined: &[u32]) {
        assert_eq!(
            combined.len(),
            self.combined.len(),
            "combined array size mismatch"
        );
        self.combined.copy_from_slice(combined);
    }

    /// Sum of the partial counters (total remote-bound head packets seen by
    /// this router).
    pub fn partial_total(&self) -> u32 {
        self.partial.iter().sum()
    }

    /// True when every partial counter is zero.
    pub fn partial_all_zero(&self) -> bool {
        self.partial.iter().all(|&c| c == 0)
    }

    /// Borrow the combined array.
    pub fn combined_array(&self) -> &[u32] {
        &self.combined
    }

    /// Serialise the partial and combined counter arrays.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.partial.len());
        for &c in &self.partial {
            e.u32(c);
        }
        e.seq(self.combined.len());
        for &c in &self.combined {
            e.u32(c);
        }
    }

    /// Restore the state written by [`EctnState::save_state`]. Both array
    /// lengths must match the configured topology.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let partial = d.seq(4)?;
        if partial != self.partial.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "ECtN partial array length mismatch: snapshot has {partial}, config has {}",
                self.partial.len()
            )));
        }
        for c in &mut self.partial {
            *c = d.u32()?;
        }
        let combined = d.seq(4)?;
        if combined != self.combined.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "ECtN combined array length mismatch: snapshot has {combined}, config has {}",
                self.combined.len()
            )));
        }
        for c in &mut self.combined {
            *c = d.u32()?;
        }
        Ok(())
    }
}

/// Sum a set of partial snapshots into a combined array, as the broadcast
/// logic of the simulator does once per update period for every group.
pub fn combine_partials<'a>(partials: impl IntoIterator<Item = &'a [u32]>) -> Vec<u32> {
    let mut iter = partials.into_iter();
    let first = match iter.next() {
        Some(f) => f.to_vec(),
        None => return Vec::new(),
    };
    iter.fold(first, |mut acc, p| {
        assert_eq!(acc.len(), p.len(), "partial arrays must have equal length");
        for (a, b) in acc.iter_mut().zip(p.iter()) {
            *a += b;
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_counters_track_increments() {
        let mut e = EctnState::new(8);
        e.increment_partial(3);
        e.increment_partial(3);
        e.increment_partial(7);
        assert_eq!(e.partial(3), 2);
        assert_eq!(e.partial(7), 1);
        assert_eq!(e.partial(0), 0);
        assert_eq!(e.partial_total(), 3);
        e.decrement_partial(3);
        assert_eq!(e.partial(3), 1);
        assert!(!e.partial_all_zero());
        e.decrement_partial(3);
        e.decrement_partial(7);
        assert!(e.partial_all_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn partial_underflow_panics() {
        let mut e = EctnState::new(4);
        e.decrement_partial(0);
    }

    #[test]
    fn combined_is_installed_not_computed_live() {
        let mut e = EctnState::new(4);
        e.increment_partial(1);
        // combined still reflects the last broadcast (zero)
        assert_eq!(e.combined(1), 0);
        e.install_combined(vec![5, 7, 0, 1]);
        assert_eq!(e.combined(1), 7);
        assert_eq!(e.combined_array(), &[5, 7, 0, 1]);
        // partial increments do not leak into combined until next install
        e.increment_partial(1);
        assert_eq!(e.combined(1), 7);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn combined_size_mismatch_panics() {
        let mut e = EctnState::new(4);
        e.install_combined(vec![1, 2]);
    }

    #[test]
    fn combine_partials_sums_elementwise() {
        let a = vec![1, 0, 2];
        let b = vec![0, 3, 1];
        let c = vec![1, 1, 1];
        let combined = combine_partials([a.as_slice(), b.as_slice(), c.as_slice()]);
        assert_eq!(combined, vec![2, 4, 4]);
        assert!(combine_partials(std::iter::empty::<&[u32]>()).is_empty());
    }

    #[test]
    fn figure4_style_combination() {
        // Figure 4: router A combines the partial arrays received from the
        // other routers of its group with its own.
        let mut routers: Vec<EctnState> = (0..4).map(|_| EctnState::new(6)).collect();
        routers[0].increment_partial(0);
        routers[1].increment_partial(0);
        routers[1].increment_partial(2);
        routers[3].increment_partial(5);
        let snapshots: Vec<Vec<u32>> = routers.iter().map(|r| r.partial_snapshot()).collect();
        let combined = combine_partials(snapshots.iter().map(|s| s.as_slice()));
        for r in routers.iter_mut() {
            r.install_combined(combined.clone());
        }
        assert_eq!(routers[2].combined(0), 2);
        assert_eq!(routers[2].combined(2), 1);
        assert_eq!(routers[2].combined(5), 1);
        assert_eq!(routers[2].combined(1), 0);
    }
}
