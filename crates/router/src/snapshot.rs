//! Binary codec for the gateway-liveness view (shared by the router's
//! per-router `link_view` and the simulator's published truth/group copies).
//!
//! `df-topology` stays free of serialisation concerns: [`GatewayLiveness`]
//! exposes its raw parts and this module turns them into the checksummed
//! byte stream used by simulation snapshots.

use df_engine::{CodecError, Decoder, Encoder};
use df_topology::GatewayLiveness;

/// Serialise a gateway-liveness map (version, down marks and the replayable
/// failure/recovery records).
pub fn encode_gateway_liveness(view: &GatewayLiveness, e: &mut Encoder) {
    let (links_per_group, version, down, nodes_down, link_records, node_records) = view.raw_parts();
    e.u32(links_per_group);
    e.u64(version);
    e.seq(down.len());
    for &l in down {
        e.u32(l);
    }
    e.seq(nodes_down.len());
    for &n in nodes_down {
        e.u32(n);
    }
    e.seq(link_records.len());
    for &(link, at, up) in link_records {
        e.u32(link);
        e.u64(at);
        e.bool(up);
    }
    e.seq(node_records.len());
    for &(node, at, up) in node_records {
        e.u32(node);
        e.u64(at);
        e.bool(up);
    }
}

/// Decode a gateway-liveness map written by [`encode_gateway_liveness`].
/// `links_per_group` must match the topology the view is being restored
/// into.
pub fn decode_gateway_liveness(
    d: &mut Decoder,
    expected_links_per_group: u32,
) -> Result<GatewayLiveness, CodecError> {
    let links_per_group = d.u32()?;
    if links_per_group != expected_links_per_group {
        return Err(CodecError::Invalid(format!(
            "gateway liveness links-per-group mismatch: snapshot has \
             {links_per_group}, topology has {expected_links_per_group}"
        )));
    }
    let version = d.u64()?;
    let n = d.seq(4)?;
    let mut down = Vec::with_capacity(n);
    for _ in 0..n {
        down.push(d.u32()?);
    }
    let n = d.seq(4)?;
    let mut nodes_down = Vec::with_capacity(n);
    for _ in 0..n {
        nodes_down.push(d.u32()?);
    }
    let n = d.seq(13)?;
    let mut link_records = Vec::with_capacity(n);
    for _ in 0..n {
        let link = d.u32()?;
        let at = d.u64()?;
        let up = d.bool()?;
        link_records.push((link, at, up));
    }
    let n = d.seq(13)?;
    let mut node_records = Vec::with_capacity(n);
    for _ in 0..n {
        let node = d.u32()?;
        let at = d.u64()?;
        let up = d.bool()?;
        node_records.push((node, at, up));
    }
    for marks in [&down, &nodes_down] {
        if marks.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CodecError::Invalid(
                "gateway liveness down marks must be strictly sorted".into(),
            ));
        }
    }
    Ok(GatewayLiveness::from_raw_parts(
        links_per_group,
        version,
        down,
        nodes_down,
        link_records,
        node_records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams, GroupId, NodeId};

    #[test]
    fn gateway_liveness_round_trip() {
        let topo = Dragonfly::new(DragonflyParams::small());
        let mut view = GatewayLiveness::new(&topo);
        view.set_entry(GroupId(0), 3, false);
        view.set_entry(GroupId(1), 1, false);
        view.set_entry(GroupId(0), 3, true);
        view.set_node(NodeId(2), false);
        let mut e = Encoder::new();
        encode_gateway_liveness(&view, &mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let restored =
            decode_gateway_liveness(&mut d, view.raw_parts().0).expect("round trip decodes");
        assert!(d.is_exhausted());
        assert!(view.same_marks(&restored));
        let (_, version, ..) = restored.raw_parts();
        assert_eq!(version, view.raw_parts().1);
    }

    #[test]
    fn links_per_group_mismatch_is_rejected() {
        let topo = Dragonfly::new(DragonflyParams::small());
        let view = GatewayLiveness::new(&topo);
        let mut e = Encoder::new();
        encode_gateway_liveness(&view, &mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let err = decode_gateway_liveness(&mut d, 999).unwrap_err();
        assert!(matches!(err, CodecError::Invalid(_)));
    }
}
