//! Contention counters — the paper's core mechanism (§III-B).
//!
//! One counter per output port tracks how many packets currently sitting at
//! the head of the router's input VCs would use that port on their *minimal*
//! path. The counter is incremented when a packet header reaches the head of
//! an input buffer and decremented when the packet leaves that input buffer
//! (whether it was finally forwarded minimally or not). Because the counter
//! tracks *demand* rather than *service*, it reacts immediately to a traffic
//! change and is completely decoupled from buffer sizes — the two properties
//! the paper exploits.

use df_topology::Port;
use serde::{Deserialize, Serialize};

/// A bank of per-output-port contention counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionCounters {
    counters: Vec<u32>,
    /// Lifetime statistics: total increments, used by the ablation studies.
    total_increments: u64,
    /// Running peak, useful to validate the threshold analysis of §VI-A.
    peak: u32,
}

impl ContentionCounters {
    /// Create a bank with one counter per router port.
    pub fn new(num_ports: usize) -> Self {
        ContentionCounters {
            counters: vec![0; num_ports],
            total_increments: 0,
            peak: 0,
        }
    }

    /// Number of counters (equal to the router radix).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the bank is empty (zero ports).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Current value of the counter for `port`.
    #[inline]
    pub fn get(&self, port: Port) -> u32 {
        self.counters[port.index()]
    }

    /// Increment the counter for `port` (a packet whose minimal route uses
    /// `port` reached the head of an input VC).
    #[inline]
    pub fn increment(&mut self, port: Port) {
        let c = &mut self.counters[port.index()];
        *c += 1;
        self.peak = self.peak.max(*c);
        self.total_increments += 1;
    }

    /// Decrement the counter for `port` (the packet that had been registered
    /// left its input buffer).
    ///
    /// # Panics
    /// Panics on underflow: a decrement without a matching increment is a
    /// bookkeeping bug in the caller.
    #[inline]
    pub fn decrement(&mut self, port: Port) {
        let c = &mut self.counters[port.index()];
        assert!(*c > 0, "contention counter underflow on port {port}");
        *c -= 1;
    }

    /// Sum of all counters — equals the number of registered head packets.
    pub fn total(&self) -> u32 {
        self.counters.iter().sum()
    }

    /// Largest value any counter has reached during the run.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Total number of increments over the run.
    pub fn total_increments(&self) -> u64 {
        self.total_increments
    }

    /// Iterate over `(port, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Port, u32)> + '_ {
        self.counters
            .iter()
            .enumerate()
            .map(|(i, &v)| (Port(i as u32), v))
    }

    /// True when every counter is zero (e.g. after the network drains).
    pub fn all_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }

    /// Serialise the counter bank (values plus lifetime statistics).
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.counters.len());
        for &c in &self.counters {
            e.u32(c);
        }
        e.u64(self.total_increments);
        e.u32(self.peak);
    }

    /// Restore the state written by [`ContentionCounters::save_state`]. The
    /// counter count must match the configured radix.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let n = d.seq(4)?;
        if n != self.counters.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "contention counter count mismatch: snapshot has {n}, config has {}",
                self.counters.len()
            )));
        }
        for c in &mut self.counters {
            *c = d.u32()?;
        }
        self.total_increments = d.u64()?;
        self.peak = d.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_decrement_round_trip() {
        let mut c = ContentionCounters::new(7);
        assert!(c.all_zero());
        c.increment(Port(2));
        c.increment(Port(2));
        c.increment(Port(5));
        assert_eq!(c.get(Port(2)), 2);
        assert_eq!(c.get(Port(5)), 1);
        assert_eq!(c.get(Port(0)), 0);
        assert_eq!(c.total(), 3);
        c.decrement(Port(2));
        assert_eq!(c.get(Port(2)), 1);
        assert!(!c.all_zero());
        c.decrement(Port(2));
        c.decrement(Port(5));
        assert!(c.all_zero());
    }

    #[test]
    fn peak_and_increments_are_tracked() {
        let mut c = ContentionCounters::new(3);
        for _ in 0..5 {
            c.increment(Port(1));
        }
        for _ in 0..3 {
            c.decrement(Port(1));
        }
        c.increment(Port(1));
        assert_eq!(c.peak(), 5);
        assert_eq!(c.total_increments(), 6);
        assert_eq!(c.get(Port(1)), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut c = ContentionCounters::new(2);
        c.decrement(Port(0));
    }

    #[test]
    fn iter_lists_every_port() {
        let mut c = ContentionCounters::new(4);
        c.increment(Port(3));
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], (Port(3), 1));
        assert_eq!(v[0], (Port(0), 0));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn this_is_figure3() {
        // The worked example of the paper's Figure 3: six input ports whose
        // head packets minimally target P2 (×4), P3 (×1) and P5 (×1). With
        // threshold th=3 (scaled-down example), P2 is contended.
        let mut c = ContentionCounters::new(6);
        for _ in 0..4 {
            c.increment(Port(1)); // P2 in the figure (0-based port 1)
        }
        c.increment(Port(2));
        c.increment(Port(4));
        let th = 3;
        assert!(c.get(Port(1)) > th);
        assert!(c.get(Port(2)) <= th);
        assert!(c.get(Port(4)) <= th);
    }
}
