//! # df-router — router microarchitecture
//!
//! An input-output-buffered, virtual-channel, Virtual Cut-Through router
//! model following the simulation infrastructure of the paper (§IV-B):
//!
//! * per-VC input buffers with phit-granularity occupancy accounting
//!   ([`input`]),
//! * per-port output buffers, credit-based flow control towards the
//!   downstream router, and link serialisation state ([`output`]),
//! * a separable input-first allocator iterated `speedup` times per cycle
//!   ([`allocator`]),
//! * the **contention counters** of the paper's §III-B ([`contention`]),
//! * the ECtN partial/combined counter arrays of §III-D ([`ectn`]),
//! * the PiggyBacking saturation state used by the PB baseline ([`pb`]),
//! * group-local PB/ECtN exchange over disjoint router slices — the
//!   sharding contract of the phase-parallel kernel ([`dissemination`]),
//! * the [`Router`] object tying all of the above together ([`router`]).
//!
//! The crate deliberately knows nothing about routing *policy*: routing
//! algorithms live in `df-routing` and read the router state through the
//! accessors exposed here, and the simulator (`df-sim`) orchestrates the
//! per-cycle dance between the two.

#![warn(missing_docs)]

pub mod allocator;
pub mod contention;
pub mod dissemination;
pub mod ectn;
pub mod input;
pub mod output;
pub mod pb;
pub mod router;
pub mod snapshot;

pub use allocator::{AllocationRequest, Allocator, Grant};
pub use contention::ContentionCounters;
pub use ectn::EctnState;
pub use input::{InputPort, InputVc, PoppedPacket};
pub use output::OutputPort;
pub use pb::PbState;
pub use router::Router;
pub use snapshot::{decode_gateway_liveness, encode_gateway_liveness};
