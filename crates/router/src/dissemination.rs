//! Group-level control-plane exchange over *disjoint router slices*.
//!
//! PB flag sharing and the periodic ECtN broadcast are the only per-cycle
//! operations that touch more than one router at a time — and both are
//! strictly *group-local*: a group's exchange reads and writes only the
//! routers of that group. Because router ids are laid out group-major
//! (group `g` owns the contiguous id range `[g·a, (g+1)·a)`), a group is a
//! contiguous sub-slice of the simulator's router array, and different
//! groups are non-overlapping sub-slices.
//!
//! This module exploits that: the exchange functions take one group as an
//! exclusively borrowed `&mut [Router]` slice. The type signature *is* the
//! sharding contract — any partition of the router array into per-group
//! slices (for example `chunks_exact_mut(a)`) yields disjoint borrows, so a
//! phase-parallel kernel can hand different groups to different worker
//! threads without any further synchronisation, and the borrow checker
//! rules out cross-group access statically. The sequential kernel calls the
//! same functions group by group; the results are identical by
//! construction.
//!
//! # Per-topology dissemination contract
//!
//! The PB exchange never consults the topology: it concatenates every
//! member's own-link flags in local-index order, and that concatenation
//! *is* the group-link index space by construction, because each
//! topology's `global_link_index` is defined as the running offset of the
//! owning router's links within exactly that order:
//!
//! - **Dragonfly**: every router owns `h` links, so the flat array has
//!   `a·h` entries and link `(local, k)` lands at `local·h + k`.
//! - **Megafly (Dragonfly+)**: leaves (local `0..l`) own zero links and
//!   contribute nothing; spines (local `l..l+s`) own `h` each, so the flat
//!   array has `s·h` entries and a spine link `(local, k)` lands at
//!   `(local − l)·h + k` — matching `Megafly::global_link_index`. Leaves
//!   still *receive* the full installed view, which is what lets a leaf's
//!   routing decision see a saturated spine-owned global link.
//!
//! Any new topology instance keeps this contract for free as long as its
//! `global_link_index` enumerates links in router-local-index order with
//! per-router contiguous `k` runs.
//!
//! The second half of the disjointness rule: everything *else* a router
//! does in a cycle (head registration, routing decisions, allocation,
//! grant application, output transmission) touches only that single
//! router's state plus read-only topology/configuration, so routers can be
//! sharded individually for those phases. Cross-router *effects* (link
//! events, upstream credits) must be staged and merged by the caller — see
//! `df-sim`'s `parallel` module.

use df_topology::GatewayLiveness;

use crate::router::Router;

/// One PB dissemination step for one group: gather every member's own-link
/// saturation flags into `flat` (resized to `a·h`), then install the
/// gathered array as every member's group-wide view.
///
/// `group` must be the group's routers in local-index order (the natural
/// contiguous id-order sub-slice). `flat` is a caller-owned scratch buffer
/// so repeated calls are allocation-free once warm.
///
/// Gathering completes before any install, and installs never touch a
/// router's own flags, so the result matches a snapshot-then-install
/// exchange exactly.
pub fn pb_exchange_group(group: &mut [Router], flat: &mut Vec<bool>) {
    // routers may own different numbers of global links (a Megafly leaf owns
    // none), so gather by running offset — the concatenation in local-index
    // order is exactly the group-link index space for both topologies
    flat.clear();
    for router in group.iter() {
        flat.extend_from_slice(router.pb().own_flags());
    }
    for router in group.iter_mut() {
        router.pb_mut().install_group_from(flat);
    }
}

/// Install the group's flooded gateway-liveness view into every router of
/// one group — the link-state payload piggybacked on the same PB/ECtN
/// exchange the group is already performing this cycle (each group carries
/// its *own* hop-delayed view; see `df-sim`'s flooding round). Costs one
/// integer compare per router when nothing changed (the healthy-network
/// case), so riding along with every exchange is free.
///
/// Same slice contract as [`pb_exchange_group`]: distinct groups may
/// install concurrently.
pub fn install_linkview_group(group: &mut [Router], view: &GatewayLiveness) {
    for router in group.iter_mut() {
        router.install_link_view(view);
    }
}

/// One ECtN broadcast step for one group: sum every member's partial
/// counter array into `scratch` (resized to `a·h`), then install the sum as
/// every member's combined array.
///
/// Same slice contract as [`pb_exchange_group`]: `group` is an exclusively
/// borrowed, group-local slice, so distinct groups may be exchanged
/// concurrently.
pub fn ectn_exchange_group(group: &mut [Router], scratch: &mut Vec<u32>) {
    let links = group.first().map(|r| r.ectn().num_links()).unwrap_or(0);
    scratch.clear();
    scratch.resize(links, 0);
    for router in group.iter() {
        router.ectn().add_partial_to(scratch);
    }
    for router in group.iter_mut() {
        router.ectn_mut().install_combined_from(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::NetworkConfig;
    use df_topology::{Dragonfly, DragonflyParams, Megafly, MegaflyParams, RouterId, Topology};

    fn group_of_routers() -> Vec<Router> {
        let topo = Dragonfly::new(DragonflyParams::small());
        // group 0 of the small topology: routers 0..4
        (0..4)
            .map(|i| Router::new(RouterId(i), topo, NetworkConfig::fast_test()))
            .collect()
    }

    #[test]
    fn pb_exchange_gathers_all_members_in_local_index_order() {
        let mut group = group_of_routers();
        // router 1 marks its own link 0 saturated, router 3 its link 1
        group[1].pb_mut().set_own_saturated(0, true);
        group[3].pb_mut().set_own_saturated(1, true);
        let mut flat = Vec::new();
        pb_exchange_group(&mut group, &mut flat);
        // h = 2 for the small topology: group link = local_index * h + k
        for router in &group {
            assert!(router.pb().group_saturated(2));
            assert!(router.pb().group_saturated(7));
            assert!(!router.pb().group_saturated(0));
            assert!(!router.pb().group_saturated(3));
        }
        // own flags are untouched by the install
        assert!(group[1].pb().own_saturated(0));
        assert!(!group[0].pb().own_saturated(0));
    }

    #[test]
    fn megafly_pb_exchange_maps_spine_links_into_leaf_views() {
        // group 0 of the small Megafly (p=2, l=s=4, h=2): routers 0..8,
        // leaves at local 0..4 own no global links, spines at local 4..8
        // own h=2 each — the group-link space is s*h = 8 spine-only links
        let params = MegaflyParams::small();
        let topo = Megafly::new(params);
        let mut group: Vec<Router> = (0..8)
            .map(|i| Router::new(RouterId(i), topo, NetworkConfig::fast_test()))
            .collect();
        for leaf in &group[..4] {
            assert!(
                leaf.pb().own_flags().is_empty(),
                "leaves own no global links, so they contribute nothing"
            );
        }
        // spine at local index 5 saturates its second link (k=1); the
        // group-link index is (local - l)*h + k = (5-4)*2 + 1 = 3
        group[5].pb_mut().set_own_saturated(1, true);
        assert_eq!(topo.global_link_index(RouterId(5), 1), 3);
        let mut flat = Vec::new();
        pb_exchange_group(&mut group, &mut flat);
        assert_eq!(flat.len(), 8, "flat view covers the s*h spine links only");
        for (i, router) in group.iter().enumerate() {
            for link in 0..8 {
                assert_eq!(
                    router.pb().group_saturated(link),
                    link == 3,
                    "router local {i} must see exactly group link 3 saturated"
                );
            }
        }
    }

    #[test]
    fn ectn_exchange_sums_partials_into_every_member() {
        let mut group = group_of_routers();
        group[0].ectn_mut().increment_partial(3);
        group[2].ectn_mut().increment_partial(3);
        group[2].ectn_mut().increment_partial(5);
        let mut scratch = Vec::new();
        ectn_exchange_group(&mut group, &mut scratch);
        for router in &group {
            assert_eq!(router.ectn().combined(3), 2);
            assert_eq!(router.ectn().combined(5), 1);
            assert_eq!(router.ectn().combined(0), 0);
        }
        // partials are untouched
        assert_eq!(group[0].ectn().partial(3), 1);
        assert_eq!(group[2].ectn().partial(3), 1);
    }

    #[test]
    fn exchanges_tolerate_empty_slices() {
        let mut empty: Vec<Router> = Vec::new();
        let mut flat = vec![true; 4];
        pb_exchange_group(&mut empty, &mut flat);
        assert!(flat.is_empty());
        let mut scratch = vec![7u32; 4];
        ectn_exchange_group(&mut empty, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn scratch_buffers_are_reusable_across_groups() {
        let mut g1 = group_of_routers();
        let mut g2 = group_of_routers();
        g1[0].pb_mut().set_own_saturated(0, true);
        let mut flat = Vec::new();
        pb_exchange_group(&mut g1, &mut flat);
        pb_exchange_group(&mut g2, &mut flat);
        // no leakage from g1's exchange into g2's view
        for router in &g2 {
            assert!(!router.pb().group_saturated(0));
        }
        for router in &g1 {
            assert!(router.pb().group_saturated(0));
        }
    }
}
