//! Input ports and per-VC input buffers.
//!
//! Virtual Cut-Through switching: packets are stored whole, occupancy is
//! accounted in phits, and a packet is removed in one piece when it wins
//! switch allocation. Each VC additionally tracks which output port the head
//! packet's *minimal* route uses, so the contention counters can be
//! incremented exactly once per head packet and decremented when it leaves
//! (§III-B of the paper).

use df_model::Packet;
use df_topology::{Port, PortClass};
use std::collections::VecDeque;

/// A packet removed from an input VC, together with the counter
/// registrations that must now be released by the caller.
#[derive(Debug, Clone)]
pub struct PoppedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// Output port whose contention counter was incremented for this packet
    /// (to be decremented now).
    pub registered_min_output: Option<Port>,
    /// Group-level global link whose ECtN partial counter was incremented for
    /// this packet (to be decremented now).
    pub registered_ectn_link: Option<u32>,
}

/// One virtual channel of an input port.
#[derive(Debug, Clone)]
pub struct InputVc {
    queue: VecDeque<Packet>,
    capacity_phits: u32,
    occupancy_phits: u32,
    /// Output port registered in the contention counters for the current
    /// head packet (None if the head has not been registered yet).
    registered_min_output: Option<Port>,
    /// Group-level global link registered in the ECtN partial array for the
    /// current head packet.
    registered_ectn_link: Option<u32>,
}

impl InputVc {
    /// Create an empty VC with the given capacity in phits.
    pub fn new(capacity_phits: u32) -> Self {
        InputVc {
            queue: VecDeque::new(),
            capacity_phits,
            occupancy_phits: 0,
            registered_min_output: None,
            registered_ectn_link: None,
        }
    }

    /// Buffer capacity in phits.
    pub fn capacity_phits(&self) -> u32 {
        self.capacity_phits
    }

    /// Occupied phits.
    pub fn occupancy_phits(&self) -> u32 {
        self.occupancy_phits
    }

    /// Free space in phits.
    pub fn free_phits(&self) -> u32 {
        self.capacity_phits - self.occupancy_phits
    }

    /// Number of whole packets queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the VC holds no packet.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a packet of `size_phits` fits.
    pub fn can_accept(&self, size_phits: u32) -> bool {
        self.free_phits() >= size_phits
    }

    /// Enqueue an arriving packet.
    ///
    /// # Panics
    /// Panics if the packet does not fit — credit-based flow control must
    /// have prevented the upstream router from sending it, so this is a flow
    /// control bug, not a recoverable condition.
    pub fn push(&mut self, packet: Packet) {
        assert!(
            self.can_accept(packet.size_phits),
            "input VC overflow: occupancy {}/{} cannot take {} phits (flow-control bug)",
            self.occupancy_phits,
            self.capacity_phits,
            packet.size_phits
        );
        self.occupancy_phits += packet.size_phits;
        self.queue.push_back(packet);
    }

    /// Peek at the head packet.
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Mutable access to the head packet (routing algorithms update the
    /// packet's routing state when they commit decisions).
    pub fn head_mut(&mut self) -> Option<&mut Packet> {
        self.queue.front_mut()
    }

    /// Remove and return the head packet, clearing and returning the counter
    /// registrations so the caller can release them.
    pub fn pop(&mut self) -> Option<PoppedPacket> {
        let packet = self.queue.pop_front()?;
        self.occupancy_phits -= packet.size_phits;
        Some(PoppedPacket {
            packet,
            registered_min_output: self.registered_min_output.take(),
            registered_ectn_link: self.registered_ectn_link.take(),
        })
    }

    /// The output port registered in the contention counters for the current
    /// head (if any).
    pub fn registered_min_output(&self) -> Option<Port> {
        self.registered_min_output
    }

    /// The ECtN partial-array link registered for the current head (if any).
    pub fn registered_ectn_link(&self) -> Option<u32> {
        self.registered_ectn_link
    }

    /// Record that the current head packet has been registered against
    /// `port` in the contention counters.
    pub fn set_registered_min_output(&mut self, port: Port) {
        debug_assert!(
            !self.queue.is_empty(),
            "cannot register contention for an empty VC"
        );
        self.registered_min_output = Some(port);
    }

    /// Record that the current head packet has been registered against
    /// group-level global link `link` in the ECtN partial array.
    pub fn set_registered_ectn_link(&mut self, link: u32) {
        debug_assert!(
            !self.queue.is_empty(),
            "cannot register ECtN contention for an empty VC"
        );
        self.registered_ectn_link = Some(link);
    }

    /// Whether the current head still needs to be registered in the
    /// contention counters.
    pub fn head_needs_registration(&self) -> bool {
        !self.queue.is_empty() && self.registered_min_output.is_none()
    }

    /// Iterate over the queued packets, head first.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.queue.iter()
    }

    /// Serialise the persistent state of this VC (queued packets and head
    /// registrations). Capacity is configuration, not state, and is not
    /// written.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.queue.len());
        for p in &self.queue {
            p.encode(e);
        }
        e.bool(self.registered_min_output.is_some());
        if let Some(port) = self.registered_min_output {
            e.u32(port.0);
        }
        e.bool(self.registered_ectn_link.is_some());
        if let Some(link) = self.registered_ectn_link {
            e.u32(link);
        }
    }

    /// Restore the persistent state written by [`InputVc::save_state`] into a
    /// freshly configured VC. Occupancy is recomputed from the packets and
    /// validated against the configured capacity.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let n = d.seq(8)?;
        let mut queue = VecDeque::with_capacity(n);
        let mut occupancy = 0u64;
        for _ in 0..n {
            let p = Packet::decode(d)?;
            occupancy += p.size_phits as u64;
            queue.push_back(p);
        }
        if occupancy > self.capacity_phits as u64 {
            return Err(df_engine::CodecError::Invalid(format!(
                "input VC occupancy {occupancy} exceeds capacity {}",
                self.capacity_phits
            )));
        }
        let registered_min_output = if d.bool()? {
            Some(Port(d.u32()?))
        } else {
            None
        };
        let registered_ectn_link = if d.bool()? { Some(d.u32()?) } else { None };
        if queue.is_empty() && (registered_min_output.is_some() || registered_ectn_link.is_some()) {
            return Err(df_engine::CodecError::Invalid(
                "head registration on an empty input VC".into(),
            ));
        }
        self.queue = queue;
        self.occupancy_phits = occupancy as u32;
        self.registered_min_output = registered_min_output;
        self.registered_ectn_link = registered_ectn_link;
        Ok(())
    }
}

/// An input port: a set of virtual channels plus round-robin state used by
/// the allocator's input stage.
#[derive(Debug, Clone)]
pub struct InputPort {
    class: PortClass,
    vcs: Vec<InputVc>,
    /// Round-robin pointer over VCs for the allocator input stage.
    next_vc: usize,
}

impl InputPort {
    /// Create an input port with `num_vcs` VCs of `capacity_phits` each.
    pub fn new(class: PortClass, num_vcs: u8, capacity_phits: u32) -> Self {
        InputPort {
            class,
            vcs: (0..num_vcs).map(|_| InputVc::new(capacity_phits)).collect(),
            next_vc: 0,
        }
    }

    /// Port class (terminal / local / global).
    pub fn class(&self) -> PortClass {
        self.class
    }

    /// Number of virtual channels.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Borrow a VC.
    pub fn vc(&self, vc: usize) -> &InputVc {
        &self.vcs[vc]
    }

    /// Mutably borrow a VC.
    pub fn vc_mut(&mut self, vc: usize) -> &mut InputVc {
        &mut self.vcs[vc]
    }

    /// Iterate over the VCs.
    pub fn vcs(&self) -> impl Iterator<Item = &InputVc> {
        self.vcs.iter()
    }

    /// Total queued phits across VCs.
    pub fn occupancy_phits(&self) -> u32 {
        self.vcs.iter().map(|v| v.occupancy_phits()).sum()
    }

    /// Total queued packets across VCs.
    pub fn queued_packets(&self) -> usize {
        self.vcs.iter().map(|v| v.len()).sum()
    }

    /// Round-robin pointer for the allocator's input stage; calling this
    /// advances the pointer.
    pub fn take_rr_start(&mut self) -> usize {
        let s = self.next_vc;
        self.next_vc = (self.next_vc + 1) % self.vcs.len().max(1);
        s
    }

    /// Serialise the persistent state of this port (per-VC queues and the
    /// allocator round-robin pointer). Class and VC layout are configuration.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.vcs.len());
        for vc in &self.vcs {
            vc.save_state(e);
        }
        e.usize(self.next_vc);
    }

    /// Restore the state written by [`InputPort::save_state`] into a freshly
    /// configured port. The VC count must match the configuration.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let n = d.seq(4)?;
        if n != self.vcs.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "input port VC count mismatch: snapshot has {n}, config has {}",
                self.vcs.len()
            )));
        }
        for vc in &mut self.vcs {
            vc.restore_state(d)?;
        }
        let next_vc = d.usize()?;
        if next_vc >= self.vcs.len().max(1) {
            return Err(df_engine::CodecError::Invalid(format!(
                "input port round-robin pointer {next_vc} out of range"
            )));
        }
        self.next_vc = next_vc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::{Packet, PacketId};
    use df_topology::NodeId;

    fn packet(id: u64, size: u32) -> Packet {
        Packet::new(PacketId(id), NodeId(0), NodeId(9), size, 0)
    }

    #[test]
    fn push_pop_tracks_occupancy() {
        let mut vc = InputVc::new(32);
        assert!(vc.is_empty());
        assert_eq!(vc.free_phits(), 32);
        vc.push(packet(1, 8));
        vc.push(packet(2, 8));
        assert_eq!(vc.len(), 2);
        assert_eq!(vc.occupancy_phits(), 16);
        assert_eq!(vc.free_phits(), 16);
        let popped = vc.pop().unwrap();
        assert_eq!(popped.packet.id, PacketId(1));
        assert_eq!(popped.registered_min_output, None);
        assert_eq!(popped.registered_ectn_link, None);
        assert_eq!(vc.occupancy_phits(), 8);
    }

    #[test]
    fn can_accept_respects_capacity() {
        let mut vc = InputVc::new(16);
        assert!(vc.can_accept(8));
        vc.push(packet(1, 8));
        assert!(vc.can_accept(8));
        vc.push(packet(2, 8));
        assert!(!vc.can_accept(8));
        assert!(vc.can_accept(0));
    }

    #[test]
    #[should_panic(expected = "input VC overflow")]
    fn overflow_is_a_flow_control_bug() {
        let mut vc = InputVc::new(8);
        vc.push(packet(1, 8));
        vc.push(packet(2, 8));
    }

    #[test]
    fn registration_lifecycle() {
        let mut vc = InputVc::new(32);
        assert!(!vc.head_needs_registration(), "empty VC needs nothing");
        vc.push(packet(1, 8));
        assert!(vc.head_needs_registration());
        vc.set_registered_min_output(Port(4));
        assert!(!vc.head_needs_registration());
        assert_eq!(vc.registered_min_output(), Some(Port(4)));
        vc.set_registered_ectn_link(3);
        assert_eq!(vc.registered_ectn_link(), Some(3));
        vc.push(packet(2, 8));
        // still the same head; no new registration needed
        assert!(!vc.head_needs_registration());
        let popped = vc.pop().unwrap();
        assert_eq!(popped.registered_min_output, Some(Port(4)));
        assert_eq!(popped.registered_ectn_link, Some(3));
        // new head needs registration again
        assert!(vc.head_needs_registration());
        assert_eq!(vc.registered_ectn_link(), None);
    }

    #[test]
    fn head_accessors() {
        let mut vc = InputVc::new(32);
        assert!(vc.head().is_none());
        vc.push(packet(7, 8));
        assert_eq!(vc.head().unwrap().id, PacketId(7));
        vc.head_mut().unwrap().routing.local_hops = 2;
        assert_eq!(vc.head().unwrap().routing.local_hops, 2);
    }

    #[test]
    fn input_port_aggregates_vcs() {
        let mut port = InputPort::new(PortClass::Local, 3, 32);
        assert_eq!(port.num_vcs(), 3);
        port.vc_mut(0).push(packet(1, 8));
        port.vc_mut(2).push(packet(2, 8));
        assert_eq!(port.occupancy_phits(), 16);
        assert_eq!(port.queued_packets(), 2);
        assert_eq!(port.class(), PortClass::Local);
    }

    #[test]
    fn round_robin_pointer_cycles() {
        let mut port = InputPort::new(PortClass::Global, 2, 256);
        assert_eq!(port.take_rr_start(), 0);
        assert_eq!(port.take_rr_start(), 1);
        assert_eq!(port.take_rr_start(), 0);
    }
}
