//! Separable input-first switch allocator.
//!
//! The paper's simulation infrastructure (§IV-B) uses "a separable batch
//! allocator, with 2× frequency speedup (internal or crossbar speedup) to
//! avoid performance limitations due to Head-of-Line Blocking and suboptimal
//! arbitration". We model it as a classic two-stage separable allocator:
//!
//! 1. **input stage** — every input port selects at most one of its
//!    requesting VCs (round-robin priority per input port), considering only
//!    requests whose output currently has resources,
//! 2. **output stage** — every output port selects at most one of the
//!    input-stage winners requesting it (round-robin priority over input
//!    ports).
//!
//! The simulator invokes the allocator `speedup` times per cycle, applying
//! the grants (and therefore updating buffer/credit state and queue heads)
//! between iterations, which is what gives the 2× internal speedup.

use df_model::VcId;
use df_topology::Port;

/// A request from an input VC head packet for an output port/VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationRequest {
    /// Input port holding the packet.
    pub input_port: Port,
    /// Input VC holding the packet.
    pub input_vc: VcId,
    /// Requested output port.
    pub output_port: Port,
    /// Requested downstream VC on that output.
    pub output_vc: VcId,
    /// Packet size in phits (for the resource check).
    pub size_phits: u32,
}

/// A granted request.
pub type Grant = AllocationRequest;

/// Separable input-first allocator with per-port round-robin priority.
///
/// All grouping state lives in persistent per-port scratch buffers, so an
/// allocation iteration performs **zero heap allocations** in steady state
/// (capacities grow to the per-router maximum once and are then reused) —
/// this is on the per-cycle critical path of every active router.
#[derive(Debug, Clone)]
pub struct Allocator {
    /// Round-robin pointer per input port (over VC indices).
    input_rr: Vec<usize>,
    /// Round-robin pointer per output port (over input-port indices).
    output_rr: Vec<usize>,
    // ---- persistent scratch (cleared per iteration, capacity retained) ----
    /// Per input port: indices into the request slice.
    by_input: Vec<Vec<u32>>,
    /// Input ports in first-appearance order.
    input_order: Vec<u32>,
    /// Input-stage winners.
    candidates: Vec<AllocationRequest>,
    /// Per output port: indices into `candidates`.
    by_output: Vec<Vec<u32>>,
    /// Output ports in first-appearance order.
    output_order: Vec<u32>,
}

impl Allocator {
    /// Create an allocator for a router with `num_ports` ports.
    pub fn new(num_ports: usize) -> Self {
        Allocator {
            input_rr: vec![0; num_ports],
            output_rr: vec![0; num_ports],
            by_input: vec![Vec::new(); num_ports],
            input_order: Vec::new(),
            candidates: Vec::new(),
            by_output: vec![Vec::new(); num_ports],
            output_order: Vec::new(),
        }
    }

    /// Perform one allocation iteration, appending grants to `grants`
    /// (cleared first).
    ///
    /// `can_accept(output_port, output_vc, size_phits)` must report whether
    /// the output currently has both output-buffer space and downstream
    /// credits for the packet; requests failing the check are ignored this
    /// iteration.
    ///
    /// Each input port and each output port appears in at most one grant.
    pub fn allocate_into(
        &mut self,
        requests: &[AllocationRequest],
        grants: &mut Vec<Grant>,
        mut can_accept: impl FnMut(Port, VcId, u32) -> bool,
    ) {
        grants.clear();
        if requests.is_empty() {
            return;
        }

        // ----- input stage: one candidate per input port -----
        for port in self.input_order.drain(..) {
            self.by_input[port as usize].clear();
        }
        for (i, req) in requests.iter().enumerate() {
            let idx = req.input_port.index();
            if self.by_input[idx].is_empty() {
                self.input_order.push(idx as u32);
            }
            self.by_input[idx].push(i as u32);
        }
        self.candidates.clear();
        for &input_idx in &self.input_order {
            let reqs = &self.by_input[input_idx as usize];
            let rr = self.input_rr[input_idx as usize];
            // consider VCs in round-robin order starting at the pointer
            let mut chosen: Option<&AllocationRequest> = None;
            let max_vc = reqs
                .iter()
                .map(|&r| requests[r as usize].input_vc.index())
                .max()
                .unwrap_or(0)
                + 1;
            'scan: for offset in 0..max_vc {
                let want = (rr + offset) % max_vc;
                for &ri in reqs {
                    let r = &requests[ri as usize];
                    if r.input_vc.index() == want
                        && can_accept(r.output_port, r.output_vc, r.size_phits)
                    {
                        chosen = Some(r);
                        break 'scan;
                    }
                }
            }
            if let Some(r) = chosen {
                self.candidates.push(*r);
            }
        }

        // ----- output stage: one winner per output port -----
        for port in self.output_order.drain(..) {
            self.by_output[port as usize].clear();
        }
        for (i, cand) in self.candidates.iter().enumerate() {
            let idx = cand.output_port.index();
            if self.by_output[idx].is_empty() {
                self.output_order.push(idx as u32);
            }
            self.by_output[idx].push(i as u32);
        }
        let num_inputs = self.input_rr.len();
        for oi in 0..self.output_order.len() {
            let output_idx = self.output_order[oi] as usize;
            let cands = &self.by_output[output_idx];
            let rr = self.output_rr[output_idx];
            let mut winner: Option<AllocationRequest> = None;
            'outer: for offset in 0..num_inputs {
                let want = (rr + offset) % num_inputs;
                for &ci in cands {
                    let c = &self.candidates[ci as usize];
                    if c.input_port.index() == want {
                        winner = Some(*c);
                        break 'outer;
                    }
                }
            }
            if let Some(w) = winner {
                // advance round-robin pointers past the winners
                self.output_rr[output_idx] = (w.input_port.index() + 1) % num_inputs;
                let max_vc_hint = self.input_rr.len().max(8);
                self.input_rr[w.input_port.index()] = (w.input_vc.index() + 1) % max_vc_hint;
                grants.push(w);
            }
        }
    }

    /// Perform one allocation iteration and return the grants (allocating
    /// convenience wrapper around [`Allocator::allocate_into`]).
    pub fn allocate(
        &mut self,
        requests: &[AllocationRequest],
        can_accept: impl FnMut(Port, VcId, u32) -> bool,
    ) -> Vec<Grant> {
        let mut grants = Vec::new();
        self.allocate_into(requests, &mut grants, can_accept);
        grants
    }

    /// Serialise the persistent round-robin pointers. The grouping buffers
    /// are per-iteration scratch (cleared at the start of every call to
    /// [`Allocator::allocate_into`]) and are deliberately not written.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.input_rr.len());
        for &p in &self.input_rr {
            e.usize(p);
        }
        e.seq(self.output_rr.len());
        for &p in &self.output_rr {
            e.usize(p);
        }
    }

    /// Restore the state written by [`Allocator::save_state`]. Pointer array
    /// lengths must match the configured radix.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let inputs = d.seq(8)?;
        if inputs != self.input_rr.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "allocator input_rr length mismatch: snapshot has {inputs}, config has {}",
                self.input_rr.len()
            )));
        }
        for p in &mut self.input_rr {
            *p = d.usize()?;
        }
        let outputs = d.seq(8)?;
        if outputs != self.output_rr.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "allocator output_rr length mismatch: snapshot has {outputs}, config has {}",
                self.output_rr.len()
            )));
        }
        for p in &mut self.output_rr {
            *p = d.usize()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(ip: u32, ivc: u8, op: u32, ovc: u8) -> AllocationRequest {
        AllocationRequest {
            input_port: Port(ip),
            input_vc: VcId(ivc),
            output_port: Port(op),
            output_vc: VcId(ovc),
            size_phits: 8,
        }
    }

    #[test]
    fn single_request_is_granted() {
        let mut a = Allocator::new(4);
        let grants = a.allocate(&[req(0, 0, 3, 0)], |_, _, _| true);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].output_port, Port(3));
    }

    #[test]
    fn at_most_one_grant_per_output() {
        let mut a = Allocator::new(4);
        let requests = [req(0, 0, 3, 0), req(1, 0, 3, 0), req(2, 0, 3, 1)];
        let grants = a.allocate(&requests, |_, _, _| true);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn at_most_one_grant_per_input() {
        let mut a = Allocator::new(4);
        // same input port, two VCs requesting different outputs
        let requests = [req(0, 0, 1, 0), req(0, 1, 2, 0)];
        let grants = a.allocate(&requests, |_, _, _| true);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn disjoint_requests_all_granted() {
        let mut a = Allocator::new(4);
        let requests = [req(0, 0, 2, 0), req(1, 0, 3, 0)];
        let grants = a.allocate(&requests, |_, _, _| true);
        assert_eq!(grants.len(), 2);
    }

    #[test]
    fn resource_check_filters_requests() {
        let mut a = Allocator::new(4);
        let requests = [req(0, 0, 2, 0), req(1, 0, 3, 0)];
        let grants = a.allocate(&requests, |out, _, _| out != Port(2));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].output_port, Port(3));
    }

    #[test]
    fn blocked_vc_lets_another_vc_of_same_port_through() {
        let mut a = Allocator::new(4);
        // vc0 wants the blocked output, vc1 wants a free one
        let requests = [req(0, 0, 2, 0), req(0, 1, 3, 0)];
        let grants = a.allocate(&requests, |out, _, _| out != Port(2));
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].input_vc, VcId(1));
        assert_eq!(grants[0].output_port, Port(3));
    }

    #[test]
    fn output_round_robin_is_fair_over_iterations() {
        let mut a = Allocator::new(4);
        let requests = [req(0, 0, 3, 0), req(1, 0, 3, 0)];
        let mut winners = Vec::new();
        for _ in 0..4 {
            let grants = a.allocate(&requests, |_, _, _| true);
            winners.push(grants[0].input_port);
        }
        // alternates between input 0 and 1
        assert_ne!(winners[0], winners[1]);
        assert_ne!(winners[1], winners[2]);
        assert_ne!(winners[2], winners[3]);
    }

    #[test]
    fn input_round_robin_alternates_vcs() {
        let mut a = Allocator::new(4);
        let requests = [req(0, 0, 2, 0), req(0, 1, 3, 0)];
        let g1 = a.allocate(&requests, |_, _, _| true);
        let g2 = a.allocate(&requests, |_, _, _| true);
        assert_ne!(g1[0].input_vc, g2[0].input_vc, "RR should alternate VCs");
    }

    #[test]
    fn empty_request_set_is_fine() {
        let mut a = Allocator::new(4);
        assert!(a.allocate(&[], |_, _, _| true).is_empty());
    }

    #[test]
    fn no_grant_when_nothing_fits() {
        let mut a = Allocator::new(2);
        let requests = [req(0, 0, 1, 0)];
        assert!(a.allocate(&requests, |_, _, _| false).is_empty());
    }

    #[test]
    fn many_inputs_one_each_to_distinct_outputs() {
        let mut a = Allocator::new(8);
        let requests: Vec<_> = (0..8).map(|i| req(i, 0, (i + 1) % 8, 0)).collect();
        let grants = a.allocate(&requests, |_, _, _| true);
        assert_eq!(
            grants.len(),
            8,
            "a perfect matching should be fully granted"
        );
    }
}
