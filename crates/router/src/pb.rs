//! PiggyBacking (PB) saturation state.
//!
//! PB [Jiang, Kim & Dally, ISCA'09] is the source-adaptive baseline of the
//! paper: every router continuously classifies each of its own global links
//! as *saturated* or not from its credit/occupancy level, and piggybacks the
//! resulting bitmask on packets sent inside the group so that all routers of
//! the group share a (slightly stale) view of every global link's state. At
//! injection, the source router routes a packet minimally or Valiant based on
//! the saturation bit of the minimal global link plus a UGAL-style occupancy
//! comparison.
//!
//! This module only holds the state; the classification rule and the routing
//! decision live in `df-routing::algorithms::piggyback`, and the intra-group
//! dissemination (with its one-local-hop delay) is driven by the simulator.
//!
//! Since the failure-aware routing extension, the PB exchange additionally
//! piggybacks **gateway-liveness bits** (one bit per group-level global
//! link, network-wide — see `df_topology::GatewayLiveness`): the same
//! messages that carry the saturation mask carry the link-state delta, on
//! the same every-cycle cadence and with the same one-exchange staleness.
//! The bits themselves live in the router's `link_view`, installed by
//! `dissemination::install_linkview_group` alongside
//! [`PbState::install_group_from`].

use serde::{Deserialize, Serialize};

/// Per-router PB state: saturation flags for every global link of the group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PbState {
    /// Saturation of this router's own global links (indexed by global-port
    /// offset `0..h`), recomputed locally every cycle.
    own: Vec<bool>,
    /// Group-wide view (indexed by group-level global link `0..a*h`),
    /// refreshed by the dissemination step with a small delay.
    group: Vec<bool>,
}

impl PbState {
    /// Create state for a router with `h` own global links in a group with
    /// `global_links` (= `a*h`) total links.
    pub fn new(h: usize, global_links: usize) -> Self {
        PbState {
            own: vec![false; h],
            group: vec![false; global_links],
        }
    }

    /// Saturation flag of this router's own global link `k` (`0..h`).
    pub fn own_saturated(&self, k: u32) -> bool {
        self.own[k as usize]
    }

    /// Set the saturation flag of own global link `k`.
    pub fn set_own_saturated(&mut self, k: u32, saturated: bool) {
        self.own[k as usize] = saturated;
    }

    /// Snapshot of this router's own saturation flags.
    pub fn own_snapshot(&self) -> Vec<bool> {
        self.own.clone()
    }

    /// Borrow this router's own saturation flags (allocation-free view used
    /// by the simulator's flat-array dissemination).
    pub fn own_flags(&self) -> &[bool] {
        &self.own
    }

    /// Group-wide saturation of group-level global link `link` (`0..a*h`), as
    /// of the last dissemination.
    pub fn group_saturated(&self, link: u32) -> bool {
        self.group[link as usize]
    }

    /// Install the group-wide view (concatenation of every router's own
    /// flags, in router-local-index order).
    ///
    /// # Panics
    /// Panics if the length does not match.
    pub fn install_group(&mut self, group: Vec<bool>) {
        assert_eq!(group.len(), self.group.len(), "PB group view size mismatch");
        self.group = group;
    }

    /// Install the group-wide view by copying from a shared flat slice
    /// (allocation-free variant of [`PbState::install_group`], used by the
    /// simulator's per-cycle dissemination).
    ///
    /// # Panics
    /// Panics if the length does not match.
    pub fn install_group_from(&mut self, group: &[bool]) {
        assert_eq!(group.len(), self.group.len(), "PB group view size mismatch");
        self.group.copy_from_slice(group);
    }

    /// Number of global links tracked in the group view.
    pub fn group_links(&self) -> usize {
        self.group.len()
    }

    /// Fraction of the group's global links currently marked saturated.
    pub fn saturated_fraction(&self) -> f64 {
        if self.group.is_empty() {
            return 0.0;
        }
        self.group.iter().filter(|&&s| s).count() as f64 / self.group.len() as f64
    }

    /// Serialise the own and group saturation masks.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.own.len());
        for &b in &self.own {
            e.bool(b);
        }
        e.seq(self.group.len());
        for &b in &self.group {
            e.bool(b);
        }
    }

    /// Restore the state written by [`PbState::save_state`]. Both mask
    /// lengths must match the configured topology.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let own = d.seq(1)?;
        if own != self.own.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "PB own mask length mismatch: snapshot has {own}, config has {}",
                self.own.len()
            )));
        }
        for b in &mut self.own {
            *b = d.bool()?;
        }
        let group = d.seq(1)?;
        if group != self.group.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "PB group mask length mismatch: snapshot has {group}, config has {}",
                self.group.len()
            )));
        }
        for b in &mut self.group {
            *b = d.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_flags_default_unsaturated() {
        let s = PbState::new(8, 128);
        assert!(!s.own_saturated(0));
        assert!(!s.group_saturated(100));
        assert_eq!(s.group_links(), 128);
        assert_eq!(s.saturated_fraction(), 0.0);
    }

    #[test]
    fn own_flags_are_settable_and_snapshot() {
        let mut s = PbState::new(2, 8);
        s.set_own_saturated(1, true);
        assert!(s.own_saturated(1));
        assert!(!s.own_saturated(0));
        assert_eq!(s.own_snapshot(), vec![false, true]);
    }

    #[test]
    fn group_view_installation() {
        let mut s = PbState::new(2, 4);
        s.install_group(vec![true, false, true, false]);
        assert!(s.group_saturated(0));
        assert!(!s.group_saturated(1));
        assert_eq!(s.saturated_fraction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_group_size_panics() {
        let mut s = PbState::new(2, 4);
        s.install_group(vec![true]);
    }
}
