//! Output ports: output buffers, credit-based flow control and link
//! serialisation.
//!
//! Credits model the free space of the *downstream* input buffer, per
//! downstream VC. They are consumed when a packet is granted the output
//! (guaranteeing it will fit) and returned by the simulator when the
//! downstream router removes the packet from its input buffer, delayed by the
//! link latency — which reproduces the in-flight-credit uncertainty the paper
//! discusses in §II-B.

use df_model::{Cycle, Packet, VcId};
use df_topology::PortClass;
use std::collections::VecDeque;

/// A packet staged in the output buffer, waiting for the link.
#[derive(Debug, Clone)]
struct StagedPacket {
    packet: Packet,
    /// Downstream VC the packet will occupy.
    dst_vc: VcId,
    /// Cycle at which the packet has traversed the router pipeline and may
    /// start link transmission.
    ready_at: Cycle,
}

/// An output port.
#[derive(Debug, Clone)]
pub struct OutputPort {
    class: PortClass,
    /// Credits (free phits) per downstream VC. Empty for terminal ports,
    /// which model an always-ready ejection channel.
    credits: Vec<u32>,
    /// Capacity of the downstream buffer per VC (maximum credits).
    credit_capacity: Vec<u32>,
    /// Output buffer (staging between crossbar and link).
    buffer: VecDeque<StagedPacket>,
    buffer_capacity_phits: u32,
    buffer_occupancy_phits: u32,
    /// Cycle at which the link becomes free for the next packet.
    link_free_at: Cycle,
    /// Round-robin pointer over input ports for the allocator output stage.
    rr_input: usize,
}

impl OutputPort {
    /// Create an output port.
    ///
    /// * `downstream_vcs` / `downstream_capacity_per_vc` describe the input
    ///   buffer at the far end of the link (ignored for terminal ports, pass
    ///   0 VCs).
    /// * `buffer_capacity_phits` is the size of the local output buffer.
    pub fn new(
        class: PortClass,
        downstream_vcs: u8,
        downstream_capacity_per_vc: u32,
        buffer_capacity_phits: u32,
    ) -> Self {
        OutputPort {
            class,
            credits: vec![downstream_capacity_per_vc; downstream_vcs as usize],
            credit_capacity: vec![downstream_capacity_per_vc; downstream_vcs as usize],
            buffer: VecDeque::new(),
            buffer_capacity_phits,
            buffer_occupancy_phits: 0,
            link_free_at: 0,
            rr_input: 0,
        }
    }

    /// Port class.
    pub fn class(&self) -> PortClass {
        self.class
    }

    /// Number of downstream VCs tracked by credits (0 for terminal ports).
    pub fn num_downstream_vcs(&self) -> usize {
        self.credits.len()
    }

    /// Free credits (phits) for a downstream VC.
    pub fn credits(&self, vc: VcId) -> u32 {
        self.credits[vc.index()]
    }

    /// Maximum credits (downstream buffer capacity) for a VC.
    pub fn credit_capacity(&self, vc: VcId) -> u32 {
        self.credit_capacity[vc.index()]
    }

    /// Total free credits across downstream VCs.
    pub fn total_credits(&self) -> u32 {
        self.credits.iter().sum()
    }

    /// Total downstream capacity across VCs.
    pub fn total_credit_capacity(&self) -> u32 {
        self.credit_capacity.iter().sum()
    }

    /// Occupancy of the output buffer in phits.
    pub fn buffer_occupancy_phits(&self) -> u32 {
        self.buffer_occupancy_phits
    }

    /// Capacity of the output buffer in phits.
    pub fn buffer_capacity_phits(&self) -> u32 {
        self.buffer_capacity_phits
    }

    /// Free space in the output buffer.
    pub fn buffer_free_phits(&self) -> u32 {
        self.buffer_capacity_phits - self.buffer_occupancy_phits
    }

    /// Number of packets staged in the output buffer.
    pub fn staged_packets(&self) -> usize {
        self.buffer.len()
    }

    /// Downstream occupancy estimate in phits: the phits we know are either
    /// in flight or sitting in the downstream buffer (capacity minus
    /// credits). This is the "credit count" view a real router has, including
    /// its in-flight uncertainty.
    pub fn downstream_occupancy_phits(&self) -> u32 {
        self.total_credit_capacity() - self.total_credits()
    }

    /// The occupancy metric used by credit-based misrouting triggers (OLM,
    /// Hybrid, PB): staged output phits plus estimated downstream occupancy.
    pub fn congestion_phits(&self) -> u32 {
        self.buffer_occupancy_phits + self.downstream_occupancy_phits()
    }

    /// The corresponding capacity, for relative (percentage) thresholds.
    pub fn congestion_capacity_phits(&self) -> u32 {
        self.buffer_capacity_phits + self.total_credit_capacity()
    }

    /// Whether a packet of `size_phits` destined to downstream VC `vc` can be
    /// granted this output right now: the output buffer has room and (for
    /// non-terminal ports) enough credits exist for that VC.
    pub fn can_accept(&self, vc: VcId, size_phits: u32) -> bool {
        if self.buffer_free_phits() < size_phits {
            return false;
        }
        if self.class == PortClass::Terminal {
            return true;
        }
        self.credits
            .get(vc.index())
            .is_some_and(|&c| c >= size_phits)
    }

    /// Accept a granted packet into the output buffer. Consumes credits for
    /// non-terminal ports. `ready_at` is when the router pipeline finishes.
    ///
    /// # Panics
    /// Panics if [`can_accept`](Self::can_accept) would have returned false —
    /// the allocator must check before granting.
    pub fn accept(&mut self, packet: Packet, dst_vc: VcId, ready_at: Cycle) {
        assert!(
            self.can_accept(dst_vc, packet.size_phits),
            "output port cannot accept packet (allocator bug)"
        );
        self.buffer_occupancy_phits += packet.size_phits;
        if self.class != PortClass::Terminal {
            self.credits[dst_vc.index()] -= packet.size_phits;
        }
        self.buffer.push_back(StagedPacket {
            packet,
            dst_vc,
            ready_at,
        });
    }

    /// Return credits for `phits` on downstream VC `vc` (called when the
    /// downstream router drains the packet, after the credit propagation
    /// delay).
    ///
    /// # Panics
    /// Panics if credits would exceed the downstream capacity (double
    /// return).
    pub fn return_credits(&mut self, vc: VcId, phits: u32) {
        let c = &mut self.credits[vc.index()];
        *c += phits;
        assert!(
            *c <= self.credit_capacity[vc.index()],
            "credit overflow on vc {vc}: {} > {} (double credit return)",
            *c,
            self.credit_capacity[vc.index()]
        );
    }

    /// If the head-of-buffer packet has cleared the pipeline and the link is
    /// free, start its transmission: the packet leaves the output buffer, the
    /// link is busy for `size_phits` cycles (1 phit/cycle serialisation) and
    /// the packet (with its downstream VC) is returned so the caller can
    /// schedule its arrival `link_latency` cycles after serialisation
    /// completes.
    pub fn try_transmit(&mut self, now: Cycle) -> Option<(Packet, VcId, Cycle)> {
        if self.link_free_at > now {
            return None;
        }
        let head_ready = self.buffer.front().map(|s| s.ready_at <= now)?;
        if !head_ready {
            return None;
        }
        let staged = self.buffer.pop_front().expect("checked non-empty");
        self.buffer_occupancy_phits -= staged.packet.size_phits;
        let serialisation = staged.packet.size_phits as Cycle;
        self.link_free_at = now + serialisation;
        Some((staged.packet, staged.dst_vc, self.link_free_at))
    }

    /// Cycle at which the link next becomes idle.
    pub fn link_free_at(&self) -> Cycle {
        self.link_free_at
    }

    /// Remove every staged packet from the buffer and return them with the
    /// downstream VC each had been granted (fault injection: the link died,
    /// its serialisation buffer is lost with it). The credits the packets
    /// consumed are deliberately *not* restored here — the caller ledgers
    /// them exactly like an in-flight drop, so `LinkUp` returns them.
    pub fn drain_staged(&mut self) -> Vec<(Packet, VcId)> {
        let mut out = Vec::with_capacity(self.buffer.len());
        while let Some(staged) = self.buffer.pop_front() {
            self.buffer_occupancy_phits -= staged.packet.size_phits;
            out.push((staged.packet, staged.dst_vc));
        }
        out
    }

    /// Round-robin pointer for the allocator's output stage; calling this
    /// advances the pointer (modulo `num_inputs`).
    pub fn take_rr_start(&mut self, num_inputs: usize) -> usize {
        let s = self.rr_input % num_inputs.max(1);
        self.rr_input = (s + 1) % num_inputs.max(1);
        s
    }

    /// Serialise the persistent state of this port: per-VC credits, staged
    /// packets (with downstream VC and pipeline-ready cycle), the link busy
    /// horizon and the allocator round-robin pointer. Capacities and class
    /// are configuration and are not written.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.credits.len());
        for &c in &self.credits {
            e.u32(c);
        }
        e.seq(self.buffer.len());
        for s in &self.buffer {
            s.packet.encode(e);
            e.u8(s.dst_vc.0);
            e.u64(s.ready_at);
        }
        e.u64(self.link_free_at);
        e.usize(self.rr_input);
    }

    /// Restore the state written by [`OutputPort::save_state`] into a freshly
    /// configured port. Buffer occupancy is recomputed from the staged
    /// packets; credit and capacity invariants are validated.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let n = d.seq(4)?;
        if n != self.credits.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "output port VC count mismatch: snapshot has {n}, config has {}",
                self.credits.len()
            )));
        }
        let mut credits = Vec::with_capacity(n);
        for i in 0..n {
            let c = d.u32()?;
            if c > self.credit_capacity[i] {
                return Err(df_engine::CodecError::Invalid(format!(
                    "restored credits {c} exceed capacity {} on vc {i}",
                    self.credit_capacity[i]
                )));
            }
            credits.push(c);
        }
        let staged = d.seq(8)?;
        let mut buffer = VecDeque::with_capacity(staged);
        let mut occupancy = 0u64;
        for _ in 0..staged {
            let packet = Packet::decode(d)?;
            let dst_vc = VcId(d.u8()?);
            let ready_at = d.u64()?;
            occupancy += packet.size_phits as u64;
            buffer.push_back(StagedPacket {
                packet,
                dst_vc,
                ready_at,
            });
        }
        if occupancy > self.buffer_capacity_phits as u64 {
            return Err(df_engine::CodecError::Invalid(format!(
                "output buffer occupancy {occupancy} exceeds capacity {}",
                self.buffer_capacity_phits
            )));
        }
        self.credits = credits;
        self.buffer = buffer;
        self.buffer_occupancy_phits = occupancy as u32;
        self.link_free_at = d.u64()?;
        self.rr_input = d.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::PacketId;
    use df_topology::NodeId;

    fn packet(id: u64, size: u32) -> Packet {
        Packet::new(PacketId(id), NodeId(0), NodeId(5), size, 0)
    }

    fn port() -> OutputPort {
        // local-like: 4 downstream VCs of 32 phits, 32-phit output buffer
        OutputPort::new(PortClass::Local, 4, 32, 32)
    }

    #[test]
    fn fresh_port_has_full_credits() {
        let p = port();
        assert_eq!(p.total_credits(), 128);
        assert_eq!(p.credits(VcId(0)), 32);
        assert_eq!(p.buffer_free_phits(), 32);
        assert_eq!(p.downstream_occupancy_phits(), 0);
        assert_eq!(p.congestion_phits(), 0);
        assert_eq!(p.congestion_capacity_phits(), 32 + 128);
    }

    #[test]
    fn accept_consumes_credits_and_buffer_space() {
        let mut p = port();
        assert!(p.can_accept(VcId(1), 8));
        p.accept(packet(1, 8), VcId(1), 5);
        assert_eq!(p.credits(VcId(1)), 24);
        assert_eq!(p.buffer_occupancy_phits(), 8);
        assert_eq!(p.downstream_occupancy_phits(), 8);
        assert_eq!(p.congestion_phits(), 16);
        assert_eq!(p.staged_packets(), 1);
    }

    #[test]
    fn can_accept_fails_without_credits_or_buffer() {
        let mut p = OutputPort::new(PortClass::Local, 1, 8, 16);
        assert!(p.can_accept(VcId(0), 8));
        p.accept(packet(1, 8), VcId(0), 0);
        // credits for vc0 exhausted even though buffer has room
        assert!(!p.can_accept(VcId(0), 8));
        // fill the buffer through a second VC? only one VC, so grow buffer use
        p.return_credits(VcId(0), 8);
        assert!(p.can_accept(VcId(0), 8));
        p.accept(packet(2, 8), VcId(0), 0);
        // buffer now 16/16
        p.return_credits(VcId(0), 8);
        assert!(!p.can_accept(VcId(0), 8), "output buffer full");
    }

    #[test]
    fn terminal_ports_do_not_use_credits() {
        let mut p = OutputPort::new(PortClass::Terminal, 0, 0, 32);
        assert!(p.can_accept(VcId(0), 8));
        p.accept(packet(1, 8), VcId(0), 0);
        assert_eq!(p.num_downstream_vcs(), 0);
        assert_eq!(p.total_credits(), 0);
        assert!(p.can_accept(VcId(0), 8));
    }

    #[test]
    #[should_panic(expected = "allocator bug")]
    fn accept_without_resources_panics() {
        let mut p = OutputPort::new(PortClass::Local, 1, 8, 32);
        p.accept(packet(1, 8), VcId(0), 0);
        p.accept(packet(2, 8), VcId(0), 0);
    }

    #[test]
    #[should_panic(expected = "double credit return")]
    fn credit_overflow_panics() {
        let mut p = port();
        p.return_credits(VcId(0), 8);
    }

    #[test]
    fn transmit_respects_pipeline_and_serialisation() {
        let mut p = port();
        p.accept(packet(1, 8), VcId(0), 5); // ready at cycle 5
        p.accept(packet(2, 8), VcId(1), 5);
        // not ready yet
        assert!(p.try_transmit(4).is_none());
        // ready: transmission starts, link busy 8 cycles
        let (sent, vc, done) = p.try_transmit(5).unwrap();
        assert_eq!(sent.id, PacketId(1));
        assert_eq!(vc, VcId(0));
        assert_eq!(done, 13);
        assert_eq!(p.buffer_occupancy_phits(), 8);
        // link busy until cycle 13
        assert!(p.try_transmit(12).is_none());
        let (sent2, _, done2) = p.try_transmit(13).unwrap();
        assert_eq!(sent2.id, PacketId(2));
        assert_eq!(done2, 21);
        assert_eq!(p.buffer_occupancy_phits(), 0);
        assert!(p.try_transmit(30).is_none(), "buffer drained");
    }

    #[test]
    fn congestion_metric_combines_buffer_and_downstream() {
        let mut p = OutputPort::new(PortClass::Global, 2, 256, 32);
        p.accept(packet(1, 8), VcId(0), 0);
        // packet staged: buffer 8, downstream estimate 8
        assert_eq!(p.congestion_phits(), 16);
        let _ = p.try_transmit(0);
        // left the buffer, still counted downstream until credits return
        assert_eq!(p.congestion_phits(), 8);
        p.return_credits(VcId(0), 8);
        assert_eq!(p.congestion_phits(), 0);
    }

    #[test]
    fn rr_pointer_wraps() {
        let mut p = port();
        assert_eq!(p.take_rr_start(3), 0);
        assert_eq!(p.take_rr_start(3), 1);
        assert_eq!(p.take_rr_start(3), 2);
        assert_eq!(p.take_rr_start(3), 0);
    }
}
