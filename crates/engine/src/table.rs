//! Plain-text and CSV rendering of experiment results.
//!
//! The figure-regeneration binaries print one table per paper figure: a
//! header row naming the series (routing mechanisms) and one data row per
//! x-axis point (offered load, cycle, threshold value, ...). The same table
//! can be written as aligned text for the terminal or as CSV for plotting.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-oriented results table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Title of the table.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the number of cells does not match the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Append a row of numeric values, formatted with `precision` decimals.
    /// `NaN` values are rendered as an empty cell (missing data point).
    pub fn push_numeric_row(&mut self, values: &[f64], precision: usize) {
        let cells = values
            .iter()
            .map(|v| {
                if v.is_nan() {
                    String::new()
                } else {
                    format!("{v:.precision$}")
                }
            })
            .collect();
        self.push_row(cells);
    }

    /// Access a cell (row, column).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    /// Render as CSV (RFC-4180-ish: cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let header_line: Vec<String> = self.headers.iter().map(|h| escape(h)).collect();
        out.push_str(&header_line.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as an aligned plain-text table with the title on top.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new("fig", &["load", "MIN", "Base"]);
        t.push_numeric_row(&[0.1, 140.0, 141.2345], 2);
        t.push_row(vec!["0.2".into(), "150".into(), "149".into()]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), Some("140.00"));
        assert_eq!(t.cell(1, 2), Some("149"));
        assert_eq!(t.cell(5, 0), None);
        assert_eq!(t.title(), "fig");
        assert_eq!(t.headers().len(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_output_is_well_formed() {
        let mut t = Table::new("fig5a", &["load", "lat,ency"]);
        t.push_row(vec!["0.1".into(), "says \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "load,\"lat,ency\"");
        assert_eq!(lines[1], "0.1,\"says \"\"hi\"\"\"");
    }

    #[test]
    fn nan_rendered_as_empty_cell() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_numeric_row(&[1.0, f64::NAN], 1);
        assert_eq!(t.cell(0, 1), Some(""));
    }

    #[test]
    fn text_output_contains_title_and_alignment() {
        let mut t = Table::new("Figure 5a", &["load", "MIN"]);
        t.push_numeric_row(&[0.1, 140.0], 1);
        let text = t.to_text();
        assert!(text.starts_with("# Figure 5a"));
        assert!(text.contains("load"));
        assert!(text.contains("140.0"));
    }
}
