//! Streaming and sample-based statistics.
//!
//! The steady-state experiments of the paper report average packet latency
//! and accepted throughput over a measurement window, averaged across 10
//! seeds. [`RunningStats`] accumulates the per-run values with Welford's
//! online algorithm (numerically stable, O(1) memory); [`SampleStats`] keeps
//! the samples and additionally provides percentiles, used for latency
//! distributions and the ablation studies.

use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Decoder, Encoder};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel sweep reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the ~95 % confidence interval of the mean (normal
    /// approximation, `1.96 × SEM`). The paper averages 10 simulations per
    /// point; this is the error bar we report in EXPERIMENTS.md.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Minimum observation (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Whether no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Serialize the accumulator exactly (snapshot support).
    pub fn encode(&self, e: &mut Encoder) {
        e.u64(self.count);
        e.f64(self.mean);
        e.f64(self.m2);
        e.f64(self.min);
        e.f64(self.max);
        e.f64(self.sum);
    }

    /// Rebuild an accumulator from [`encode`](Self::encode) output,
    /// bit-identical to the captured one.
    pub fn decode(d: &mut Decoder) -> Result<Self, CodecError> {
        Ok(RunningStats {
            count: d.u64()?,
            mean: d.f64()?,
            m2: d.f64()?,
            min: d.f64()?,
            max: d.f64()?,
            sum: d.f64()?,
        })
    }
}

/// Sample-retaining statistics with percentile queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleStats {
    samples: Vec<f64>,
}

impl SampleStats {
    /// Empty sample set.
    pub fn new() -> Self {
        SampleStats {
            samples: Vec::new(),
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Percentile in `[0, 100]` using nearest-rank on the sorted samples
    /// (`NaN` if empty).
    pub fn percentile(&self, pct: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Convert to a streaming accumulator (for merging into sweep results).
    pub fn to_running(&self) -> RunningStats {
        let mut r = RunningStats::new();
        for &x in &self.samples {
            r.push(x);
        }
        r
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic_moments() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4, sample variance is 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential_push() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        let mut x: f64 = 0.123;
        for i in 0..10_000 {
            x = (x * 7919.0 + 0.31).fract();
            let v = x * 10.0;
            if i < 100 {
                small.push(v);
            }
            large.push(v);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut s = SampleStats::new();
        for i in 0..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.median(), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert!((s.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn sample_stats_to_running_round_trip() {
        let mut s = SampleStats::new();
        for x in [1.0, 2.0, 3.0, 10.0] {
            s.push(x);
        }
        let r = s.to_running();
        assert_eq!(r.count(), 4);
        assert!((r.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_is_nan() {
        let s = SampleStats::new();
        assert!(s.percentile(50.0).is_nan());
    }
}
