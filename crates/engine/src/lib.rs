//! # df-engine — simulation engine utilities
//!
//! Infrastructure shared by the simulator, the traffic generators and the
//! experiment harness:
//!
//! * [`rng`] — deterministic, splittable random-number generation so every
//!   experiment is exactly reproducible from a single `u64` seed,
//! * [`stats`] — streaming statistics (mean, variance, confidence intervals)
//!   and sample-based percentiles,
//! * [`histogram`] — fixed-width binned histograms (latency distributions),
//! * [`timeseries`] — binned time series used by the transient experiments
//!   (Figures 7, 8 and 9 of the paper),
//! * [`table`] — plain-text / CSV rendering of experiment results, used by
//!   the figure-regeneration binaries,
//! * [`codec`] — the checksummed binary encoding behind simulation
//!   snapshots and the sweep runner's journal.

#![warn(missing_docs)]

pub mod codec;
pub mod histogram;
pub mod rng;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use codec::{CodecError, Decoder, Encoder};
pub use histogram::Histogram;
pub use rng::DeterministicRng;
pub use stats::{RunningStats, SampleStats};
pub use table::Table;
pub use timeseries::{BinnedSeries, TimeSeries};
