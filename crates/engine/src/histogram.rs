//! Fixed-width binned histograms.
//!
//! Used for packet-latency distributions and for the contention-counter value
//! distributions in the ablation studies (how often each counter value is
//! observed under saturation, which backs the paper's §VI-A threshold
//! analysis).

use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Decoder, Encoder};

/// A histogram with fixed-width bins over `[low, high)` plus overflow and
/// underflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    bin_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Create a histogram over `[low, high)` with `num_bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `num_bins == 0` or `high <= low`.
    pub fn new(low: f64, high: f64, num_bins: usize) -> Self {
        assert!(num_bins > 0, "histogram needs at least one bin");
        assert!(high > low, "histogram range must be non-empty");
        Histogram {
            low,
            high,
            bin_width: (high - low) / num_bins as f64,
            bins: vec![0; num_bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let idx = ((x - self.low) / self.bin_width) as usize;
            // guard against floating point landing exactly on `high`
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_low, bin_high, count)` triples.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let lo = self.low + i as f64 * self.bin_width;
            (lo, lo + self.bin_width, c)
        })
    }

    /// Approximate percentile from the binned data (returns the upper edge of
    /// the bin containing the requested rank; `NaN` if empty). A rank that
    /// lands in the overflow bin has no finite upper edge — the histogram
    /// only knows the observation was `>= high` — so the result is
    /// `f64::INFINITY` rather than a silently understated `high`.
    pub fn percentile(&self, pct: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (pct.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.low;
        }
        for (lo, hi, c) in self.iter_bins() {
            seen += c;
            if seen >= target {
                let _ = lo;
                return hi;
            }
        }
        f64::INFINITY
    }

    /// Merge another histogram with identical binning.
    ///
    /// # Panics
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.low, other.low, "histogram ranges must match");
        assert_eq!(self.high, other.high, "histogram ranges must match");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts must match");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Serialize the histogram exactly (snapshot support).
    pub fn encode(&self, e: &mut Encoder) {
        e.f64(self.low);
        e.f64(self.high);
        e.f64(self.bin_width);
        e.u64(self.underflow);
        e.u64(self.overflow);
        e.u64(self.count);
        e.f64(self.sum);
        e.seq(self.bins.len());
        for &b in &self.bins {
            e.u64(b);
        }
    }

    /// Rebuild a histogram from [`encode`](Self::encode) output.
    pub fn decode(d: &mut Decoder) -> Result<Self, CodecError> {
        let low = d.f64()?;
        let high = d.f64()?;
        let bin_width = d.f64()?;
        // NaN bounds must fail these comparisons too, hence the explicit form
        let range_ok = high > low && bin_width > 0.0;
        if !range_ok {
            return Err(CodecError::Invalid(format!(
                "histogram range [{low}, {high}) / bin width {bin_width}"
            )));
        }
        let underflow = d.u64()?;
        let overflow = d.u64()?;
        let count = d.u64()?;
        let sum = d.f64()?;
        let n = d.seq(8)?;
        if n == 0 {
            return Err(CodecError::Invalid("histogram with zero bins".into()));
        }
        let mut bins = Vec::with_capacity(n);
        for _ in 0..n {
            bins.push(d.u64()?);
        }
        Ok(Histogram {
            low,
            high,
            bin_width,
            bins,
            underflow,
            overflow,
            count,
            sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
    }

    #[test]
    fn mean_matches_inputs() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for x in [10.0, 20.0, 30.0] {
            h.record(x);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((45.0..=55.0).contains(&p50));
        assert!(p99 >= 95.0);
    }

    #[test]
    fn percentile_in_overflow_bin_is_infinite() {
        // a tail rank that falls past the binned range must not be reported
        // as the (finite) range bound — that silently understates the tail
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..90 {
            h.record(5.0);
        }
        for _ in 0..10 {
            h.record(1_000.0); // overflow
        }
        assert_eq!(h.percentile(50.0), 6.0);
        assert_eq!(h.percentile(99.0), f64::INFINITY);
        assert_eq!(h.percentile(100.0), f64::INFINITY);
        // entirely-overflow histogram: every rank is unbounded
        let mut all_over = Histogram::new(0.0, 10.0, 10);
        all_over.record(11.0);
        assert_eq!(all_over.percentile(50.0), f64::INFINITY);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(1.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bins()[1], 2);
        assert_eq!(a.bins()[9], 1);
    }

    #[test]
    #[should_panic(expected = "ranges must match")]
    fn merge_rejects_mismatched_ranges() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 20.0, 10);
        a.merge(&b);
    }

    #[test]
    fn iter_bins_covers_range() {
        let h = Histogram::new(0.0, 10.0, 4);
        let edges: Vec<_> = h.iter_bins().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0].0, 0.0);
        assert!((edges[3].1 - 10.0).abs() < 1e-12);
    }
}
