//! A tiny, dependency-free binary codec for simulation snapshots.
//!
//! The snapshot subsystem (df-sim's `snapshot` module and the sweep
//! runner's journal) needs to persist exact simulator state — RNG words,
//! event queues, packet buffers — and read it back **bit-identically**.
//! The vendored `serde` is a no-op marker stub, so the encoding is
//! hand-rolled here: little-endian fixed-width integers, `f64` via its IEEE
//! bit pattern (exact round-trip, NaN included), length-prefixed sequences.
//! No varints, no alignment tricks — the format is meant to be obvious and
//! stable, not compact.
//!
//! Framing (magic, version, checksum) is layered on top by
//! [`Encoder::finish_frame`] / [`Decoder::open_frame`]: a frame is
//! `magic(8) | version(u32) | payload_len(u64) | payload | fnv1a64(payload)`.
//! Readers reject wrong magic, unknown versions and checksum mismatches
//! *before* interpreting a single payload byte, so a truncated or corrupted
//! snapshot fails loudly instead of restoring garbage state.

/// Errors produced when decoding a snapshot buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the requested value was complete.
    Truncated {
        /// Read position at which the shortfall was detected.
        at: usize,
        /// Bytes requested past that position.
        wanted: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame does not start with the expected magic bytes.
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 8],
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The frame's format version is not one the reader understands.
    UnsupportedVersion {
        /// The version the reader supports.
        supported: u32,
        /// The version found in the frame.
        found: u32,
    },
    /// The payload checksum does not match — the frame was corrupted or
    /// truncated in a way that preserved the length field.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A decoded discriminant or length was outside its legal range.
    Invalid(
        /// Human-readable description of the violated constraint.
        String,
    ),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated {
                at,
                wanted,
                available,
            } => write!(
                f,
                "snapshot truncated at byte {at}: wanted {wanted} more bytes, {available} available"
            ),
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad snapshot magic: expected {expected:02x?}, found {found:02x?}"
            ),
            CodecError::UnsupportedVersion { supported, found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash — the frame checksum. Not cryptographic; it guards
/// against corruption and truncation, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` via its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write raw bytes with a `u64` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Write a UTF-8 string with a `u64` length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write a sequence length prefix (callers then write the elements).
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }

    /// Consume the encoder, returning the raw (unframed) bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Consume the encoder, wrapping the written payload in a checksummed
    /// frame: `magic | version | payload_len | payload | fnv1a64(payload)`.
    pub fn finish_frame(self, magic: [u8; 8], version: u32) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&magic);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Sequential binary reader over a borrowed buffer.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Read from the start of `buf` (no frame expected).
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Validate a frame produced by [`Encoder::finish_frame`] — magic,
    /// version, length and checksum — and return a decoder positioned over
    /// the payload.
    pub fn open_frame(
        buf: &'a [u8],
        magic: [u8; 8],
        version: u32,
    ) -> Result<Decoder<'a>, CodecError> {
        let mut header = Decoder::new(buf);
        let found_magic: [u8; 8] = header.take(8)?.try_into().expect("take(8) returns 8 bytes");
        if found_magic != magic {
            return Err(CodecError::BadMagic {
                expected: magic,
                found: found_magic,
            });
        }
        let found_version = header.u32()?;
        if found_version != version {
            return Err(CodecError::UnsupportedVersion {
                supported: version,
                found: found_version,
            });
        }
        let payload_len = header.u64()? as usize;
        let payload = header.take(payload_len)?;
        let stored = header.u64()?;
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        Ok(Decoder::new(payload))
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the buffer is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                at: self.pos,
                wanted: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool`, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("bool byte {other}"))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`), rejecting values that do not fit
    /// the platform word.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("usize value {v}")))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| CodecError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    /// Read a sequence length prefix, bounds-checked against the remaining
    /// buffer assuming at least `min_elem_bytes` per element — so a corrupt
    /// length cannot trigger an absurd allocation.
    pub fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.usize()?;
        let floor = len.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(CodecError::Invalid(format!(
                "sequence of {len} elements cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"DFTEST01";

    #[test]
    fn scalar_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.bool(true);
        e.bool(false);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f64(1.5e-300);
        e.str("hello ✓");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.f64().unwrap(), 1.5e-300);
        assert_eq!(d.str().unwrap(), "hello ✓");
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut e = Encoder::new();
        e.u32(1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.u64().is_err());
        assert_eq!(d.position(), 0, "failed reads do not advance");
        assert!(d.u32().is_ok());
    }

    #[test]
    fn frame_round_trip_and_rejections() {
        let mut e = Encoder::new();
        e.u64(99);
        e.str("payload");
        let frame = e.finish_frame(MAGIC, 3);

        let mut d = Decoder::open_frame(&frame, MAGIC, 3).unwrap();
        assert_eq!(d.u64().unwrap(), 99);
        assert_eq!(d.str().unwrap(), "payload");
        assert!(d.is_exhausted());

        // wrong magic
        let err = Decoder::open_frame(&frame, *b"OTHERMAG", 3).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic { .. }));

        // wrong version
        let err = Decoder::open_frame(&frame, MAGIC, 4).unwrap_err();
        assert!(matches!(
            err,
            CodecError::UnsupportedVersion {
                supported: 4,
                found: 3
            }
        ));

        // flipped payload byte → checksum mismatch
        let mut corrupt = frame.clone();
        corrupt[8 + 4 + 8] ^= 0x01;
        let err = Decoder::open_frame(&corrupt, MAGIC, 3).unwrap_err();
        assert!(matches!(err, CodecError::ChecksumMismatch { .. }));

        // truncation inside the payload
        let err = Decoder::open_frame(&frame[..frame.len() - 12], MAGIC, 3).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn seq_guards_absurd_lengths() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // a "length" no buffer can hold
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.seq(8), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
