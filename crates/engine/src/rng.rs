//! Deterministic, splittable random number generation.
//!
//! Every stochastic component of the simulator (traffic generators, random
//! tie-breaking in allocators, random nonminimal candidate selection) draws
//! from a [`DeterministicRng`] derived from the experiment seed. Streams are
//! *split* per entity (per node, per router) using a mixing function so that
//! adding a router or reordering the per-cycle iteration does not perturb the
//! random sequence seen by other entities. This is what makes the paper's
//! "10 simulations averaged per point" reproducible as `seed in 0..10`.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 finaliser — used to derive statistically independent seeds from
/// `(seed, stream)` pairs. This is the standard constant set from Vigna's
/// SplitMix64, which is also what `rand` uses internally to seed from `u64`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator with named sub-streams.
///
/// Internally wraps [`rand::rngs::SmallRng`] (xoshiro256++ on 64-bit
/// platforms): fast, not cryptographic, statistically solid — exactly the
/// trade-off a network simulator wants.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    seed: u64,
    inner: SmallRng,
}

impl DeterministicRng {
    /// Create the root generator for an experiment.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            seed,
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this generator (or its ancestor) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream for entity `stream` (e.g. a node or
    /// router index). Deterministic: the same `(seed, stream)` always produces
    /// the same sequence, independent of any draws made on `self`.
    pub fn split(&self, stream: u64) -> DeterministicRng {
        let mixed = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A_DEAD_BEEF)));
        DeterministicRng {
            seed: mixed,
            inner: SmallRng::seed_from_u64(mixed),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[0, bound)` as `usize`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Exponentially distributed `f64` with the given mean (inverse-CDF
    /// transform of one uniform draw). `mean` must be positive; the result
    /// is always finite because [`uniform`](Self::uniform) never returns 1.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Capture the complete generator state: the split-derivation seed and
    /// the raw xoshiro256++ words. Feeding the pair back through
    /// [`DeterministicRng::from_state`] continues the exact sequence (draws
    /// *and* future [`split`](Self::split) derivations) from the point of
    /// capture — the primitive behind simulation snapshots.
    pub fn state(&self) -> (u64, [u64; 4]) {
        (self.seed, self.inner.state())
    }

    /// Rebuild a generator from a [`state`](Self::state) capture.
    pub fn from_state(seed: u64, words: [u64; 4]) -> Self {
        DeterministicRng {
            seed,
            inner: SmallRng::from_state(words),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4, "independent streams should rarely collide");
    }

    #[test]
    fn split_streams_are_independent_of_parent_draws() {
        let root1 = DeterministicRng::new(7);
        let mut root2 = DeterministicRng::new(7);
        // consume some draws on root2 before splitting
        for _ in 0..10 {
            root2.next_u64();
        }
        let mut s1 = root1.split(3);
        let mut s2 = root2.split(3);
        for _ in 0..32 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn split_streams_differ_between_ids() {
        let root = DeterministicRng::new(7);
        let mut a = root.split(1);
        let mut b = root.split(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut r = DeterministicRng::new(0);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_rate_is_close_to_p() {
        let mut r = DeterministicRng::new(123);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }

    #[test]
    fn below_and_index_stay_in_range() {
        let mut r = DeterministicRng::new(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            assert!(r.index(9) < 9);
        }
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    fn exponential_matches_its_mean_and_stays_finite() {
        let mut r = DeterministicRng::new(77);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.exponential(40.0);
            assert!(v.is_finite() && v >= 0.0);
            sum += v;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 40.0).abs() < 1.0,
            "sample mean {mean} too far from 40"
        );
    }

    #[test]
    fn state_round_trip_continues_the_sequence() {
        let mut r = DeterministicRng::new(42);
        for _ in 0..17 {
            r.next_u64();
        }
        let (seed, words) = r.state();
        let mut copy = DeterministicRng::from_state(seed, words);
        // draws continue identically…
        for _ in 0..64 {
            assert_eq!(r.next_u64(), copy.next_u64());
        }
        // …and so do future split derivations
        let mut sa = r.split(9);
        let mut sb = copy.split(9);
        for _ in 0..16 {
            assert_eq!(sa.next_u64(), sb.next_u64());
        }
    }

    #[test]
    fn uniform_covers_unit_interval() {
        let mut r = DeterministicRng::new(99);
        let mut min: f64 = 1.0;
        let mut max: f64 = 0.0;
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99);
    }
}
