//! Time series recorders for transient experiments.
//!
//! The paper's Figures 7, 8 and 9 plot per-cycle average latency and the
//! percentage of misrouted packets around a traffic-pattern change. Because a
//! single cycle contains few packet deliveries, the plotted curves are binned
//! over short windows; [`BinnedSeries`] implements exactly that, while
//! [`TimeSeries`] keeps raw `(cycle, value)` points for sparse signals.

use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Decoder, Encoder};

/// A raw `(time, value)` series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point. Times need not be unique but should be non-decreasing
    /// for meaningful output.
    pub fn push(&mut self, time: u64, value: f64) {
        self.points.push((time, value));
    }

    /// Borrow the points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }

    /// Serialize the series exactly (snapshot support).
    pub fn encode(&self, e: &mut Encoder) {
        e.seq(self.points.len());
        for &(t, v) in &self.points {
            e.u64(t);
            e.f64(v);
        }
    }

    /// Rebuild a series from [`encode`](Self::encode) output.
    pub fn decode(d: &mut Decoder) -> Result<Self, CodecError> {
        let len = d.seq(16)?;
        let mut points = Vec::with_capacity(len);
        for _ in 0..len {
            let t = d.u64()?;
            let v = d.f64()?;
            points.push((t, v));
        }
        Ok(TimeSeries { points })
    }
}

/// A series of observations aggregated into fixed-width time bins, producing
/// the per-bin mean. Observations are attributed to the bin containing their
/// timestamp relative to `origin` (which may be negative relative to the
/// recorded times — e.g. the traffic-change instant is cycle 0 and warm-up
/// cycles are negative bins, exactly as in the paper's Figure 7 x-axis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedSeries {
    origin: i64,
    bin_width: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
    start_bin: i64,
}

impl BinnedSeries {
    /// Create a binned series with bins of `bin_width` cycles, where bin 0
    /// starts at time `origin`.
    ///
    /// # Panics
    /// Panics if `bin_width == 0`.
    pub fn new(origin: i64, bin_width: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        BinnedSeries {
            origin,
            bin_width,
            sums: Vec::new(),
            counts: Vec::new(),
            start_bin: 0,
        }
    }

    fn bin_of(&self, time: i64) -> i64 {
        (time - self.origin).div_euclid(self.bin_width as i64)
    }

    /// Record an observation at absolute time `time`.
    pub fn record(&mut self, time: i64, value: f64) {
        let bin = self.bin_of(time);
        if self.sums.is_empty() {
            self.start_bin = bin;
        }
        if bin < self.start_bin {
            // grow to the left
            let extra = (self.start_bin - bin) as usize;
            let mut sums = vec![0.0; extra];
            let mut counts = vec![0u64; extra];
            sums.extend_from_slice(&self.sums);
            counts.extend_from_slice(&self.counts);
            self.sums = sums;
            self.counts = counts;
            self.start_bin = bin;
        }
        let idx = (bin - self.start_bin) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Iterate over `(bin_start_time, mean, count)` for every bin that
    /// received at least one observation.
    pub fn iter_means(&self) -> impl Iterator<Item = (i64, f64, u64)> + '_ {
        self.sums
            .iter()
            .zip(self.counts.iter())
            .enumerate()
            .filter(|(_, (_, &c))| c > 0)
            .map(move |(i, (&s, &c))| {
                let t = self.origin + (self.start_bin + i as i64) * self.bin_width as i64;
                (t, s / c as f64, c)
            })
    }

    /// Mean of the bin containing `time`, if it has observations.
    pub fn mean_at(&self, time: i64) -> Option<f64> {
        let bin = self.bin_of(time);
        if self.sums.is_empty() || bin < self.start_bin {
            return None;
        }
        let idx = (bin - self.start_bin) as usize;
        if idx >= self.sums.len() || self.counts[idx] == 0 {
            return None;
        }
        Some(self.sums[idx] / self.counts[idx] as f64)
    }

    /// Width of each bin in cycles.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Serialize the series exactly (snapshot support).
    pub fn encode(&self, e: &mut Encoder) {
        e.i64(self.origin);
        e.u64(self.bin_width);
        e.i64(self.start_bin);
        e.seq(self.sums.len());
        for &s in &self.sums {
            e.f64(s);
        }
        e.seq(self.counts.len());
        for &c in &self.counts {
            e.u64(c);
        }
    }

    /// Rebuild a series from [`encode`](Self::encode) output.
    pub fn decode(d: &mut Decoder) -> Result<Self, CodecError> {
        let origin = d.i64()?;
        let bin_width = d.u64()?;
        if bin_width == 0 {
            return Err(CodecError::Invalid("binned series bin_width 0".into()));
        }
        let start_bin = d.i64()?;
        let n_sums = d.seq(8)?;
        let mut sums = Vec::with_capacity(n_sums);
        for _ in 0..n_sums {
            sums.push(d.f64()?);
        }
        let n_counts = d.seq(8)?;
        if n_counts != n_sums {
            return Err(CodecError::Invalid(format!(
                "binned series sums/counts length mismatch ({n_sums} vs {n_counts})"
            )));
        }
        let mut counts = Vec::with_capacity(n_counts);
        for _ in 0..n_counts {
            counts.push(d.u64()?);
        }
        Ok(BinnedSeries {
            origin,
            bin_width,
            sums,
            counts,
            start_bin,
        })
    }

    /// Collect into a [`TimeSeries`] of bin means (times are bin starts,
    /// clamped at zero for the unsigned representation).
    pub fn to_series(&self) -> TimeSeries {
        let mut s = TimeSeries::new();
        for (t, mean, _) in self.iter_means() {
            s.push(t.max(0) as u64, mean);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeseries_push_and_read() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(1, 10.0);
        s.push(2, 20.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((2, 20.0)));
        assert_eq!(s.points()[0], (1, 10.0));
    }

    #[test]
    fn binned_means_are_correct() {
        let mut b = BinnedSeries::new(0, 10);
        b.record(0, 1.0);
        b.record(5, 3.0);
        b.record(10, 10.0);
        b.record(19, 20.0);
        let means: Vec<_> = b.iter_means().collect();
        assert_eq!(means.len(), 2);
        assert_eq!(means[0], (0, 2.0, 2));
        assert_eq!(means[1], (10, 15.0, 2));
    }

    #[test]
    fn negative_times_map_to_negative_bins() {
        let mut b = BinnedSeries::new(0, 10);
        b.record(-25, 5.0);
        b.record(-21, 7.0);
        b.record(3, 1.0);
        let means: Vec<_> = b.iter_means().collect();
        assert_eq!(means[0].0, -30);
        assert_eq!(means[0].1, 6.0);
        assert_eq!(means[1].0, 0);
    }

    #[test]
    fn growing_left_preserves_existing_bins() {
        let mut b = BinnedSeries::new(0, 5);
        b.record(12, 4.0);
        b.record(-3, 8.0);
        assert_eq!(b.mean_at(12), Some(4.0));
        assert_eq!(b.mean_at(-3), Some(8.0));
        assert_eq!(b.mean_at(3), None);
    }

    #[test]
    fn mean_at_out_of_range_is_none() {
        let mut b = BinnedSeries::new(0, 10);
        b.record(5, 1.0);
        assert_eq!(b.mean_at(100), None);
        assert_eq!(b.mean_at(-100), None);
    }

    #[test]
    fn origin_offsets_the_bins() {
        let mut b = BinnedSeries::new(1000, 100);
        b.record(1000, 1.0);
        b.record(1099, 3.0);
        b.record(1100, 5.0);
        let means: Vec<_> = b.iter_means().collect();
        assert_eq!(means[0], (1000, 2.0, 2));
        assert_eq!(means[1], (1100, 5.0, 1));
    }

    #[test]
    fn to_series_exports_bin_means() {
        let mut b = BinnedSeries::new(0, 10);
        b.record(0, 2.0);
        b.record(15, 4.0);
        let s = b.to_series();
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], (10, 4.0));
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = BinnedSeries::new(0, 0);
    }
}
