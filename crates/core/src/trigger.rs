//! Misrouting triggers: the pure decision predicates.
//!
//! These small functions isolate *when* misrouting is considered from *which*
//! alternative path is chosen (candidates.rs) and from the bookkeeping
//! (algorithms). They operate on plain numbers so they can be unit-tested
//! against the paper's descriptions directly.

/// Contention-based trigger (§III-B): misroute when the contention counter of
/// the packet's minimal output exceeds the threshold `th`.
#[inline]
pub fn contention_exceeds(counter: u32, th: u32) -> bool {
    counter > th
}

/// Contention-based candidate filter: a nonminimal first hop is acceptable
/// while its own counter stays under the threshold.
#[inline]
pub fn contention_allows_candidate(counter: u32, th: u32) -> bool {
    counter < th
}

/// Credit/occupancy-based trigger (OLM-style relative comparison): misroute
/// when the minimal output already holds at least `min_required_phits` and
/// the candidate's occupancy is at most `fraction` of the minimal output's
/// occupancy.
#[inline]
pub fn credit_comparison(
    minimal_occupancy_phits: u32,
    candidate_occupancy_phits: u32,
    fraction: f64,
    min_required_phits: u32,
) -> bool {
    if minimal_occupancy_phits < min_required_phits.max(1) {
        return false;
    }
    (candidate_occupancy_phits as f64) <= fraction * minimal_occupancy_phits as f64
}

/// PB / UGAL-style source decision: choose the Valiant path when the minimal
/// path's cost (occupancy × hop count) exceeds the Valiant path's cost by
/// more than the threshold.
#[inline]
pub fn ugal_prefers_valiant(
    minimal_occupancy_phits: u32,
    minimal_hops: u32,
    valiant_occupancy_phits: u32,
    valiant_hops: u32,
    threshold_phits: u32,
) -> bool {
    (minimal_occupancy_phits as u64) * (minimal_hops as u64)
        > (valiant_occupancy_phits as u64) * (valiant_hops as u64) + threshold_phits as u64
}

/// PB global-link saturation rule: a link is saturated when its occupancy
/// fraction exceeds the configured fraction.
#[inline]
pub fn pb_link_saturated(occupancy_fraction: f64, saturation_fraction: f64) -> bool {
    occupancy_fraction > saturation_fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_trigger_is_strictly_greater() {
        assert!(!contention_exceeds(6, 6));
        assert!(contention_exceeds(7, 6));
        assert!(!contention_exceeds(0, 0));
        assert!(contention_exceeds(1, 0));
    }

    #[test]
    fn contention_candidate_filter_is_strictly_less() {
        assert!(contention_allows_candidate(5, 6));
        assert!(!contention_allows_candidate(6, 6));
        assert!(!contention_allows_candidate(7, 6));
    }

    #[test]
    fn credit_comparison_requires_minimal_occupancy() {
        // empty minimal path: never misroute, even if the candidate is empty
        assert!(!credit_comparison(0, 0, 0.5, 8));
        assert!(!credit_comparison(7, 0, 0.5, 8));
        // minimal holds one packet, candidate empty: misroute
        assert!(credit_comparison(8, 0, 0.5, 8));
        // candidate exactly at the fraction: allowed (<=)
        assert!(credit_comparison(16, 8, 0.5, 8));
        // candidate above the fraction: keep minimal
        assert!(!credit_comparison(16, 9, 0.5, 8));
    }

    #[test]
    fn credit_comparison_handles_zero_min_required() {
        // min_required is clamped to at least one phit so an empty minimal
        // path can never trigger misrouting
        assert!(!credit_comparison(0, 0, 0.5, 0));
        assert!(credit_comparison(1, 0, 0.5, 0));
    }

    #[test]
    fn ugal_comparison_weighs_hops_and_threshold() {
        // UGAL: go Valiant when q_min*H_min > q_val*H_val + T
        assert!(!ugal_prefers_valiant(0, 3, 0, 6, 24));
        // heavily loaded minimal path vs empty Valiant path
        assert!(ugal_prefers_valiant(100, 3, 0, 6, 24));
        // exactly at the boundary: prefer minimal
        assert!(!ugal_prefers_valiant(8, 3, 0, 6, 24));
        assert!(ugal_prefers_valiant(9, 3, 0, 6, 24));
        // a busy Valiant path keeps traffic minimal
        assert!(!ugal_prefers_valiant(50, 3, 40, 6, 24));
    }

    #[test]
    fn pb_saturation_fraction() {
        assert!(!pb_link_saturated(0.3, 0.5));
        assert!(!pb_link_saturated(0.5, 0.5));
        assert!(pb_link_saturated(0.51, 0.5));
    }
}
