//! # df-routing — routing algorithms and misrouting triggers
//!
//! This crate implements the paper's contribution and its baselines:
//!
//! | mechanism | kind | misrouting trigger | reference |
//! |-----------|------|--------------------|-----------|
//! | MIN       | oblivious, minimal | never | Kim et al. ISCA'08 |
//! | VAL       | oblivious, nonminimal | always (random intermediate router) | Valiant'82 |
//! | PB        | source-adaptive | credit-based + piggybacked link saturation (ECN) | Jiang et al. ISCA'09 |
//! | OLM       | in-transit adaptive | credit-based, relative occupancy comparison | García et al. ICPP'13 |
//! | **Base**  | in-transit adaptive | **contention counters** (§III-B) | this paper |
//! | **Hybrid**| in-transit adaptive | contention counters **or** credits (§III-C) | this paper |
//! | **ECtN**  | in-transit adaptive | distributed (combined) contention counters (§III-D) | this paper |
//!
//! The main entry point is [`RoutingAlgorithm::decide`]: given a router's
//! state (buffers, credits, counters — from `df-router`), the input VC a
//! packet heads, and the packet itself, it produces a [`Decision`]: which
//! output port and virtual channel to request from the allocator, plus the
//! commitment (Valiant intermediate, nonminimal global link, local detour)
//! the simulator must apply to the packet if and when that request is
//! granted.
//!
//! Routing never inspects buffer *contents* of other routers — only the
//! credit counts, the local contention counters and (for ECtN / PB) the
//! group-distributed summaries, exactly as the paper's hardware could.

#![warn(missing_docs)]

pub mod algorithms;
pub mod analysis;
pub mod candidates;
pub mod config;
pub mod decision;
pub mod kind;
pub mod minimal;
pub mod trigger;
pub mod vcmap;

pub use algorithms::RoutingAlgorithm;
pub use config::RoutingConfig;
pub use decision::{Commitment, Decision, DecisionKind};
pub use kind::RoutingKind;
