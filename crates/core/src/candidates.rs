//! Enumeration of nonminimal path candidates.
//!
//! * **Global misrouting** sends a packet to an intermediate group. Following
//!   the MM+L policy of García et al. (used by OLM and adopted by the
//!   paper's mechanisms), the candidate set contains every global link of the
//!   current group except the minimal one: links owned by the current router
//!   are reached directly through their global port, links owned by a
//!   neighbour router are reached through the local port towards that
//!   neighbour.
//! * **Local misrouting** diverts a packet to a random non-minimal router of
//!   the current group before it continues minimally (used in the
//!   intermediate and destination groups to spread load over local links).

use df_topology::{Port, RouterId, Topology};

/// A candidate nonminimal global link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalCandidate {
    /// Router of the current group owning the candidate global link.
    pub gateway: RouterId,
    /// Global port of that router.
    pub gateway_port: Port,
    /// Output port of the *current* router that starts the path towards the
    /// candidate link (the global port itself if the current router owns it,
    /// otherwise the local port towards the gateway).
    pub first_hop: Port,
    /// Group-level global link index (`0..a*h`), the index used by the ECtN
    /// combined counters.
    pub link: u32,
}

/// A candidate local detour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalCandidate {
    /// The detour router.
    pub router: RouterId,
    /// The local output port of the current router leading to it.
    pub port: Port,
}

/// Enumerate the nonminimal global-link candidates for a packet at `router`
/// whose minimal global link (towards its destination group) is
/// `minimal_link` (pass `None` when the destination is in the current group,
/// although global misrouting is normally not considered in that case).
///
/// When `own_links_only` is true only the global links of `router` itself are
/// returned (the restriction the paper applies to ECtN misrouting at
/// injection).
pub fn global_candidates(
    topo: &impl Topology,
    router: RouterId,
    minimal_link: Option<u32>,
    own_links_only: bool,
) -> Vec<GlobalCandidate> {
    let group = topo.router_group(router);
    let mut out = Vec::new();
    for j in 0..topo.global_links_per_group() {
        if Some(j) == minimal_link {
            continue;
        }
        // skip links whose peer group is not populated
        if topo.global_link_target_group(group, j).is_none() {
            continue;
        }
        let (gateway, gateway_port) = topo.global_link_owner(group, j);
        if own_links_only && gateway != router {
            continue;
        }
        // the topology may veto candidates it cannot start within the VC
        // ladder (e.g. a Megafly spine heading for another spine's link)
        let Some(first_hop) = topo.candidate_first_hop(router, gateway, gateway_port) else {
            continue;
        };
        out.push(GlobalCandidate {
            gateway,
            gateway_port,
            first_hop,
            link: j,
        });
    }
    out
}

/// Enumerate the local-detour candidates at `router`: every other router of
/// the group except the minimal next router `exclude` (the router the minimal
/// path would visit, so a "detour" through it would not be a detour at all).
pub fn local_candidates(
    topo: &impl Topology,
    router: RouterId,
    exclude: Option<RouterId>,
) -> Vec<LocalCandidate> {
    let layout = topo.layout();
    let mut out = Vec::new();
    for k in 0..topo.local_misroute_degree(router) {
        let neighbor = topo.local_neighbor(router, k);
        if Some(neighbor) == exclude {
            continue;
        }
        out.push(LocalCandidate {
            router: neighbor,
            port: Port::local(&layout, k),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams, GroupId, PortClass};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small()) // p=2,a=4,h=2 → a*h=8 links/group
    }

    #[test]
    fn global_candidates_cover_all_but_minimal_link() {
        let t = topo();
        let router = RouterId(1);
        let minimal = 3u32;
        let cands = global_candidates(&t, router, Some(minimal), false);
        assert_eq!(
            cands.len(),
            (t.params().global_links_per_group() - 1) as usize
        );
        assert!(cands.iter().all(|c| c.link != minimal));
        // every candidate's gateway is in the same group and owns the link
        for c in &cands {
            assert_eq!(t.router_group(c.gateway), t.router_group(router));
            let (owner, port) = t.global_link_owner(t.router_group(router), c.link);
            assert_eq!(owner, c.gateway);
            assert_eq!(port, c.gateway_port);
            // first hop is the global port itself or a local port to the gateway
            if c.gateway == router {
                assert_eq!(c.first_hop, c.gateway_port);
            } else {
                assert_eq!(c.first_hop.class(t.params()), PortClass::Local);
                let n = t.local_neighbor(router, c.first_hop.class_offset(t.params()));
                assert_eq!(n, c.gateway);
            }
        }
    }

    #[test]
    fn own_links_only_restricts_to_the_current_router() {
        let t = topo();
        let router = RouterId(2);
        let cands = global_candidates(&t, router, None, true);
        assert_eq!(cands.len(), t.params().h as usize);
        assert!(cands.iter().all(|c| c.gateway == router));
        assert!(cands
            .iter()
            .all(|c| c.first_hop.class(t.params()) == PortClass::Global));
    }

    #[test]
    fn partial_networks_skip_dangling_links() {
        let t = Dragonfly::new(DragonflyParams::new(2, 4, 2, 5).unwrap());
        let cands = global_candidates(&t, RouterId(0), None, false);
        // only links towards the 4 other populated groups remain
        assert_eq!(cands.len(), 4);
        for c in &cands {
            assert!(t.global_link_target_group(GroupId(0), c.link).is_some());
        }
    }

    #[test]
    fn local_candidates_exclude_the_minimal_router() {
        let t = topo();
        let router = RouterId(0);
        let exclude = RouterId(2);
        let cands = local_candidates(&t, router, Some(exclude));
        assert_eq!(cands.len(), (t.params().a - 2) as usize);
        assert!(cands
            .iter()
            .all(|c| c.router != exclude && c.router != router));
        for c in &cands {
            let n = t.local_neighbor(router, c.port.class_offset(t.params()));
            assert_eq!(n, c.router);
        }
    }

    #[test]
    fn local_candidates_without_exclusion() {
        let t = topo();
        let cands = local_candidates(&t, RouterId(5), None);
        assert_eq!(cands.len(), (t.params().a - 1) as usize);
    }
}
