//! Minimal-path queries used by every routing mechanism and by the
//! contention-counter registration.
//!
//! The contention counters track "the minimal output port of each packet,
//! regardless of its actual followed path" (§VII), so these helpers compute
//! the *hierarchical minimal* next hop towards the packet's destination from
//! the router it currently occupies — even for packets that have already been
//! misrouted.

use df_model::Packet;
use df_topology::{NodeId, Port, PortClass, RouterId, Topology};

/// The output port a packet at `router` would take on the hierarchical
/// minimal path towards node `dst`.
pub fn minimal_output(topo: &impl Topology, router: RouterId, dst: NodeId) -> Port {
    let dst_router = topo.node_router(dst);
    if dst_router == router {
        return topo.node_port(dst);
    }
    minimal_output_to_router(topo, router, dst_router)
}

/// The output port a packet at `router` would take on the hierarchical
/// minimal path towards `target` (a router).
pub fn minimal_output_to_router(topo: &impl Topology, router: RouterId, target: RouterId) -> Port {
    debug_assert_ne!(router, target, "already at the target router");
    let my_group = topo.router_group(router);
    let target_group = topo.router_group(target);
    if my_group == target_group {
        return topo.local_hop_toward(router, target);
    }
    let (gateway, gport) = topo.gateway_to(my_group, target_group);
    if gateway == router {
        gport
    } else {
        topo.local_hop_toward(router, gateway)
    }
}

/// Number of hops of the hierarchical minimal path from `router` to node
/// `dst` (0 if `dst` hangs off `router`).
pub fn minimal_hops(topo: &impl Topology, router: RouterId, dst: NodeId) -> u32 {
    let dst_router = topo.node_router(dst);
    minimal_hops_to_router(topo, router, dst_router)
}

/// Number of hops of the hierarchical minimal path between two routers.
pub fn minimal_hops_to_router(topo: &impl Topology, router: RouterId, target: RouterId) -> u32 {
    if router == target {
        return 0;
    }
    let my_group = topo.router_group(router);
    let target_group = topo.router_group(target);
    if my_group == target_group {
        return topo.local_hops_between(router, target);
    }
    let (gateway, gport) = topo.gateway_to(my_group, target_group);
    let (entry, _) = topo
        .global_neighbor(gateway, gport.class_offset(&topo.layout()))
        .expect("populated groups are connected");
    // the global hop plus whatever local hops flank it on each side
    1 + topo.local_hops_between(router, gateway) + topo.local_hops_between(entry, target)
}

/// The group-level global link (`0..a*h`) the ECtN partial array must be
/// charged for a packet sitting at `router`, or `None` when ECtN does not
/// track it (destination in the current group, or the packet arrived through
/// a local port — the paper only counts injection queues and global input
/// ports).
pub fn ectn_link_for(
    topo: &impl Topology,
    router: RouterId,
    input_class: PortClass,
    packet: &Packet,
) -> Option<u32> {
    if !matches!(input_class, PortClass::Terminal | PortClass::Global) {
        return None;
    }
    let my_group = topo.router_group(router);
    let dst_group = topo.node_group(packet.dst);
    if dst_group == my_group {
        return None;
    }
    Some(topo.group_link_to(my_group, dst_group))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::PacketId;
    use df_topology::{Dragonfly, DragonflyParams, GroupId};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small())
    }

    fn packet(src: u32, dst: u32) -> Packet {
        Packet::new(PacketId(0), NodeId(src), NodeId(dst), 8, 0)
    }

    #[test]
    fn ejection_port_at_destination_router() {
        let t = topo();
        let dst = NodeId(13);
        let r = t.node_router(dst);
        assert_eq!(minimal_output(&t, r, dst), t.node_port(dst));
        assert_eq!(minimal_hops(&t, r, dst), 0);
    }

    #[test]
    fn local_hop_within_group() {
        let t = topo();
        // nodes 0..8 are in group 0 (p=2, a=4)
        let dst = NodeId(7); // router 3, group 0
        let port = minimal_output(&t, RouterId(0), dst);
        assert_eq!(port.class(t.params()), PortClass::Local);
        assert_eq!(minimal_hops(&t, RouterId(0), dst), 1);
        // following it reaches the destination router
        let n = t.local_neighbor(RouterId(0), port.class_offset(t.params()));
        assert_eq!(n, t.node_router(dst));
    }

    #[test]
    fn remote_group_goes_through_the_gateway() {
        let t = topo();
        for dst in t.nodes() {
            for r in t.routers() {
                if t.node_router(dst) == r {
                    continue;
                }
                let port = minimal_output(&t, r, dst);
                let dst_group = t.node_group(dst);
                let my_group = t.router_group(r);
                if my_group == dst_group {
                    assert_eq!(port.class(t.params()), PortClass::Local);
                } else {
                    let (gw, gport) = t.gateway_to(my_group, dst_group);
                    if gw == r {
                        assert_eq!(port, gport, "gateway router must take its global link");
                    } else {
                        assert_eq!(port.class(t.params()), PortClass::Local);
                        let n = t.local_neighbor(r, port.class_offset(t.params()));
                        assert_eq!(n, gw, "local hop must head to the gateway");
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_hop_counts_match_the_path_module() {
        let t = topo();
        for r in t.routers() {
            for dst in t.nodes().step_by(7) {
                let hops = minimal_hops(&t, r, dst);
                let path = df_topology::path::minimal_path(&t, r, t.node_router(dst));
                assert_eq!(hops as usize, path.len(), "hops {r}->{dst}");
                assert!(hops <= 3);
            }
        }
    }

    #[test]
    fn ectn_link_only_for_injection_and_global_inputs_to_remote_groups() {
        let t = topo();
        let r = RouterId(0);
        let remote = packet(0, 70); // node 70 is in the last group
        let local = packet(0, 5); // node 5 is in group 0
                                  // injection port, remote destination: tracked
        let link = ectn_link_for(&t, r, PortClass::Terminal, &remote).unwrap();
        assert_eq!(
            t.global_link_target_group(GroupId(0), link).unwrap(),
            t.node_group(NodeId(70))
        );
        // global input, remote destination: tracked
        assert!(ectn_link_for(&t, r, PortClass::Global, &remote).is_some());
        // local input: never tracked
        assert!(ectn_link_for(&t, r, PortClass::Local, &remote).is_none());
        // destination in this group: never tracked
        assert!(ectn_link_for(&t, r, PortClass::Terminal, &local).is_none());
    }
}
