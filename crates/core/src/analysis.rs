//! The threshold analysis of the paper's §VI-A, as code.
//!
//! The paper reasons about the valid range of the misrouting threshold `th`:
//!
//! * **Lower bound** — under saturated uniform traffic every input VC tends
//!   to hold a packet, so the *average* contention counter value approaches
//!   the mean number of VCs per input port (2.74 for the Table I router).
//!   Doubling that value makes spurious misrouting rare, hence `th ≥ 6` for
//!   the paper's router.
//! * **Upper bound** — under adversarial traffic the misrouting must be
//!   triggerable by the traffic of the `p` injection ports alone (all of
//!   whose packets target the same minimal output), hence `th ≤ p` in the
//!   paper's first-order analysis; with several VCs per injection port the
//!   bound relaxes towards `p × injection_vcs`.
//!
//! These helpers are used by the calibration in [`crate::RoutingConfig`] and
//! by the `threshold_analysis` tests/benches that reproduce Figure 10's
//! qualitative conclusions.

use df_model::VcConfig;
use df_topology::DragonflyParams;

/// Expected average contention-counter value under saturated uniform traffic:
/// the mean number of input VCs per router port.
pub fn expected_saturation_counter(params: &DragonflyParams, vcs: &VcConfig) -> f64 {
    vcs.mean_vcs_per_port(params.p, params.a - 1, params.h)
}

/// The paper's recommended lower bound for the misrouting threshold: twice
/// the expected saturation counter, rounded up.
pub fn threshold_lower_bound(params: &DragonflyParams, vcs: &VcConfig) -> u32 {
    (2.0 * expected_saturation_counter(params, vcs)).ceil() as u32
}

/// First-order upper bound for the misrouting threshold so that adversarial
/// traffic can still trigger misrouting at the source router: the number of
/// head packets the injection ports alone can register.
pub fn threshold_upper_bound(params: &DragonflyParams, vcs: &VcConfig) -> u32 {
    params.p * vcs.injection as u32
}

/// The valid threshold range `(lower, upper)` per the §VI-A analysis; `None`
/// when the network is too small for the two constraints to be simultaneously
/// satisfiable (in which case the calibration clamps towards the adversarial
/// constraint, trading a little uniform-traffic latency).
pub fn valid_threshold_range(params: &DragonflyParams, vcs: &VcConfig) -> Option<(u32, u32)> {
    let lo = threshold_lower_bound(params, vcs);
    let hi = threshold_upper_bound(params, vcs);
    (lo <= hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_router_reproduces_section_vi_a() {
        let params = DragonflyParams::paper_table1();
        let paper_vcs = VcConfig {
            injection: 3,
            local: 3,
            global: 2,
        };
        let avg = expected_saturation_counter(&params, &paper_vcs);
        assert!((avg - 2.74).abs() < 0.01, "expected ~2.74, got {avg}");
        assert_eq!(threshold_lower_bound(&params, &paper_vcs), 6);
        // p=8 injection ports, so the simple bound is 8 (the paper uses
        // th <= p; the multi-VC relaxation gives 24)
        let (lo, hi) = valid_threshold_range(&params, &paper_vcs).unwrap();
        assert_eq!(lo, 6);
        assert!(hi >= 8);
        // Table I's choice th = 6 is the lowest valid value, as §VI-A argues
        assert_eq!(lo, 6);
    }

    #[test]
    fn small_networks_may_have_no_valid_range() {
        let params = DragonflyParams::tiny(); // p=1
        let vcs = VcConfig::default();
        // one injection port with 3 VCs can register at most 3 heads, while
        // the saturation average asks for a higher threshold
        let lo = threshold_lower_bound(&params, &vcs);
        let hi = threshold_upper_bound(&params, &vcs);
        assert!(hi <= 3);
        if lo > hi {
            assert!(valid_threshold_range(&params, &vcs).is_none());
        }
    }

    #[test]
    fn medium_network_has_a_valid_range() {
        let params = DragonflyParams::medium();
        let vcs = VcConfig::default();
        let (lo, hi) = valid_threshold_range(&params, &vcs).unwrap();
        assert!(lo <= hi);
        assert!(lo >= 2);
    }
}
