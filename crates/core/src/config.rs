//! Routing-mechanism configuration: the misrouting thresholds of Table I and
//! the calibration rule of §VI-A.

use df_model::VcConfig;
use df_topology::PortLayout;
use serde::{Deserialize, Serialize};

/// Thresholds and policy knobs for every routing mechanism.
///
/// Defaults are the paper's Table I values, which are calibrated for the
/// 31-port, `p=8` router. For scaled-down networks use
/// [`RoutingConfig::calibrated_for`], which applies the paper's §VI-A rule to
/// the actual router geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Base/ECtN contention threshold `th`: misroute when the contention
    /// counter of the minimal output exceeds this value (Table I: 6).
    pub contention_threshold: u32,
    /// Hybrid's contention threshold (Table I: 7 — higher than Base because
    /// the credit trigger provides a second chance to misroute).
    pub hybrid_contention_threshold: u32,
    /// ECtN combined-counter threshold for misrouting at injection
    /// (Table I: 10).
    pub ectn_combined_threshold: u32,
    /// ECtN partial-array broadcast period in cycles (Table I: 100).
    pub ectn_update_period: u64,
    /// OLM relative congestion threshold: misroute when the nonminimal
    /// output's occupancy is below this fraction of the minimal output's
    /// occupancy (Table I: 50 %).
    pub olm_congestion_fraction: f64,
    /// Hybrid's credit-trigger fraction (Table I: 35 %).
    pub hybrid_congestion_fraction: f64,
    /// Minimum occupancy (in packets) of the minimal output before a
    /// credit-based trigger is considered at all; avoids misrouting between
    /// two empty ports.
    pub credit_trigger_min_packets: u32,
    /// PB UGAL-style threshold `T`, in packets (Table I: 3).
    pub pb_ugal_threshold_packets: u32,
    /// Occupancy fraction above which PB marks one of its global links
    /// saturated (not listed in Table I; FOGSim uses a comparable
    /// fraction-of-buffer rule).
    pub pb_saturation_fraction: f64,
    /// Whether in-transit mechanisms may misroute locally in the intermediate
    /// and destination groups (the paper's OLM-style policy; disabling it is
    /// used by the ablation benches).
    pub allow_local_misroute: bool,
    /// Whether global misrouting may also be selected after the first local
    /// hop, not only at injection (PAR-style, used by OLM and the contention
    /// mechanisms).
    pub allow_global_misroute_after_hop: bool,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig {
            contention_threshold: 6,
            hybrid_contention_threshold: 7,
            ectn_combined_threshold: 10,
            ectn_update_period: 100,
            olm_congestion_fraction: 0.50,
            hybrid_congestion_fraction: 0.35,
            credit_trigger_min_packets: 1,
            pb_ugal_threshold_packets: 3,
            pb_saturation_fraction: 0.50,
            allow_local_misroute: true,
            allow_global_misroute_after_hop: true,
        }
    }
}

impl RoutingConfig {
    /// The paper's Table I thresholds.
    pub fn paper_table1() -> Self {
        Self::default()
    }

    /// Apply the paper's §VI-A calibration rule to an arbitrary router
    /// geometry:
    ///
    /// * under saturation the average contention-counter value approaches the
    ///   mean number of input VCs per port, so the threshold is set to twice
    ///   that value (rounded up) to avoid false triggers under uniform
    ///   traffic;
    /// * the threshold must stay low enough that the `p` injection ports
    ///   (with their VCs) can trigger misrouting under adversarial traffic,
    ///   so it is capped just below `p × injection_vcs`;
    /// * Hybrid gets one extra unit of contention threshold; the ECtN
    ///   combined threshold is twice the per-link average of remote-bound
    ///   head packets in a group.
    pub fn calibrated_for(layout: &impl PortLayout, vcs: &VcConfig) -> Self {
        let injection_ports = layout.terminals();
        let local_ports = layout.locals();
        let global_ports = layout.globals();
        let mean_vcs = vcs.mean_vcs_per_port(injection_ports, local_ports, global_ports);
        // Uniform-traffic constraint: stay above the saturation average.
        let uniform_floor = (2.0 * mean_vcs).ceil() as u32;
        // Adversarial constraint: the injection ports alone must be able to
        // push a counter over the threshold well before their VCs are all
        // backed up, so cap at half of the registrable injection demand.
        let adv_cap = ((injection_ports * vcs.injection as u32) / 2).max(2);
        // §VI-A: within the valid range pick the lowest value (favours
        // adversarial latency); when the two constraints conflict (very small
        // routers) the adversarial one wins, trading a little uniform-traffic
        // latency.
        let th = uniform_floor.min(adv_cap).max(2);
        // The ECtN combined threshold keeps the paper's ratio to the local
        // threshold (10 vs 6).
        let combined = ((th as f64 * 10.0 / 6.0).round() as u32).max(th + 1);
        RoutingConfig {
            contention_threshold: th,
            hybrid_contention_threshold: th + 1,
            ectn_combined_threshold: combined,
            ..Self::default()
        }
    }

    /// Same calibration but overriding the Base/ECtN contention threshold
    /// (used by the Figure 10 threshold-sensitivity sweep).
    pub fn with_contention_threshold(mut self, th: u32) -> Self {
        self.contention_threshold = th;
        self
    }

    /// Override the ECtN combined threshold.
    pub fn with_ectn_combined_threshold(mut self, th: u32) -> Self {
        self.ectn_combined_threshold = th;
        self
    }

    /// Basic sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.olm_congestion_fraction) {
            return Err("OLM congestion fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.hybrid_congestion_fraction) {
            return Err("Hybrid congestion fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.pb_saturation_fraction) {
            return Err("PB saturation fraction must be in [0,1]".into());
        }
        if self.ectn_update_period == 0 {
            return Err("ECtN update period must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::DragonflyParams;

    #[test]
    fn defaults_match_table1() {
        let c = RoutingConfig::paper_table1();
        assert_eq!(c.contention_threshold, 6);
        assert_eq!(c.hybrid_contention_threshold, 7);
        assert_eq!(c.ectn_combined_threshold, 10);
        assert_eq!(c.ectn_update_period, 100);
        assert!((c.olm_congestion_fraction - 0.50).abs() < 1e-9);
        assert!((c.hybrid_congestion_fraction - 0.35).abs() < 1e-9);
        assert_eq!(c.pb_ugal_threshold_packets, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn calibration_reproduces_paper_scale_thresholds() {
        // With the *paper's* VC counts (3/3/2) and geometry (8/16/8), the
        // §VI-A analysis gives mean 2.74 VCs/port and th = 6.
        let params = DragonflyParams::paper_table1();
        let paper_vcs = VcConfig {
            injection: 3,
            local: 3,
            global: 2,
        };
        let c = RoutingConfig::calibrated_for(&params, &paper_vcs);
        assert_eq!(c.contention_threshold, 6);
        assert_eq!(c.hybrid_contention_threshold, 7);
        assert_eq!(c.ectn_combined_threshold, 10);
    }

    #[test]
    fn calibration_scales_down_for_small_networks() {
        let params = DragonflyParams::small(); // p=2,a=4,h=2
        let vcs = VcConfig::default();
        let c = RoutingConfig::calibrated_for(&params, &vcs);
        // must stay strictly below p * injection_vcs = 6 so adversarial
        // traffic can trigger misrouting at the source router
        assert!(c.contention_threshold < 6);
        assert!(c.contention_threshold >= 2);
        assert!(c.ectn_combined_threshold > c.contention_threshold);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn calibration_for_medium_network_matches_paper_values() {
        let params = DragonflyParams::medium(); // p=4,a=8,h=4
        let vcs = VcConfig::default(); // 3/4/2
        let c = RoutingConfig::calibrated_for(&params, &vcs);
        // uniform floor = ceil(2*3.2) = 7, adversarial cap = 4*3/2 = 6 → 6,
        // i.e. the same threshold the paper uses for its (larger) router
        assert_eq!(c.contention_threshold, 6);
        assert_eq!(c.ectn_combined_threshold, 10);
    }

    #[test]
    fn builder_overrides() {
        let c = RoutingConfig::paper_table1()
            .with_contention_threshold(4)
            .with_ectn_combined_threshold(8);
        assert_eq!(c.contention_threshold, 4);
        assert_eq!(c.ectn_combined_threshold, 8);
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let c = RoutingConfig {
            olm_congestion_fraction: 1.5,
            ..RoutingConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RoutingConfig {
            pb_saturation_fraction: -0.1,
            ..RoutingConfig::default()
        };
        assert!(c.validate().is_err());
        let c = RoutingConfig {
            ectn_update_period: 0,
            ..RoutingConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
