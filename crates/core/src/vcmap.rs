//! Phase-based virtual-channel assignment (deadlock avoidance).
//!
//! The VC of every hop is derived from the packet's *routing phase* rather
//! than from raw hop counts, following the canonical Dragonfly scheme
//! (Kim et al., ISCA'08, extended for nonminimal in-transit routing):
//!
//! | hop | phase | VC |
//! |-----|-------|----|
//! | local, no global hop taken yet (source group)            | `g = 0` | local 0 |
//! | first global hop                                          |         | global 0 |
//! | local after one global hop (intermediate or destination group) | `g = 1` | local 1, then 2 for a detour/Valiant second hop |
//! | second global hop (nonminimal paths only)                 |         | global 1 |
//! | local after two global hops (destination group)           | `g = 2` | local 3 |
//!
//! Every allowed path visits these resources in the order
//! `L0 → G0 → L1 → L2 → G1 → L3`, i.e. the VC rank strictly increases along
//! any path, so the channel dependency graph is acyclic and the network is
//! deadlock-free. Crucially, destination-group local hops never share a VC
//! with source-group local hops — that sharing is exactly what creates the
//! credit cycle around the ring of groups under ADV+1 traffic.
//!
//! The assignment needs 4 local VCs and 2 global VCs (Table I uses 3 local
//! VCs for the OLM/contention family and 4 for VAL/PB; the uniform budget of
//! 4 is the deviation documented in `DESIGN.md`). It also implies one policy
//! restriction enforced by [`local_detour_fits`]: a packet that has already
//! taken its *second* global hop (a globally misrouted packet arriving in its
//! destination group) may not take a local detour there, because that hop
//! would need a fifth local VC.

use df_model::{NetworkConfig, Packet, VcId};
use df_topology::PortClass;

/// Maximum local VC index any hop can be assigned (0-based), i.e. the scheme
/// needs `MAX_LOCAL_VC + 1 = 4` local VCs.
pub const MAX_LOCAL_VC: u8 = 3;

/// Maximum global VC index (the scheme needs 2 global VCs).
pub const MAX_GLOBAL_VC: u8 = 1;

/// The local VC a packet would use for its next local hop, given its phase.
fn next_local_vc(packet: &Packet) -> u8 {
    let g = packet.routing.global_hops;
    let l = packet.routing.local_hops_since_global;
    match g {
        0 => l,     // source group: 0 (a second pre-global local hop is never allowed)
        1 => 1 + l, // intermediate or destination group: 1, 2
        _ => 3 + l, // destination group after a nonminimal global hop: 3
    }
}

/// The VC a packet must use on its next hop through a port of class
/// `output_class`.
///
/// # Panics
/// Panics (debug builds) if the routing policy requests a hop that exceeds
/// the VC budget — allowed paths never do.
pub fn vc_for_next_hop(packet: &Packet, output_class: PortClass, config: &NetworkConfig) -> VcId {
    match output_class {
        PortClass::Terminal => VcId(0),
        PortClass::Local => {
            let vc = next_local_vc(packet);
            debug_assert!(
                vc <= MAX_LOCAL_VC,
                "packet {:?} needs local VC {vc} which exceeds the budget",
                packet.id
            );
            VcId(vc.min(config.vcs.local - 1))
        }
        PortClass::Global => {
            let vc = packet.routing.global_hops;
            debug_assert!(
                vc <= MAX_GLOBAL_VC,
                "packet {:?} needs global VC {vc} which exceeds the budget",
                packet.id
            );
            VcId(vc.min(config.vcs.global - 1))
        }
    }
}

/// Whether a packet may take a local detour (one extra local hop) in its
/// current group without exceeding the VC budget.
///
/// Detours are possible only in the phase after the first global hop
/// (`global_hops == 1`, i.e. the intermediate group of a nonminimal path or
/// the destination group of a minimal one) and before any other local hop was
/// taken in that group: the detour then uses local VC `1 + l` and the
/// remaining minimal local hops still fit under [`MAX_LOCAL_VC`].
pub fn local_detour_fits(
    packet: &Packet,
    remaining_minimal_locals: u8,
    config: &NetworkConfig,
) -> bool {
    if packet.routing.global_hops != 1 {
        return false;
    }
    let budget = config.vcs.local.min(MAX_LOCAL_VC + 1);
    // detour consumes VC 1 + l, each remaining minimal local consumes the
    // next indices; the last destination-group hop after a second global hop
    // uses VC 3, which is accounted for by the caller via
    // `remaining_minimal_locals`.
    let l = packet.routing.local_hops_since_global;
    1 + l + remaining_minimal_locals < budget
}

/// Whether a packet may still commit to a nonminimal global path: it must not
/// have taken any global hop yet, and the VC budget must cover the worst
/// remaining path (`l g l l g l`).
pub fn global_misroute_fits(packet: &Packet, config: &NetworkConfig) -> bool {
    packet.routing.global_hops == 0 && config.vcs.global >= 2 && config.vcs.local > MAX_LOCAL_VC
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::{NetworkConfig, Packet, PacketId};
    use df_topology::NodeId;

    fn packet(local_total: u8, global: u8, local_since: u8) -> Packet {
        let mut p = Packet::new(PacketId(0), NodeId(0), NodeId(1), 8, 0);
        p.routing.local_hops = local_total;
        p.routing.global_hops = global;
        p.routing.local_hops_since_global = local_since;
        p
    }

    #[test]
    fn phase_based_vcs_follow_the_canonical_sequence() {
        let c = NetworkConfig::default();
        // source group local hop
        assert_eq!(
            vc_for_next_hop(&packet(0, 0, 0), PortClass::Local, &c),
            VcId(0)
        );
        // first global hop
        assert_eq!(
            vc_for_next_hop(&packet(1, 0, 1), PortClass::Global, &c),
            VcId(0)
        );
        assert_eq!(
            vc_for_next_hop(&packet(0, 0, 0), PortClass::Global, &c),
            VcId(0)
        );
        // local after one global hop: VC1, a second one VC2
        assert_eq!(
            vc_for_next_hop(&packet(1, 1, 0), PortClass::Local, &c),
            VcId(1)
        );
        assert_eq!(
            vc_for_next_hop(&packet(2, 1, 1), PortClass::Local, &c),
            VcId(2)
        );
        // second global hop
        assert_eq!(
            vc_for_next_hop(&packet(2, 1, 1), PortClass::Global, &c),
            VcId(1)
        );
        // destination-group local after the second global hop
        assert_eq!(
            vc_for_next_hop(&packet(2, 2, 0), PortClass::Local, &c),
            VcId(3)
        );
        // ejection
        assert_eq!(
            vc_for_next_hop(&packet(3, 2, 1), PortClass::Terminal, &c),
            VcId(0)
        );
    }

    #[test]
    fn gateway_injected_traffic_does_not_reuse_vc0_in_the_destination_group() {
        // the credit cycle that deadlocks ADV+1 under minimal routing arises
        // exactly when this assertion is violated
        let c = NetworkConfig::default();
        let after_global = packet(0, 1, 0); // injected at the gateway, took only the global hop
        assert_ne!(
            vc_for_next_hop(&after_global, PortClass::Local, &c),
            VcId(0),
            "destination-group local hops must not share VC0 with source-group hops"
        );
    }

    #[test]
    fn vcs_strictly_increase_along_the_worst_case_path() {
        // l g l l g l — the worst allowed path; ranks must strictly increase
        let c = NetworkConfig::default();
        let mut p = packet(0, 0, 0);
        let mut ranks = Vec::new();
        for class in [
            PortClass::Local,
            PortClass::Global,
            PortClass::Local,
            PortClass::Local,
            PortClass::Global,
            PortClass::Local,
        ] {
            let vc = vc_for_next_hop(&p, class, &c);
            // rank on the canonical L0 G0 L1 L2 G1 L3 order
            let rank = match (class, vc.0) {
                (PortClass::Local, 0) => 0,
                (PortClass::Global, 0) => 1,
                (PortClass::Local, 1) => 2,
                (PortClass::Local, 2) => 3,
                (PortClass::Global, 1) => 4,
                (PortClass::Local, 3) => 5,
                other => panic!("unexpected (class, vc) = {other:?}"),
            };
            ranks.push(rank);
            match class {
                PortClass::Local => {
                    p.routing.local_hops += 1;
                    p.routing.local_hops_since_global += 1;
                }
                PortClass::Global => {
                    p.routing.global_hops += 1;
                    p.routing.local_hops_since_global = 0;
                }
                PortClass::Terminal => {}
            }
        }
        assert!(
            ranks.windows(2).all(|w| w[0] < w[1]),
            "ranks {ranks:?} must increase"
        );
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn local_detour_budget_follows_the_phase() {
        let c = NetworkConfig::default();
        // in the intermediate group right after the global hop: allowed
        assert!(local_detour_fits(&packet(1, 1, 0), 2, &c));
        // after already taking a local hop in that group: the detour plus the
        // two remaining minimal locals would exceed the budget
        assert!(!local_detour_fits(&packet(2, 1, 1), 2, &c));
        // in the destination group of a minimal path: allowed
        assert!(local_detour_fits(&packet(1, 1, 0), 1, &c));
        // in the destination group after a nonminimal global hop: forbidden
        assert!(!local_detour_fits(&packet(2, 2, 0), 1, &c));
        // before any global hop: local detours are never taken
        assert!(!local_detour_fits(&packet(1, 0, 1), 1, &c));
    }

    #[test]
    fn global_misroute_budget() {
        let c = NetworkConfig::default();
        assert!(global_misroute_fits(&packet(0, 0, 0), &c));
        assert!(global_misroute_fits(&packet(1, 0, 1), &c));
        assert!(
            !global_misroute_fits(&packet(1, 1, 0), &c),
            "already took a global hop"
        );
        // a configuration with too few VCs cannot support misrouting at all
        let mut tight = NetworkConfig::default();
        tight.vcs.global = 1;
        assert!(!global_misroute_fits(&packet(0, 0, 0), &tight));
    }
}
