//! Routing decisions handed from the routing algorithm to the simulator.

use df_model::VcId;
use df_topology::{Port, RouterId};
use serde::{Deserialize, Serialize};

/// Why the chosen output was selected — used by the statistics and by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// Eject to the destination node.
    Ejection,
    /// Follow the minimal path.
    Minimal,
    /// Take (or head towards) a nonminimal global link.
    NonminimalGlobal,
    /// Take a nonminimal local detour.
    NonminimalLocal,
    /// Continue a previously committed nonminimal path (Valiant waypoint,
    /// pending global misroute or local detour).
    Continuation,
    /// The packet is unroutable: its minimal continuation is dead and no
    /// policy-legal live alternative exists (fault routing). The simulator
    /// removes the packet and accounts it in the dropped-on-fault counters;
    /// no output is requested.
    Discard,
}

/// A commitment the simulator must record on the packet **when the grant is
/// applied** (not at decision time: adaptive mechanisms re-evaluate their
/// decision every cycle until the packet actually wins the switch, so a
/// decision must not mutate the packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Commitment {
    /// Nothing to record.
    None,
    /// Route through a Valiant-style intermediate router; `misroute` tells
    /// whether this counts as global misrouting for the statistics (true for
    /// VAL/PB nonminimal source routing).
    Intermediate {
        /// The intermediate router to visit before heading to the
        /// destination.
        router: RouterId,
        /// Whether the statistics should count the packet as globally
        /// misrouted.
        misroute: bool,
    },
    /// Commit to a nonminimal global link: `gateway` is the router of the
    /// current group owning it, `port` its global port.
    NonminimalGlobal {
        /// Router owning the nonminimal global link.
        gateway: RouterId,
        /// Global port of that router.
        port: Port,
    },
    /// Commit to a local detour through `router` in the current group.
    LocalDetour {
        /// The detour router.
        router: RouterId,
    },
    /// Fault re-commit: replace a committed nonminimal global link whose
    /// gateway link died with a live one. Unlike
    /// [`Commitment::NonminimalGlobal`] this may overwrite an existing
    /// commitment (the committed hop was never taken, so the one-misroute
    /// bound — counted in hops — is preserved).
    RecommitGlobal {
        /// Router of the current group owning the replacement link.
        gateway: RouterId,
        /// Global port of that router.
        port: Port,
    },
    /// Fault re-commit: drop a committed nonminimal global link whose
    /// gateway link died and continue minimally.
    AbandonNonminimal,
    /// Fault re-commit: replace a Valiant intermediate router whose path
    /// died with a live alternative.
    RecommitIntermediate {
        /// The replacement intermediate router.
        router: RouterId,
    },
    /// Fault re-commit: skip a Valiant intermediate router that can no
    /// longer be reached and head minimally to the destination.
    AbandonIntermediate,
    /// Fault re-commit: drop a committed local detour whose link died and
    /// continue minimally (the once-per-group detour budget stays spent).
    AbandonLocalDetour,
}

impl Commitment {
    /// Whether applying this commitment re-routes a previously committed
    /// packet around a failure (feeds the `recommitted_packets` counter).
    pub fn is_fault_recommit(&self) -> bool {
        matches!(
            self,
            Commitment::RecommitGlobal { .. }
                | Commitment::AbandonNonminimal
                | Commitment::RecommitIntermediate { .. }
                | Commitment::AbandonIntermediate
                | Commitment::AbandonLocalDetour
        )
    }
}

/// The output of a routing decision for one head packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Output port to request.
    pub output_port: Port,
    /// Downstream virtual channel to request on that output.
    pub output_vc: VcId,
    /// Classification of the decision.
    pub kind: DecisionKind,
    /// Commitment to apply to the packet when the request is granted.
    pub commitment: Commitment,
}

impl Decision {
    /// A plain minimal-path decision with no commitment.
    pub fn minimal(output_port: Port, output_vc: VcId) -> Self {
        Decision {
            output_port,
            output_vc,
            kind: DecisionKind::Minimal,
            commitment: Commitment::None,
        }
    }

    /// An ejection decision.
    pub fn ejection(output_port: Port) -> Self {
        Decision {
            output_port,
            output_vc: VcId(0),
            kind: DecisionKind::Ejection,
            commitment: Commitment::None,
        }
    }

    /// A discard decision: the packet is unroutable (fault routing). The
    /// port/VC fields are placeholders — the simulator never requests an
    /// output for a discarded packet.
    pub fn discard() -> Self {
        Decision {
            output_port: Port(0),
            output_vc: VcId(0),
            kind: DecisionKind::Discard,
            commitment: Commitment::None,
        }
    }

    /// Whether this decision commits or continues a nonminimal path.
    pub fn is_nonminimal(&self) -> bool {
        matches!(
            self.kind,
            DecisionKind::NonminimalGlobal | DecisionKind::NonminimalLocal
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let d = Decision::minimal(Port(3), VcId(1));
        assert_eq!(d.output_port, Port(3));
        assert_eq!(d.output_vc, VcId(1));
        assert_eq!(d.kind, DecisionKind::Minimal);
        assert_eq!(d.commitment, Commitment::None);
        assert!(!d.is_nonminimal());

        let e = Decision::ejection(Port(0));
        assert_eq!(e.kind, DecisionKind::Ejection);
        assert_eq!(e.output_vc, VcId(0));
    }

    #[test]
    fn discard_and_recommit_classification() {
        let d = Decision::discard();
        assert_eq!(d.kind, DecisionKind::Discard);
        assert_eq!(d.commitment, Commitment::None);
        assert!(!d.is_nonminimal());
        assert!(!Commitment::None.is_fault_recommit());
        assert!(!Commitment::Intermediate {
            router: RouterId(1),
            misroute: true
        }
        .is_fault_recommit());
        for c in [
            Commitment::RecommitGlobal {
                gateway: RouterId(1),
                port: Port(5),
            },
            Commitment::AbandonNonminimal,
            Commitment::RecommitIntermediate {
                router: RouterId(2),
            },
            Commitment::AbandonIntermediate,
            Commitment::AbandonLocalDetour,
        ] {
            assert!(c.is_fault_recommit(), "{c:?}");
        }
    }

    #[test]
    fn nonminimal_classification() {
        let d = Decision {
            output_port: Port(5),
            output_vc: VcId(0),
            kind: DecisionKind::NonminimalGlobal,
            commitment: Commitment::NonminimalGlobal {
                gateway: RouterId(2),
                port: Port(5),
            },
        };
        assert!(d.is_nonminimal());
        let c = Decision {
            kind: DecisionKind::Continuation,
            ..d
        };
        assert!(!c.is_nonminimal());
    }
}
