//! The routing mechanisms evaluated in the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which routing mechanism a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Oblivious hierarchical minimal routing.
    Minimal,
    /// Oblivious Valiant routing through a random intermediate router.
    Valiant,
    /// PiggyBacking: source-adaptive MIN/VAL selection driven by credit
    /// occupancy and piggybacked global-link saturation bits (ECN-style).
    PiggyBacking,
    /// Opportunistic Local Misrouting: in-transit adaptive, credit-based
    /// global and local misrouting (the best previous in-transit mechanism).
    Olm,
    /// Contention-counter misrouting trigger (the paper's Base mechanism).
    Base,
    /// Contention counters combined with a credit-based trigger (the paper's
    /// Hybrid mechanism).
    Hybrid,
    /// Explicit Contention Notification: group-distributed contention
    /// counters driving misrouting at injection (the paper's ECtN
    /// mechanism).
    Ectn,
}

impl RoutingKind {
    /// All mechanisms, in the order the paper's figures list them.
    pub const ALL: [RoutingKind; 7] = [
        RoutingKind::Minimal,
        RoutingKind::Valiant,
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Hybrid,
        RoutingKind::Ectn,
    ];

    /// The adaptive mechanisms compared in most figures (everything except
    /// the oblivious references).
    pub const ADAPTIVE: [RoutingKind; 5] = [
        RoutingKind::PiggyBacking,
        RoutingKind::Olm,
        RoutingKind::Base,
        RoutingKind::Hybrid,
        RoutingKind::Ectn,
    ];

    /// The contention-based mechanisms introduced by the paper.
    pub const CONTENTION_BASED: [RoutingKind; 3] =
        [RoutingKind::Base, RoutingKind::Hybrid, RoutingKind::Ectn];

    /// Label used in tables and figures ("MIN", "VAL", "PB", "OLM", "Base",
    /// "Hybrid", "ECtN").
    pub fn label(&self) -> &'static str {
        match self {
            RoutingKind::Minimal => "MIN",
            RoutingKind::Valiant => "VAL",
            RoutingKind::PiggyBacking => "PB",
            RoutingKind::Olm => "OLM",
            RoutingKind::Base => "Base",
            RoutingKind::Hybrid => "Hybrid",
            RoutingKind::Ectn => "ECtN",
        }
    }

    /// Whether the mechanism adapts to network state (MIN and VAL are
    /// oblivious).
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, RoutingKind::Minimal | RoutingKind::Valiant)
    }

    /// Whether the mechanism uses contention counters (the paper's
    /// contribution).
    pub fn uses_contention_counters(&self) -> bool {
        matches!(
            self,
            RoutingKind::Base | RoutingKind::Hybrid | RoutingKind::Ectn
        )
    }

    /// Whether the mechanism uses credit/occupancy information to trigger
    /// misrouting.
    pub fn uses_credit_trigger(&self) -> bool {
        matches!(
            self,
            RoutingKind::PiggyBacking | RoutingKind::Olm | RoutingKind::Hybrid
        )
    }

    /// Whether routing decisions are taken only at the source router
    /// (source routing) rather than at every hop.
    pub fn is_source_routed(&self) -> bool {
        matches!(
            self,
            RoutingKind::Minimal | RoutingKind::Valiant | RoutingKind::PiggyBacking
        )
    }

    /// Whether the mechanism requires the periodic ECtN partial-array
    /// broadcast.
    pub fn needs_ectn_broadcast(&self) -> bool {
        matches!(self, RoutingKind::Ectn)
    }

    /// Whether the mechanism requires the PB saturation dissemination.
    pub fn needs_pb_dissemination(&self) -> bool {
        matches!(self, RoutingKind::PiggyBacking)
    }
}

impl fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(RoutingKind::Minimal.label(), "MIN");
        assert_eq!(RoutingKind::Valiant.label(), "VAL");
        assert_eq!(RoutingKind::PiggyBacking.label(), "PB");
        assert_eq!(RoutingKind::Olm.label(), "OLM");
        assert_eq!(RoutingKind::Base.label(), "Base");
        assert_eq!(RoutingKind::Hybrid.label(), "Hybrid");
        assert_eq!(RoutingKind::Ectn.label(), "ECtN");
        assert_eq!(RoutingKind::Ectn.to_string(), "ECtN");
    }

    #[test]
    fn classification_flags_are_consistent() {
        for k in RoutingKind::ALL {
            if k.uses_contention_counters() {
                assert!(k.is_adaptive());
            }
            if k.uses_credit_trigger() {
                assert!(k.is_adaptive());
            }
        }
        assert!(!RoutingKind::Minimal.is_adaptive());
        assert!(!RoutingKind::Valiant.is_adaptive());
        assert!(RoutingKind::Base.uses_contention_counters());
        assert!(!RoutingKind::Base.uses_credit_trigger());
        assert!(RoutingKind::Hybrid.uses_credit_trigger());
        assert!(RoutingKind::Hybrid.uses_contention_counters());
        assert!(RoutingKind::Olm.uses_credit_trigger());
        assert!(!RoutingKind::Olm.uses_contention_counters());
        assert!(RoutingKind::PiggyBacking.is_source_routed());
        assert!(!RoutingKind::Base.is_source_routed());
        assert!(RoutingKind::Ectn.needs_ectn_broadcast());
        assert!(!RoutingKind::Base.needs_ectn_broadcast());
        assert!(RoutingKind::PiggyBacking.needs_pb_dissemination());
    }

    #[test]
    fn constant_lists_are_disjoint_where_expected() {
        assert_eq!(RoutingKind::ALL.len(), 7);
        assert_eq!(RoutingKind::ADAPTIVE.len(), 5);
        for k in RoutingKind::ADAPTIVE {
            assert!(k.is_adaptive());
        }
        for k in RoutingKind::CONTENTION_BASED {
            assert!(k.uses_contention_counters());
        }
    }
}
