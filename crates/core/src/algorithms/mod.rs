//! The routing algorithms: dispatch and the shared decision skeleton.
//!
//! [`RoutingAlgorithm::decide`] first honours any commitment the packet
//! already carries (a Valiant waypoint, a pending nonminimal global link, a
//! local detour): those produce *continuation* decisions that simply follow
//! the committed path minimally. Only packets with no pending commitment
//! reach the per-mechanism adaptive logic, which may produce a minimal
//! decision or a new commitment.

pub mod adaptive;
pub mod common;
pub mod oblivious;
pub mod piggyback;

use df_engine::DeterministicRng;
use df_model::Packet;
use df_model::RouteObjective;
use df_router::Router;
use df_topology::{Port, PortClass, RouterId};

use crate::config::RoutingConfig;
use crate::decision::{Decision, DecisionKind};
use crate::kind::RoutingKind;
use crate::vcmap::vc_for_next_hop;

/// A routing mechanism bound to its configuration.
///
/// The object is stateless apart from configuration: all dynamic state
/// (credits, counters, saturation bits) lives in the [`Router`] it inspects,
/// which is what lets one instance be shared by every router of the network —
/// or copied wholesale into every worker of the parallel kernel.
#[derive(Debug, Clone, Copy)]
pub struct RoutingAlgorithm {
    kind: RoutingKind,
    config: RoutingConfig,
}

impl RoutingAlgorithm {
    /// Create a routing algorithm of the given kind with the given
    /// thresholds.
    pub fn new(kind: RoutingKind, config: RoutingConfig) -> Self {
        RoutingAlgorithm { kind, config }
    }

    /// The mechanism kind.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The configuration.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Decide the output request for the head packet of `input_port` at
    /// `router`.
    ///
    /// The decision is re-evaluated every cycle until the packet wins the
    /// switch, so this function never mutates the packet; any commitment is
    /// carried inside the returned [`Decision`] and applied by the simulator
    /// at grant time.
    pub fn decide(
        &self,
        router: &Router,
        input_port: Port,
        packet: &Packet,
        rng: &mut DeterministicRng,
    ) -> Decision {
        let topo = router.topology();
        let current = router.id();
        match packet.routing.objective(topo, current, packet.dst) {
            RouteObjective::Eject(port) => Decision::ejection(port),
            RouteObjective::LocalDetour(r) => common::continuation_to_router(router, packet, r),
            RouteObjective::NonminimalGateway(gateway, gport) => {
                self.continue_to_gateway(router, packet, gateway, gport)
            }
            RouteObjective::Intermediate(r) => common::continuation_to_router(router, packet, r),
            RouteObjective::Destination(dst_router) => {
                self.route_to_destination(router, input_port, packet, dst_router, rng)
            }
        }
    }

    fn continue_to_gateway(
        &self,
        router: &Router,
        packet: &Packet,
        gateway: RouterId,
        gateway_port: Port,
    ) -> Decision {
        if gateway == router.id() {
            Decision {
                output_port: gateway_port,
                output_vc: vc_for_next_hop(packet, PortClass::Global, router.config()),
                kind: DecisionKind::Continuation,
                commitment: crate::decision::Commitment::None,
            }
        } else {
            common::continuation_to_router(router, packet, gateway)
        }
    }

    fn route_to_destination(
        &self,
        router: &Router,
        input_port: Port,
        packet: &Packet,
        dst_router: RouterId,
        rng: &mut DeterministicRng,
    ) -> Decision {
        debug_assert_ne!(
            dst_router,
            router.id(),
            "ejection is handled by the objective"
        );
        match self.kind {
            RoutingKind::Minimal => oblivious::minimal_decision(router, packet),
            RoutingKind::Valiant => {
                oblivious::valiant_decision(&self.config, router, input_port, packet, rng)
            }
            RoutingKind::PiggyBacking => {
                piggyback::decide(&self.config, router, input_port, packet, rng)
            }
            RoutingKind::Olm | RoutingKind::Base | RoutingKind::Hybrid | RoutingKind::Ectn => {
                adaptive::decide(self.kind, &self.config, router, input_port, packet, rng)
            }
        }
    }
}
