//! The routing algorithms: dispatch and the shared decision skeleton.
//!
//! [`RoutingAlgorithm::decide`] first honours any commitment the packet
//! already carries (a Valiant waypoint, a pending nonminimal global link, a
//! local detour): those produce *continuation* decisions that simply follow
//! the committed path minimally. Only packets with no pending commitment
//! reach the per-mechanism adaptive logic, which may produce a minimal
//! decision or a new commitment.
//!
//! # Failure-aware continuations (fault routing)
//!
//! A committed continuation can die under it: the gateway link of a
//! committed nonminimal global path, the local link towards a Valiant
//! waypoint or a detour router. Committed packets used to stall on those
//! ports until `LinkUp`. Every continuation is therefore **re-committed**
//! when its output link is down:
//!
//! * a dead nonminimal gateway link re-runs the mechanism's candidate
//!   selection with the dead option filtered
//!   ([`adaptive::recommit_global`], which documents the deadlock-freedom
//!   argument);
//! * a dead path to a Valiant waypoint re-picks a live intermediate at the
//!   source ([`common::pick_live_intermediate`]) or skips the waypoint once
//!   past the first global hop (strictly fewer hops — trivially VC-safe);
//! * a dead detour link abandons the detour and falls back to the
//!   destination logic (the detour was an extra hop; skipping it stays on
//!   the ladder).
//!
//! All checks are gated on `router.any_link_down()` /
//! `link_view().all_up()`, so healthy-network runs take none of these
//! paths and stay bit-identical.

pub mod adaptive;
pub mod common;
pub mod oblivious;
pub mod piggyback;

use df_engine::DeterministicRng;
use df_model::Packet;
use df_model::RouteObjective;
use df_router::Router;
use df_topology::{Port, PortClass, RouterId, Topology};

use crate::config::RoutingConfig;
use crate::decision::{Commitment, Decision, DecisionKind};
use crate::kind::RoutingKind;
use crate::minimal::minimal_output_to_router;
use crate::vcmap::vc_for_next_hop;

/// A routing mechanism bound to its configuration.
///
/// The object is stateless apart from configuration: all dynamic state
/// (credits, counters, saturation bits) lives in the [`Router`] it inspects,
/// which is what lets one instance be shared by every router of the network —
/// or copied wholesale into every worker of the parallel kernel.
#[derive(Debug, Clone, Copy)]
pub struct RoutingAlgorithm {
    kind: RoutingKind,
    config: RoutingConfig,
}

impl RoutingAlgorithm {
    /// Create a routing algorithm of the given kind with the given
    /// thresholds.
    pub fn new(kind: RoutingKind, config: RoutingConfig) -> Self {
        RoutingAlgorithm { kind, config }
    }

    /// The mechanism kind.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The configuration.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Decide the output request for the head packet of `input_port` at
    /// `router`.
    ///
    /// The decision is re-evaluated every cycle until the packet wins the
    /// switch, so this function never mutates the packet; any commitment is
    /// carried inside the returned [`Decision`] and applied by the simulator
    /// at grant time.
    pub fn decide(
        &self,
        router: &Router,
        input_port: Port,
        packet: &Packet,
        rng: &mut DeterministicRng,
    ) -> Decision {
        let topo = router.topology();
        let current = router.id();
        match packet.routing.objective(topo, current, packet.dst) {
            RouteObjective::Eject(port) => Decision::ejection(port),
            RouteObjective::LocalDetour(r) => {
                let d = common::continuation_to_router(router, packet, r);
                if router.any_link_down() && !router.link_is_up(d.output_port) {
                    self.abandon_dead_detour(router, input_port, packet, rng)
                } else {
                    d
                }
            }
            RouteObjective::NonminimalGateway(gateway, gport) => {
                self.continue_to_gateway(router, packet, gateway, gport, rng)
            }
            RouteObjective::Intermediate(r) => {
                let d = common::continuation_to_router(router, packet, r);
                if router.any_link_down() && !router.link_is_up(d.output_port) {
                    self.reroute_dead_intermediate(router, packet, d, rng)
                } else {
                    d
                }
            }
            RouteObjective::Destination(dst_router) => {
                self.route_to_destination(router, input_port, packet, dst_router, rng)
            }
        }
    }

    fn continue_to_gateway(
        &self,
        router: &Router,
        packet: &Packet,
        gateway: RouterId,
        gateway_port: Port,
        rng: &mut DeterministicRng,
    ) -> Decision {
        let topo = router.topology();
        let at_gateway = gateway == router.id();
        let continuation = if at_gateway {
            Decision {
                output_port: gateway_port,
                output_vc: vc_for_next_hop(packet, PortClass::Global, router.config()),
                kind: DecisionKind::Continuation,
                commitment: Commitment::None,
            }
        } else {
            common::continuation_to_router(router, packet, gateway)
        };
        // fault routing: a committed link that died (its output port at this
        // router, or — for mechanisms with a link-state view — the gateway
        // link itself, known before walking there) is re-committed
        if router.any_link_down() || !router.link_view().all_up() {
            let committed_dead = !router.link_is_up(continuation.output_port) || {
                !at_gateway && {
                    let layout = topo.layout();
                    let j = topo.global_link_index(gateway, gateway_port.class_offset(&layout));
                    !router.link_view().link_up(router.group(), j)
                }
            };
            if committed_dead {
                return adaptive::recommit_global(
                    self.kind,
                    &self.config,
                    router,
                    packet,
                    (gateway, gateway_port),
                    continuation,
                    rng,
                );
            }
        }
        continuation
    }

    /// A committed local detour whose link died: abandon it and route
    /// towards the destination as if it had never been committed (the
    /// once-per-group detour budget stays spent). The destination logic can
    /// produce no new commitment here — the packet is past its global hop
    /// and has already detoured in this group — so attaching the abandon
    /// commitment is unambiguous.
    fn abandon_dead_detour(
        &self,
        router: &Router,
        input_port: Port,
        packet: &Packet,
        rng: &mut DeterministicRng,
    ) -> Decision {
        let dst_router = router.topology().node_router(packet.dst);
        if dst_router == router.id() {
            // unreachable in practice (a detour is never committed at the
            // destination router), but keep the objective's contract
            return Decision::ejection(router.topology().node_port(packet.dst));
        }
        let mut d = self.route_to_destination(router, input_port, packet, dst_router, rng);
        if d.kind == DecisionKind::Discard {
            return d;
        }
        debug_assert_eq!(d.commitment, Commitment::None);
        d.commitment = Commitment::AbandonLocalDetour;
        d
    }

    /// A Valiant waypoint whose path died. Before the first global hop the
    /// source re-picks a live intermediate (same RNG discipline as the
    /// original pick); past it the waypoint is simply skipped — strictly
    /// fewer hops, so trivially VC-safe.
    fn reroute_dead_intermediate(
        &self,
        router: &Router,
        packet: &Packet,
        stalled: Decision,
        rng: &mut DeterministicRng,
    ) -> Decision {
        let topo = router.topology();
        if packet.routing.global_hops == 0 {
            let src_group = topo.router_group(router.id());
            let dst_group = topo.node_group(packet.dst);
            // a packet that already spent its pre-global local hop may only
            // restart on one of this router's own global ports — a second
            // pre-global local hop would re-enter the VC ladder below the
            // rung it occupies (same rule recommit_global enforces)
            let own_global_only = packet.routing.local_hops > 0;
            if let Some(inter) =
                common::pick_live_intermediate(router, src_group, dst_group, own_global_only, rng)
            {
                let port = minimal_output_to_router(topo, router.id(), inter);
                return Decision {
                    output_port: port,
                    output_vc: vc_for_next_hop(packet, port.class(&topo.layout()), router.config()),
                    kind: DecisionKind::NonminimalGlobal,
                    commitment: Commitment::RecommitIntermediate { router: inter },
                };
            }
            // No live replacement right now. Skipping the waypoint before
            // the global hop could require a second pre-global local hop
            // (a VC-ladder violation), so while a live escape exists the
            // packet waits on the dead continuation and re-decides next
            // cycle (the bounded draw can miss it). With no live,
            // view-viable escape at all — churn can keep links down
            // through the drain window — the packet is unroutable:
            // discard it, with exact conservation through the
            // dropped-on-fault counters.
            if !own_global_only || common::any_live_global_escape(router, dst_group) {
                return stalled;
            }
            return Decision::discard();
        }
        // past the first global hop: skip the waypoint and head minimally
        // to the destination
        let dst_router = topo.node_router(packet.dst);
        if dst_router == router.id() {
            let mut d = Decision::ejection(topo.node_port(packet.dst));
            d.commitment = Commitment::AbandonIntermediate;
            return d;
        }
        let port = minimal_output_to_router(topo, router.id(), dst_router);
        if !router.link_is_up(port) {
            // the skip path is dead too: any other route would need hops
            // the VC ladder cannot carry, so the packet is unroutable
            return Decision::discard();
        }
        Decision {
            output_port: port,
            output_vc: vc_for_next_hop(packet, port.class(&topo.layout()), router.config()),
            kind: DecisionKind::Continuation,
            commitment: Commitment::AbandonIntermediate,
        }
    }

    fn route_to_destination(
        &self,
        router: &Router,
        input_port: Port,
        packet: &Packet,
        dst_router: RouterId,
        rng: &mut DeterministicRng,
    ) -> Decision {
        debug_assert_ne!(
            dst_router,
            router.id(),
            "ejection is handled by the objective"
        );
        match self.kind {
            RoutingKind::Minimal => oblivious::minimal_decision(router, packet),
            RoutingKind::Valiant => {
                oblivious::valiant_decision(&self.config, router, input_port, packet, rng)
            }
            RoutingKind::PiggyBacking => {
                piggyback::decide(&self.config, router, input_port, packet, rng)
            }
            RoutingKind::Olm | RoutingKind::Base | RoutingKind::Hybrid | RoutingKind::Ectn => {
                adaptive::decide(self.kind, &self.config, router, input_port, packet, rng)
            }
        }
    }
}
