//! In-transit adaptive mechanisms: OLM (credit-based baseline) and the
//! paper's Base, Hybrid and ECtN (contention-based).
//!
//! All four share the same misrouting *policy* (where nonminimal paths may be
//! taken, which candidates are considered, how deadlock is avoided); they
//! differ only in the *trigger* that decides when to leave the minimal path
//! and in how candidates are filtered:
//!
//! | mechanism | global misroute trigger | candidate filter |
//! |-----------|------------------------|------------------|
//! | OLM       | occupancy(candidate) ≤ 50 % × occupancy(minimal) | same comparison |
//! | Base      | counter(minimal) > th | counter(candidate) < th |
//! | Hybrid    | Base rule (th+1) **or** OLM rule (35 %) | per the rule that fired |
//! | ECtN      | at injection: combined(minimal link) > th_combined; otherwise Base | combined(candidate) < th_combined / Base |
//!
//! Local misrouting (in the intermediate and destination groups) uses the
//! same trigger family against local output ports.

use df_engine::DeterministicRng;
use df_model::Packet;
use df_router::Router;
use df_topology::{GroupId, Port, PortClass, Topology};

use crate::algorithms::common;
use crate::candidates::{global_candidates, local_candidates, GlobalCandidate, LocalCandidate};
use crate::config::RoutingConfig;
use crate::decision::{Commitment, Decision, DecisionKind};
use crate::kind::RoutingKind;
use crate::minimal::minimal_output;
use crate::trigger::{contention_allows_candidate, contention_exceeds, credit_comparison};
use crate::vcmap::{global_misroute_fits, local_detour_fits, vc_for_next_hop};

/// Whether a nonminimal global candidate is viable according to the
/// router's (possibly stale) gateway-liveness view: the candidate link of
/// the current group is up, and — when the candidate diverts through an
/// intermediate group — so is that group's unique onward link towards the
/// destination group. Always true on a pristine (all-up) view, which is
/// what mechanisms without a dissemination channel hold, so Base/OLM keep
/// the PR-4 discover-at-gateway behaviour and healthy runs take the O(1)
/// fast path.
fn candidate_viable_by_view(
    router: &Router,
    my_group: GroupId,
    cand: &GlobalCandidate,
    dst_group: GroupId,
) -> bool {
    let view = router.link_view();
    if view.all_up() {
        return true;
    }
    let topo = router.topology();
    if !view.link_up(my_group, cand.link) {
        return false;
    }
    match topo.global_link_target_group(my_group, cand.link) {
        Some(target) if target != dst_group => {
            view.link_up(target, topo.group_link_to(target, dst_group))
        }
        _ => true,
    }
}

/// The in-transit adaptive decision for OLM / Base / Hybrid / ECtN.
pub fn decide(
    kind: RoutingKind,
    config: &RoutingConfig,
    router: &Router,
    input_port: Port,
    packet: &Packet,
    rng: &mut DeterministicRng,
) -> Decision {
    let topo = router.topology();
    let layout = topo.layout();
    let current = router.id();
    let my_group = topo.router_group(current);
    let src_group = topo.node_group(packet.src);
    let dst_group = topo.node_group(packet.dst);
    let min_out = minimal_output(topo, current, packet.dst);
    let min_class = min_out.class(&layout);
    let net = router.config();
    // Fault routing: a dead minimal output lifts the already-misrouted veto
    // below — the misroute budget is counted in *hops taken* (global_hops),
    // not intents, so a packet whose commitment was abandoned at a dead
    // gateway may select a replacement. Always false on a healthy network.
    let min_dead = router.any_link_down() && !router.link_is_up(min_out);

    // ---------------- global misrouting ----------------
    let may_misroute_globally = dst_group != my_group
        && my_group == src_group
        && (!packet.routing.globally_misrouted() || min_dead)
        && global_misroute_fits(packet, net)
        && (packet.hops() == 0
            || (config.allow_global_misroute_after_hop
                && packet.routing.global_hops == 0
                && packet.routing.local_hops <= 1));
    if may_misroute_globally {
        if let Some(cand) = pick_global_candidate(
            kind, config, router, input_port, packet, min_out, dst_group, rng,
        ) {
            let first_class = cand.first_hop.class(&layout);
            return Decision {
                output_port: cand.first_hop,
                output_vc: vc_for_next_hop(packet, first_class, net),
                kind: DecisionKind::NonminimalGlobal,
                commitment: Commitment::NonminimalGlobal {
                    gateway: cand.gateway,
                    port: cand.gateway_port,
                },
            };
        }
    }

    // ---------------- local misrouting ----------------
    let remaining_locals_after_detour: u8 = if my_group == dst_group { 1 } else { 2 };
    let may_misroute_locally = config.allow_local_misroute
        && min_class == PortClass::Local
        && my_group != src_group
        && packet.routing.local_misroute_allowed_in(my_group)
        && local_detour_fits(packet, remaining_locals_after_detour, net);
    if may_misroute_locally {
        if let Some(cand) = pick_local_candidate(kind, config, router, packet, min_out, rng) {
            return Decision {
                output_port: cand.port,
                output_vc: vc_for_next_hop(packet, PortClass::Local, net),
                kind: DecisionKind::NonminimalLocal,
                commitment: Commitment::LocalDetour {
                    router: cand.router,
                },
            };
        }
    }

    // ---------------- fault: unroutable packets ----------------
    // The minimal continuation is dead and neither misroute family produced
    // an escape. If at least one policy-legal alternative is merely
    // *congested* (a live candidate exists), keep requesting the minimal
    // port — the allocator refuses dead ports, so the packet waits and the
    // decision is re-evaluated next cycle. If no live alternative can ever
    // exist (e.g. a globally-misrouted packet whose unique onward global
    // link died — any other path would need a third global hop, which the
    // VC ladder cannot carry), the packet is unroutable: discard it so the
    // network stays live, with exact conservation through the
    // dropped-on-fault counters.
    if min_dead {
        let any_live_global = may_misroute_globally && {
            let min_link = topo.group_link_to(my_group, dst_group);
            let own_only = packet.routing.local_hops > 0;
            global_candidates(topo, current, Some(min_link), own_only)
                .iter()
                .any(|c| {
                    router.link_is_up(c.first_hop)
                        && candidate_viable_by_view(router, my_group, c, dst_group)
                })
        };
        let any_live_local = may_misroute_locally && {
            let min_target = topo.local_neighbor(current, min_out.class_offset(&layout));
            local_candidates(topo, current, Some(min_target))
                .iter()
                .any(|c| router.link_is_up(c.port))
        };
        if !any_live_global && !any_live_local {
            return Decision::discard();
        }
    }

    // ---------------- default: minimal ----------------
    Decision::minimal(min_out, vc_for_next_hop(packet, min_class, net))
}

/// Select a nonminimal global link, if the mechanism's trigger fires and a
/// candidate passes its filter.
#[allow(clippy::too_many_arguments)]
fn pick_global_candidate(
    kind: RoutingKind,
    config: &RoutingConfig,
    router: &Router,
    input_port: Port,
    packet: &Packet,
    min_out: Port,
    dst_group: df_topology::GroupId,
    rng: &mut DeterministicRng,
) -> Option<GlobalCandidate> {
    let topo = router.topology();
    let layout = topo.layout();
    let my_group = topo.router_group(router.id());
    let min_link = topo.group_link_to(my_group, dst_group);
    let size = packet.size_phits;
    let vc_for =
        |port: Port, pkt: &Packet| vc_for_next_hop(pkt, port.class(&layout), router.config());
    // After the first local hop only the current router's own global links
    // are eligible (the PAR/OLM rule): taking a *second* local hop before the
    // first global hop would break the monotonic VC ordering that guarantees
    // deadlock freedom.
    let own_only_for_policy = packet.routing.local_hops > 0;
    // A failed minimal link is treated as infinitely contended: it fires
    // every misroute trigger, and dead candidates are filtered out. For the
    // mechanisms with a link-state view (ECtN, and PB on its own path) a
    // minimal link the *view* marks dead fires the triggers too, even when
    // the first hop towards its gateway is a healthy local link — that is
    // how source routers stop targeting dead gateway groups. In a healthy
    // network both terms are false and every filter below reduces to its
    // original form.
    let min_dead = !router.link_is_up(min_out) || router.link_view().marks_down(my_group, min_link);
    let view_ok = |c: &GlobalCandidate| candidate_viable_by_view(router, my_group, c, dst_group);

    // ECtN: at injection, use the combined counters over the router's own
    // global links.
    if kind == RoutingKind::Ectn
        && input_port.class(&layout) == PortClass::Terminal
        && packet.hops() == 0
    {
        let combined_min = router.ectn().combined(min_link);
        if min_dead || contention_exceeds(combined_min, config.ectn_combined_threshold) {
            let cands = global_candidates(topo, router.id(), Some(min_link), true);
            let eligible: Vec<GlobalCandidate> = cands
                .into_iter()
                .filter(|c| {
                    contention_allows_candidate(
                        router.ectn().combined(c.link),
                        config.ectn_combined_threshold,
                    ) && router.link_is_up(c.first_hop)
                        && view_ok(c)
                        && router.output_can_accept(c.first_hop, vc_for(c.first_hop, packet), size)
                })
                .collect();
            if let Some(c) = common::pick_random(&eligible, rng) {
                return Some(*c);
            }
            // fall through to the local-counter (Base) logic below
        }
    }

    match kind {
        RoutingKind::Base | RoutingKind::Ectn => {
            let th = config.contention_threshold;
            if !min_dead && !contention_exceeds(router.contention().get(min_out), th) {
                return None;
            }
            let cands = global_candidates(topo, router.id(), Some(min_link), own_only_for_policy);
            let eligible: Vec<GlobalCandidate> = cands
                .into_iter()
                .filter(|c| {
                    contention_allows_candidate(router.contention().get(c.first_hop), th)
                        && router.link_is_up(c.first_hop)
                        && view_ok(c)
                        && router.output_can_accept(c.first_hop, vc_for(c.first_hop, packet), size)
                })
                .collect();
            common::pick_random(&eligible, rng).copied()
        }
        RoutingKind::Olm => credit_global_candidate(
            config.olm_congestion_fraction,
            config,
            router,
            packet,
            min_out,
            min_link,
            own_only_for_policy,
            rng,
        ),
        RoutingKind::Hybrid => {
            // contention rule first (with Hybrid's own, higher threshold)
            let th = config.hybrid_contention_threshold;
            if min_dead || contention_exceeds(router.contention().get(min_out), th) {
                let cands =
                    global_candidates(topo, router.id(), Some(min_link), own_only_for_policy);
                let eligible: Vec<GlobalCandidate> = cands
                    .into_iter()
                    .filter(|c| {
                        contention_allows_candidate(router.contention().get(c.first_hop), th)
                            && router.link_is_up(c.first_hop)
                            && view_ok(c)
                            && router.output_can_accept(
                                c.first_hop,
                                vc_for(c.first_hop, packet),
                                size,
                            )
                    })
                    .collect();
                if let Some(c) = common::pick_random(&eligible, rng) {
                    return Some(*c);
                }
            }
            // otherwise the credit rule may still divert the packet
            credit_global_candidate(
                config.hybrid_congestion_fraction,
                config,
                router,
                packet,
                min_out,
                min_link,
                own_only_for_policy,
                rng,
            )
        }
        _ => None,
    }
}

/// OLM-style credit comparison over the global candidates.
#[allow(clippy::too_many_arguments)]
fn credit_global_candidate(
    fraction: f64,
    config: &RoutingConfig,
    router: &Router,
    packet: &Packet,
    min_out: Port,
    min_link: u32,
    own_links_only: bool,
    rng: &mut DeterministicRng,
) -> Option<GlobalCandidate> {
    let topo = router.topology();
    let layout = topo.layout();
    let size = packet.size_phits;
    let q_min = common::output_occupancy(router, min_out);
    let min_required = config.credit_trigger_min_packets * size;
    // a dead (locally or per the link-state view) minimal output fires the
    // credit trigger unconditionally
    let my_group = topo.router_group(router.id());
    let min_dead = !router.link_is_up(min_out) || router.link_view().marks_down(my_group, min_link);
    let dst_group = topo.node_group(packet.dst);
    let cands = global_candidates(topo, router.id(), Some(min_link), own_links_only);
    let eligible: Vec<GlobalCandidate> = cands
        .into_iter()
        .filter(|c| {
            let q_cand = common::output_occupancy(router, c.first_hop);
            (min_dead || credit_comparison(q_min, q_cand, fraction, min_required))
                && router.link_is_up(c.first_hop)
                && candidate_viable_by_view(router, my_group, c, dst_group)
                && router.output_can_accept(
                    c.first_hop,
                    vc_for_next_hop(packet, c.first_hop.class(&layout), router.config()),
                    size,
                )
        })
        .collect();
    common::pick_random(&eligible, rng).copied()
}

/// Fault re-commit for a packet whose committed nonminimal gateway link
/// died: drop the commitment and re-run the mechanism's candidate
/// *selection* with the dead option filtered. The misroute trigger is
/// treated as already fired — the packet committed to a nonminimal path
/// once; its option dying does not un-fire that decision — so only the
/// per-candidate filters run (liveness, link-state view, the mechanism's
/// candidate-side contention cap, downstream space).
///
/// Deadlock freedom: the packet has taken no global hop yet
/// (`global_hops == 0` while a nonminimal-global commitment is pending), so
/// the re-committed path re-enters the escape-VC ladder at exactly the rung
/// the original commitment occupied — `G0` directly when the packet already
/// spent its single pre-global local hop (the own-links-only restriction
/// enforces this), or `L0 → G0` when it has not. No VC is ever revisited,
/// so the channel dependency graph stays acyclic. The minimal fallback
/// obeys the same rule: it is taken only when it needs no second pre-global
/// local hop.
///
/// `stalled` is the continuation the caller would otherwise have issued;
/// it is returned when live-but-congested alternatives exist, so the packet
/// waits and re-decides next cycle. A packet with no live, view-viable
/// option at all is discarded as unroutable.
#[allow(clippy::too_many_arguments)]
pub fn recommit_global(
    kind: RoutingKind,
    config: &RoutingConfig,
    router: &Router,
    packet: &Packet,
    committed: (df_topology::RouterId, Port),
    stalled: Decision,
    rng: &mut DeterministicRng,
) -> Decision {
    debug_assert_eq!(
        packet.routing.global_hops, 0,
        "a pending nonminimal-global commitment implies no global hop yet"
    );
    let topo = router.topology();
    let layout = topo.layout();
    let current = router.id();
    let my_group = topo.router_group(current);
    let dst_group = topo.node_group(packet.dst);
    let net = router.config();
    let min_out = minimal_output(topo, current, packet.dst);
    let min_class = min_out.class(&layout);
    let min_link = topo.group_link_to(my_group, dst_group);
    let own_only = packet.routing.local_hops > 0;
    let size = packet.size_phits;

    // the replacement candidates: everything the original selection could
    // have chosen, minus the dead option and anything else dead — locally
    // or per the link-state view
    let viable: Vec<GlobalCandidate> = if global_misroute_fits(packet, net) {
        global_candidates(topo, current, Some(min_link), own_only)
            .into_iter()
            .filter(|c| {
                (c.gateway, c.gateway_port) != committed
                    && router.link_is_up(c.first_hop)
                    && candidate_viable_by_view(router, my_group, c, dst_group)
            })
            .collect()
    } else {
        Vec::new()
    };

    // mechanism's candidate-side cap (Base/ECtN/Hybrid contention; OLM has
    // none beyond liveness), plus downstream space
    let th = match kind {
        RoutingKind::Hybrid => Some(config.hybrid_contention_threshold),
        RoutingKind::Base | RoutingKind::Ectn => Some(config.contention_threshold),
        _ => None,
    };
    let eligible: Vec<GlobalCandidate> = viable
        .iter()
        .filter(|c| {
            th.is_none_or(|th| {
                contention_allows_candidate(router.contention().get(c.first_hop), th)
            }) && router.output_can_accept(
                c.first_hop,
                vc_for_next_hop(packet, c.first_hop.class(&layout), net),
                size,
            )
        })
        .copied()
        .collect();
    if let Some(cand) = common::pick_random(&eligible, rng) {
        return Decision {
            output_port: cand.first_hop,
            output_vc: vc_for_next_hop(packet, cand.first_hop.class(&layout), net),
            kind: DecisionKind::NonminimalGlobal,
            commitment: Commitment::RecommitGlobal {
                gateway: cand.gateway,
                port: cand.gateway_port,
            },
        };
    }

    // minimal fallback — only when VC-feasible: a packet that already spent
    // its pre-global local hop may not take another one, so minimal is an
    // option only from the minimal gateway itself (or before any hop)
    let minimal_feasible = packet.routing.local_hops == 0 || min_class == PortClass::Global;
    let minimal_usable = minimal_feasible
        && router.link_is_up(min_out)
        && !router.link_view().marks_down(my_group, min_link);
    if minimal_usable {
        return Decision {
            output_port: min_out,
            output_vc: vc_for_next_hop(packet, min_class, net),
            kind: DecisionKind::Continuation,
            commitment: Commitment::AbandonNonminimal,
        };
    }

    // live candidates exist but are congested right now: wait on the
    // stalled continuation and re-decide next cycle; with no live,
    // view-viable option at all the packet is unroutable
    if !viable.is_empty() {
        stalled
    } else {
        Decision::discard()
    }
}

/// Select a local detour, if the mechanism's trigger fires.
fn pick_local_candidate(
    kind: RoutingKind,
    config: &RoutingConfig,
    router: &Router,
    packet: &Packet,
    min_out: Port,
    rng: &mut DeterministicRng,
) -> Option<LocalCandidate> {
    let topo = router.topology();
    let layout = topo.layout();
    let size = packet.size_phits;
    // the router the minimal local hop would reach — excluded from detours
    let min_target = topo.local_neighbor(router.id(), min_out.class_offset(&layout));
    let vc = vc_for_next_hop(packet, PortClass::Local, router.config());
    // a failed minimal local link fires the detour triggers unconditionally
    let min_dead = !router.link_is_up(min_out);

    match kind {
        RoutingKind::Base | RoutingKind::Ectn => {
            let th = config.contention_threshold;
            if !min_dead && !contention_exceeds(router.contention().get(min_out), th) {
                return None;
            }
            let eligible: Vec<LocalCandidate> =
                local_candidates(topo, router.id(), Some(min_target))
                    .into_iter()
                    .filter(|c| {
                        contention_allows_candidate(router.contention().get(c.port), th)
                            && router.link_is_up(c.port)
                            && router.output_can_accept(c.port, vc, size)
                    })
                    .collect();
            common::pick_random(&eligible, rng).copied()
        }
        RoutingKind::Olm | RoutingKind::Hybrid => {
            let fraction = if kind == RoutingKind::Olm {
                config.olm_congestion_fraction
            } else {
                config.hybrid_congestion_fraction
            };
            // Hybrid also honours the contention rule for local detours
            if kind == RoutingKind::Hybrid {
                let th = config.hybrid_contention_threshold;
                if min_dead || contention_exceeds(router.contention().get(min_out), th) {
                    let eligible: Vec<LocalCandidate> =
                        local_candidates(topo, router.id(), Some(min_target))
                            .into_iter()
                            .filter(|c| {
                                contention_allows_candidate(router.contention().get(c.port), th)
                                    && router.link_is_up(c.port)
                                    && router.output_can_accept(c.port, vc, size)
                            })
                            .collect();
                    if let Some(c) = common::pick_random(&eligible, rng) {
                        return Some(*c);
                    }
                }
            }
            let q_min = common::output_occupancy(router, min_out);
            let min_required = config.credit_trigger_min_packets * size;
            let eligible: Vec<LocalCandidate> =
                local_candidates(topo, router.id(), Some(min_target))
                    .into_iter()
                    .filter(|c| {
                        let q_cand = common::output_occupancy(router, c.port);
                        (min_dead || credit_comparison(q_min, q_cand, fraction, min_required))
                            && router.link_is_up(c.port)
                            && router.output_can_accept(c.port, vc, size)
                    })
                    .collect();
            common::pick_random(&eligible, rng).copied()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::{NetworkConfig, PacketId, VcId};
    use df_topology::{Dragonfly, DragonflyParams, GroupId, NodeId, RouterId};

    fn router(id: u32) -> Router {
        let topo = Dragonfly::new(DragonflyParams::small());
        Router::new(RouterId(id), topo, NetworkConfig::fast_test())
    }

    fn packet(src: u32, dst: u32) -> Packet {
        Packet::new(PacketId(0), NodeId(src), NodeId(dst), 8, 0)
    }

    fn config_small() -> RoutingConfig {
        // threshold 3, calibrated for the small network used in these tests
        RoutingConfig::default().with_contention_threshold(3)
    }

    fn rng() -> DeterministicRng {
        DeterministicRng::new(99)
    }

    #[test]
    fn base_routes_minimally_without_contention() {
        let r = router(0);
        let p = packet(0, 40);
        let d = decide(
            RoutingKind::Base,
            &config_small(),
            &r,
            Port(0),
            &p,
            &mut rng(),
        );
        assert_eq!(d.kind, DecisionKind::Minimal);
        assert_eq!(
            d.output_port,
            minimal_output(r.topology(), r.id(), NodeId(40))
        );
    }

    #[test]
    fn base_misroutes_when_the_minimal_counter_exceeds_the_threshold() {
        let mut r = router(0);
        let p = packet(0, 40);
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
        // simulate 4 head packets demanding the minimal output (> th = 3):
        // register them through input VCs as the simulator would
        let mut queued = 0;
        'fill: for port in 0..r.num_ports() as u32 {
            let class = Port(port).class(r.topology().params());
            if class == PortClass::Global {
                continue; // keep it simple: injection and local inputs
            }
            for vc in 0..r.input(Port(port)).num_vcs() {
                r.receive_packet(Port(port), VcId(vc as u8), packet(0, 40));
                r.register_head(Port(port), VcId(vc as u8), min_out, None);
                queued += 1;
                if queued > 3 {
                    break 'fill;
                }
            }
        }
        assert!(r.contention().get(min_out) > cfg.contention_threshold);
        let d = decide(RoutingKind::Base, &cfg, &r, Port(0), &p, &mut rng());
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
        assert_ne!(d.output_port, min_out, "must leave the contended port");
        match d.commitment {
            Commitment::NonminimalGlobal { gateway, port } => {
                // the committed link must not lead to the destination group
                let topo = r.topology();
                let j = topo.global_link_index(gateway, port.class_offset(topo.params()));
                let target = topo
                    .global_link_target_group(GroupId(0), j)
                    .expect("candidate link is wired");
                assert_ne!(target, topo.node_group(NodeId(40)));
                assert_ne!(target, GroupId(0));
            }
            other => panic!("expected a nonminimal-global commitment, got {other:?}"),
        }
    }

    #[test]
    fn base_does_not_misroute_packets_that_already_misrouted() {
        let mut r = router(0);
        let mut p = packet(0, 40);
        p.routing.flags.global = true; // already went nonminimal
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
        // heavy synthetic contention on the minimal output
        for _ in 0..(cfg.contention_threshold + 3) {
            r.contention_mut().increment(min_out);
        }
        let d = decide(RoutingKind::Base, &cfg, &r, Port(2), &p, &mut rng());
        assert_ne!(d.kind, DecisionKind::NonminimalGlobal);
    }

    #[test]
    fn olm_misroutes_on_occupancy_imbalance() {
        let mut r = router(0);
        let p = packet(0, 40);
        let cfg = RoutingConfig::default();
        let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
        // make the minimal output look congested by staging packets on it
        for _ in 0..3 {
            if r.output(min_out).can_accept(VcId(0), 8) {
                r.output_mut(min_out).accept(packet(0, 40), VcId(0), 0);
            }
        }
        assert!(common::output_occupancy(&r, min_out) >= 8);
        let d = decide(RoutingKind::Olm, &cfg, &r, Port(0), &p, &mut rng());
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
    }

    #[test]
    fn olm_stays_minimal_when_everything_is_empty() {
        let r = router(0);
        let p = packet(0, 40);
        let d = decide(
            RoutingKind::Olm,
            &RoutingConfig::default(),
            &r,
            Port(0),
            &p,
            &mut rng(),
        );
        assert_eq!(d.kind, DecisionKind::Minimal);
    }

    #[test]
    fn hybrid_fires_on_either_trigger() {
        // credit trigger only (counters stay low)
        let mut r = router(0);
        let p = packet(0, 40);
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
        for _ in 0..3 {
            if r.output(min_out).can_accept(VcId(0), 8) {
                r.output_mut(min_out).accept(packet(0, 40), VcId(0), 0);
            }
        }
        let d = decide(RoutingKind::Hybrid, &cfg, &r, Port(0), &p, &mut rng());
        assert_eq!(
            d.kind,
            DecisionKind::NonminimalGlobal,
            "credit rule should fire"
        );

        // contention trigger only (outputs empty, counters high)
        let mut r2 = router(0);
        let min_out2 = minimal_output(r2.topology(), r2.id(), NodeId(40));
        let mut registered = 0;
        'outer: for port in 0..r2.num_ports() as u32 {
            if Port(port).class(r2.topology().params()) == PortClass::Global {
                continue;
            }
            for vc in 0..r2.input(Port(port)).num_vcs() {
                r2.receive_packet(Port(port), VcId(vc as u8), packet(0, 40));
                r2.register_head(Port(port), VcId(vc as u8), min_out2, None);
                registered += 1;
                if registered > cfg.hybrid_contention_threshold {
                    break 'outer;
                }
            }
        }
        let d2 = decide(RoutingKind::Hybrid, &cfg, &r2, Port(0), &p, &mut rng());
        assert_eq!(
            d2.kind,
            DecisionKind::NonminimalGlobal,
            "contention rule should fire"
        );
    }

    #[test]
    fn ectn_misroutes_at_injection_from_combined_counters() {
        let mut r = router(0);
        let p = packet(0, 40);
        let cfg = config_small().with_ectn_combined_threshold(5);
        let topo = *r.topology();
        let dst_group = topo.node_group(NodeId(40));
        let min_link = topo.group_link_to(GroupId(0), dst_group);
        // install a combined array showing heavy contention on the minimal link
        let mut combined = vec![0u32; topo.params().global_links_per_group() as usize];
        combined[min_link as usize] = 9;
        r.ectn_mut().install_combined(combined);
        let d = decide(RoutingKind::Ectn, &cfg, &r, Port(0), &p, &mut rng());
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
        // ECtN at injection restricts candidates to the current router's own
        // global links
        assert_eq!(
            d.output_port.class(topo.params()),
            PortClass::Global,
            "injection misroute must use an own global link"
        );
        match d.commitment {
            Commitment::NonminimalGlobal { gateway, .. } => assert_eq!(gateway, r.id()),
            other => panic!("unexpected commitment {other:?}"),
        }
    }

    #[test]
    fn ectn_without_combined_contention_behaves_like_base() {
        let r = router(0);
        let p = packet(0, 40);
        let cfg = config_small();
        let d = decide(RoutingKind::Ectn, &cfg, &r, Port(0), &p, &mut rng());
        assert_eq!(d.kind, DecisionKind::Minimal);
    }

    #[test]
    fn local_misroute_in_destination_group() {
        // a packet that already crossed its global hop and now faces a
        // contended local port in the destination group
        let topo = Dragonfly::new(DragonflyParams::small());
        let dst = NodeId(70); // group 8
        let dst_router = topo.node_router(dst);
        let dst_group = topo.router_group(dst_router);
        // pick a router in the destination group different from dst_router
        let entry = topo
            .routers_in_group(dst_group)
            .find(|&r| r != dst_router)
            .unwrap();
        let mut r = Router::new(entry, topo, NetworkConfig::fast_test());
        let mut p = packet(0, 70);
        p.routing.local_hops = 1;
        p.routing.global_hops = 1;
        p.routing.flags.global = false;
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), dst);
        assert_eq!(min_out.class(r.topology().params()), PortClass::Local);
        // build contention on the minimal local port
        let mut registered = 0;
        'outer: for port in 0..r.num_ports() as u32 {
            if Port(port).class(r.topology().params()) == PortClass::Global {
                continue;
            }
            for vc in 0..r.input(Port(port)).num_vcs() {
                r.receive_packet(Port(port), VcId(vc as u8), packet(0, 70));
                r.register_head(Port(port), VcId(vc as u8), min_out, None);
                registered += 1;
                if registered > cfg.contention_threshold {
                    break 'outer;
                }
            }
        }
        let d = decide(RoutingKind::Base, &cfg, &r, Port(5), &p, &mut rng());
        assert_eq!(d.kind, DecisionKind::NonminimalLocal);
        assert!(matches!(d.commitment, Commitment::LocalDetour { .. }));
        assert_ne!(d.output_port, min_out);
    }

    #[test]
    fn local_misroute_respects_one_per_group_rule() {
        let topo = Dragonfly::new(DragonflyParams::small());
        let dst = NodeId(70);
        let dst_router = topo.node_router(dst);
        let dst_group = topo.router_group(dst_router);
        let entry = topo
            .routers_in_group(dst_group)
            .find(|&r| r != dst_router)
            .unwrap();
        let mut r = Router::new(entry, topo, NetworkConfig::fast_test());
        let mut p = packet(0, 70);
        p.routing.local_hops = 2;
        p.routing.global_hops = 1;
        p.routing.local_misrouted_in = Some(dst_group); // already detoured here
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), dst);
        let mut registered = 0;
        'outer: for port in 0..r.num_ports() as u32 {
            if Port(port).class(r.topology().params()) == PortClass::Global {
                continue;
            }
            for vc in 0..r.input(Port(port)).num_vcs() {
                r.receive_packet(Port(port), VcId(vc as u8), packet(0, 70));
                r.register_head(Port(port), VcId(vc as u8), min_out, None);
                registered += 1;
                if registered > cfg.contention_threshold {
                    break 'outer;
                }
            }
        }
        let d = decide(RoutingKind::Base, &cfg, &r, Port(5), &p, &mut rng());
        assert_ne!(
            d.kind,
            DecisionKind::NonminimalLocal,
            "only one local detour per group is allowed"
        );
    }

    #[test]
    fn dead_minimal_link_fires_the_misroute_trigger_without_contention() {
        // no contention anywhere, but the minimal output's link is down:
        // every adaptive mechanism must immediately steer around it
        for kind in [
            RoutingKind::Base,
            RoutingKind::Ectn,
            RoutingKind::Olm,
            RoutingKind::Hybrid,
        ] {
            let mut r = router(0);
            let p = packet(0, 40);
            let cfg = config_small();
            let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
            r.set_link_up(min_out, false);
            let d = decide(kind, &cfg, &r, Port(0), &p, &mut rng());
            assert_eq!(
                d.kind,
                DecisionKind::NonminimalGlobal,
                "{kind:?} must misroute around a dead minimal link"
            );
            assert_ne!(d.output_port, min_out);
            assert!(r.link_is_up(d.output_port), "the chosen port must be alive");
        }
    }

    #[test]
    fn dead_candidate_links_are_filtered_from_the_eligible_set() {
        let mut r = router(0);
        let p = packet(0, 40);
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
        // fail the minimal link AND every alternative except one local port
        let params = *r.topology().params();
        let mut kept = None;
        for port in 0..r.num_ports() as u32 {
            let port = Port(port);
            if port.class(&params) == PortClass::Terminal || port == min_out {
                continue;
            }
            if kept.is_none() && port.class(&params) == PortClass::Local {
                kept = Some(port);
                continue;
            }
            r.set_link_up(port, false);
        }
        r.set_link_up(min_out, false);
        let kept = kept.expect("one live local port");
        for _ in 0..50 {
            let d = decide(RoutingKind::Base, &cfg, &r, Port(0), &p, &mut rng());
            if d.kind == DecisionKind::NonminimalGlobal {
                assert_eq!(d.output_port, kept, "only the live candidate is eligible");
            }
        }
    }

    #[test]
    fn committed_gateway_with_a_dead_link_recommits_to_a_live_candidate() {
        // a packet committed to router 0's own global port 5, sitting at
        // router 0, when that link dies: the full decision path must replace
        // the commitment with a live candidate
        let mut r = router(0);
        let mut p = packet(0, 40); // destination group 5 (remote)
        let dead_port = df_topology::Port::global(r.topology().params(), 0);
        p.routing.commit_nonminimal_global(RouterId(0), dead_port);
        r.set_link_up(dead_port, false);
        let algo = crate::RoutingAlgorithm::new(RoutingKind::Base, config_small());
        let d = algo.decide(&r, Port(0), &p, &mut rng());
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
        match d.commitment {
            Commitment::RecommitGlobal { gateway, port } => {
                assert!(
                    (gateway, port) != (RouterId(0), dead_port),
                    "must not re-commit to the dead link"
                );
            }
            other => panic!("expected a re-commit, got {other:?}"),
        }
        assert!(r.link_is_up(d.output_port), "the first hop must be alive");
    }

    #[test]
    fn globally_misrouted_packet_with_dead_unique_continuation_is_discarded() {
        // the ADV-cut2 class: a packet that already took its nonminimal
        // global hop sits in an intermediate group whose unique onward
        // global link towards the destination group is dead — any other
        // path would need a third global hop, which the VC ladder cannot
        // carry, so the packet is unroutable
        let topo = Dragonfly::new(DragonflyParams::small());
        let dst = NodeId(40); // group 5
        let dst_group = topo.node_group(dst);
        // put the packet at the gateway of group 0 towards the destination
        // group, pretending it misrouted into group 0
        let (gw, gport) = topo.gateway_to(GroupId(0), dst_group);
        let mut r = Router::new(gw, topo, NetworkConfig::fast_test());
        let mut p = packet(70, 40); // source in another group
        p.routing.global_hops = 1;
        p.routing.local_hops = 1;
        p.routing.flags.global = true;
        r.set_link_up(gport, false);
        let d = decide(
            RoutingKind::Base,
            &config_small(),
            &r,
            Port(5),
            &p,
            &mut rng(),
        );
        assert_eq!(d.kind, DecisionKind::Discard);
        // with the link alive the same packet routes minimally
        r.set_link_up(gport, true);
        let d = decide(
            RoutingKind::Base,
            &config_small(),
            &r,
            Port(5),
            &p,
            &mut rng(),
        );
        assert_eq!(d.kind, DecisionKind::Minimal);
        assert_eq!(d.output_port, gport);
    }

    #[test]
    fn candidates_with_counters_over_threshold_are_filtered_out() {
        let mut r = router(0);
        let p = packet(0, 40);
        let cfg = config_small();
        let min_out = minimal_output(r.topology(), r.id(), NodeId(40));
        // contend the minimal output AND every alternative output
        for port in 0..r.num_ports() as u32 {
            let class = Port(port).class(r.topology().params());
            if class == PortClass::Terminal {
                continue;
            }
            for _ in 0..(cfg.contention_threshold + 1) {
                r.contention_mut().increment(Port(port));
            }
        }
        assert!(r.contention().get(min_out) > cfg.contention_threshold);
        let d = decide(RoutingKind::Base, &cfg, &r, Port(0), &p, &mut rng());
        // with every candidate saturated the packet must stay minimal
        assert_eq!(d.kind, DecisionKind::Minimal);
    }
}
