//! Oblivious mechanisms: MIN and VAL.

use df_engine::DeterministicRng;
use df_model::Packet;
use df_router::Router;
use df_topology::{Port, PortClass, Topology};

use crate::algorithms::common;
use crate::config::RoutingConfig;
use crate::decision::Decision;

/// MIN: always follow the hierarchical minimal path.
pub fn minimal_decision(router: &Router, packet: &Packet) -> Decision {
    common::minimal_decision(router, packet)
}

/// VAL: at the source router, commit to a uniformly random intermediate
/// router in a third group and route minimally to it, then minimally to the
/// destination (the continuation is handled by the packet's objective once
/// the commitment is applied). Falls back to minimal routing when no third
/// group exists.
pub fn valiant_decision(
    _config: &RoutingConfig,
    router: &Router,
    input_port: Port,
    packet: &Packet,
    rng: &mut DeterministicRng,
) -> Decision {
    let topo = router.topology();
    let at_source = packet.hops() == 0
        && input_port.class(&topo.layout()) == PortClass::Terminal
        && packet.routing.intermediate_router.is_none()
        && !packet.routing.globally_misrouted();
    if !at_source {
        return common::minimal_decision(router, packet);
    }
    let src_group = topo.node_group(packet.src);
    let dst_group = topo.node_group(packet.dst);
    // under faults, only reachable intermediates are drawn (identical RNG
    // sequence on a healthy network, where the gate below is never taken);
    // at the source (hops == 0) any first hop is ladder-legal
    let picked = if router.any_link_down() {
        common::pick_live_intermediate(router, src_group, dst_group, false, rng)
    } else {
        common::pick_intermediate_router(router, src_group, dst_group, rng)
    };
    match picked {
        Some(intermediate) if intermediate != router.id() => {
            common::valiant_first_hop(router, packet, intermediate, true)
        }
        _ => common::minimal_decision(router, packet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{Commitment, DecisionKind};
    use crate::minimal::minimal_output;
    use df_model::{NetworkConfig, Packet, PacketId};
    use df_topology::{Dragonfly, DragonflyParams, NodeId, RouterId};

    fn router(id: u32) -> Router {
        let topo = Dragonfly::new(DragonflyParams::small());
        Router::new(RouterId(id), topo, NetworkConfig::fast_test())
    }

    fn packet(src: u32, dst: u32) -> Packet {
        Packet::new(PacketId(0), NodeId(src), NodeId(dst), 8, 0)
    }

    #[test]
    fn min_always_selects_the_minimal_output() {
        let r = router(0);
        for dst in [5u32, 20, 71] {
            let p = packet(0, dst);
            let d = minimal_decision(&r, &p);
            assert_eq!(
                d.output_port,
                minimal_output(r.topology(), r.id(), NodeId(dst))
            );
            assert_eq!(d.kind, DecisionKind::Minimal);
            assert_eq!(d.commitment, Commitment::None);
        }
    }

    #[test]
    fn val_commits_an_intermediate_at_the_source() {
        let r = router(0);
        let p = packet(0, 40); // source node 0 attaches to router 0
        let mut rng = DeterministicRng::new(5);
        let d = valiant_decision(&RoutingConfig::default(), &r, Port(0), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
        match d.commitment {
            Commitment::Intermediate {
                router: inter,
                misroute,
            } => {
                assert!(misroute);
                let g = r.topology().router_group(inter);
                assert_ne!(g, r.topology().node_group(NodeId(0)));
                assert_ne!(g, r.topology().node_group(NodeId(40)));
            }
            other => panic!("expected intermediate, got {other:?}"),
        }
    }

    #[test]
    fn val_in_transit_is_minimal() {
        let r = router(10);
        let mut p = packet(0, 40);
        p.routing.local_hops = 1; // not at the source any more
        let mut rng = DeterministicRng::new(5);
        let d = valiant_decision(&RoutingConfig::default(), &r, Port(3), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::Minimal);
    }

    #[test]
    fn val_falls_back_to_minimal_without_a_third_group() {
        let topo = Dragonfly::new(DragonflyParams::new(2, 4, 2, 2).unwrap());
        let r = Router::new(RouterId(0), topo, NetworkConfig::fast_test());
        let p = packet(0, 10); // group 1 destination
        let mut rng = DeterministicRng::new(5);
        let d = valiant_decision(&RoutingConfig::default(), &r, Port(0), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::Minimal);
    }
}
