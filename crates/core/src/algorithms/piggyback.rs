//! PiggyBacking (PB): source-adaptive MIN/VAL selection.
//!
//! PB [Jiang et al., ISCA'09] takes its routing decision once, at the source
//! router, from two congestion signals:
//!
//! 1. the *saturation bit* of the minimal global link, computed by the link's
//!    owner from its credit occupancy and piggybacked to every router of the
//!    group (an intra-group ECN), and
//! 2. a UGAL-style comparison of (occupancy × hops) between the minimal and
//!    the Valiant candidate paths, observed at the source router's own output
//!    queues.
//!
//! If either signal favours the nonminimal path the packet is source-routed
//! through a random intermediate router, otherwise it stays minimal forever.

use df_engine::DeterministicRng;
use df_model::Packet;
use df_router::Router;
use df_topology::{GroupId, Port, PortClass, Topology};

use crate::algorithms::common;
use crate::config::RoutingConfig;
use crate::decision::Decision;
use crate::minimal::{minimal_hops_to_router, minimal_output, minimal_output_to_router};
use crate::trigger::{pb_link_saturated, ugal_prefers_valiant};
use crate::vcmap::global_misroute_fits;

/// The PB routing decision.
pub fn decide(
    config: &RoutingConfig,
    router: &Router,
    input_port: Port,
    packet: &Packet,
    rng: &mut DeterministicRng,
) -> Decision {
    let topo = router.topology();
    let at_source = packet.hops() == 0
        && input_port.class(&topo.layout()) == PortClass::Terminal
        && packet.routing.intermediate_router.is_none()
        && !packet.routing.globally_misrouted();
    if !at_source {
        // source routing: the decision was made at injection; follow minimal
        // (a committed Valiant path is handled by the packet objective).
        let d = common::minimal_decision(router, packet);
        if router.any_link_down() && !router.link_is_up(d.output_port) {
            return recommit_in_transit(router, packet, d, rng);
        }
        return d;
    }
    let src_group = topo.node_group(packet.src);
    let dst_group = topo.node_group(packet.dst);
    if src_group == dst_group {
        // PB never misroutes intra-group traffic, so a dead minimal local
        // link leaves no legal alternative at all
        return minimal_or_discard(router, packet, dst_group, false);
    }
    // candidate Valiant path; under faults the pick is filtered to
    // intermediates that are reachable and (per the piggybacked link-state
    // view) can still reach the destination group — on a healthy network
    // the filtered pick draws the identical RNG sequence
    let faulty = router.any_link_down() || !router.link_view().all_up();
    let picked = if faulty {
        // at the source (hops == 0 by the gate above): any first hop is
        // still ladder-legal
        common::pick_live_intermediate(router, src_group, dst_group, false, rng)
    } else {
        common::pick_intermediate_router(router, src_group, dst_group, rng)
    };
    let intermediate = match picked {
        Some(r) if r != router.id() => r,
        _ => return minimal_or_discard(router, packet, dst_group, true),
    };

    // signal 1: saturation of the minimal global link, from the group-shared
    // PB state
    let min_link = topo.group_link_to(src_group, dst_group);
    let min_link_saturated = router.pb().group_saturated(min_link);

    // signal 2: UGAL comparison at the source router's own outputs
    let dst_router = topo.node_router(packet.dst);
    let min_first_hop = minimal_output(topo, router.id(), packet.dst);
    let val_first_hop = minimal_output_to_router(topo, router.id(), intermediate);
    let q_min = common::output_occupancy(router, min_first_hop);
    let q_val = common::output_occupancy(router, val_first_hop);
    let h_min = minimal_hops_to_router(topo, router.id(), dst_router) + 1;
    let h_val = minimal_hops_to_router(topo, router.id(), intermediate)
        + minimal_hops_to_router(topo, intermediate, dst_router)
        + 1;
    let threshold_phits = config.pb_ugal_threshold_packets * packet.size_phits;
    let ugal_valiant = ugal_prefers_valiant(q_min, h_min, q_val, h_val, threshold_phits);

    // a failed minimal first hop — or a minimal gateway link the
    // piggybacked link-state view marks dead, even when the first local hop
    // towards it is healthy — forces the Valiant path (fault injection);
    // always false in a healthy network
    let min_dead =
        !router.link_is_up(min_first_hop) || router.link_view().marks_down(src_group, min_link);

    if (min_link_saturated || ugal_valiant || min_dead) && router.link_is_up(val_first_hop) {
        common::valiant_first_hop(router, packet, intermediate, true)
    } else {
        minimal_or_discard(router, packet, dst_group, true)
    }
}

/// The minimal decision, degraded to a discard when its output link is
/// dead and no Valiant escape can ever save the packet: either PB may not
/// misroute it at all (`valiant_legal` false — intra-group traffic) or no
/// live, view-viable escape exists
/// ([`common::any_live_global_escape`]). While an escape exists the dead
/// minimal decision is returned unchanged — the allocator refuses dead
/// ports, so the packet waits and the decision (with fresh intermediate
/// draws) is re-evaluated next cycle.
fn minimal_or_discard(
    router: &Router,
    packet: &Packet,
    dst_group: GroupId,
    valiant_legal: bool,
) -> Decision {
    let d = common::minimal_decision(router, packet);
    if router.any_link_down()
        && !router.link_is_up(d.output_port)
        && (!valiant_legal || !common::any_live_global_escape(router, dst_group))
    {
        return Decision::discard();
    }
    d
}

/// Fault re-commit for PB's in-transit continuations. PB is source-routed:
/// past injection a packet follows minimal forever — but under churn the
/// minimal continuation's link can die and *stay* dead, which used to
/// strand committed packets at the drain bound. Before the first global
/// hop the source decision is re-taken as a Valiant path, restricted to
/// the current router's own global first hops (the pre-global local hop is
/// spent; a second one would re-enter the VC ladder below the packet's
/// rung — the same rule `recommit_global` enforces). Past the first global
/// hop PB has no legal alternative — any detour would need hops the VC
/// ladder cannot carry — so the packet is unroutable and discarded, with
/// exact conservation through the dropped-on-fault counters.
fn recommit_in_transit(
    router: &Router,
    packet: &Packet,
    stalled: Decision,
    rng: &mut DeterministicRng,
) -> Decision {
    let topo = router.topology();
    let src_group = topo.node_group(packet.src);
    let dst_group = topo.node_group(packet.dst);
    if packet.routing.global_hops == 0
        && src_group != dst_group
        && !packet.routing.globally_misrouted()
        && global_misroute_fits(packet, router.config())
    {
        if let Some(inter) = common::pick_live_intermediate(router, src_group, dst_group, true, rng)
        {
            return common::valiant_first_hop(router, packet, inter, true);
        }
        // a live escape exists but the bounded draw missed it: wait on the
        // dead continuation and redraw next cycle
        if common::any_live_global_escape(router, dst_group) {
            return stalled;
        }
    }
    Decision::discard()
}

/// Recompute the saturation flags of this router's own global links from
/// their occupancy, per the PB rule. The simulator calls this every cycle for
/// every router when PB is active, then disseminates the flags inside each
/// group.
pub fn update_own_saturation(config: &RoutingConfig, router: &mut Router) {
    let topo = *router.topology();
    let layout = topo.layout();
    for k in 0..topo.own_globals(router.id()) {
        let port = Port::global(&layout, k);
        let fraction = router.output_congestion_fraction(port);
        let saturated = pb_link_saturated(fraction, config.pb_saturation_fraction);
        router.pb_mut().set_own_saturated(k, saturated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{Commitment, DecisionKind};
    use df_model::{NetworkConfig, PacketId, VcId};
    use df_topology::{Dragonfly, DragonflyParams, NodeId, RouterId};

    fn router(id: u32) -> Router {
        let topo = Dragonfly::new(DragonflyParams::small());
        Router::new(RouterId(id), topo, NetworkConfig::fast_test())
    }

    fn packet(src: u32, dst: u32) -> Packet {
        Packet::new(PacketId(0), NodeId(src), NodeId(dst), 8, 0)
    }

    #[test]
    fn uncongested_network_stays_minimal() {
        let r = router(0);
        let p = packet(0, 40);
        let mut rng = DeterministicRng::new(1);
        let d = decide(&RoutingConfig::default(), &r, Port(0), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::Minimal);
        assert_eq!(d.commitment, Commitment::None);
    }

    #[test]
    fn saturated_minimal_link_forces_valiant() {
        let mut r = router(0);
        let p = packet(0, 40);
        let topo = *r.topology();
        let src_group = topo.node_group(NodeId(0));
        let dst_group = topo.node_group(NodeId(40));
        let min_link = topo.group_link_to(src_group, dst_group);
        // mark that link saturated in the group-shared view
        let mut flags = vec![false; topo.params().global_links_per_group() as usize];
        flags[min_link as usize] = true;
        r.pb_mut().install_group(flags);
        let mut rng = DeterministicRng::new(1);
        let d = decide(&RoutingConfig::default(), &r, Port(0), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
        assert!(matches!(
            d.commitment,
            Commitment::Intermediate { misroute: true, .. }
        ));
    }

    #[test]
    fn congested_minimal_output_triggers_ugal_valiant() {
        let mut r = router(0);
        let p = packet(0, 40);
        let topo = *r.topology();
        // congest the minimal first-hop output by consuming its credits
        let min_out = minimal_output(&topo, r.id(), NodeId(40));
        let num_vcs = r.output(min_out).num_downstream_vcs();
        for vc in 0..num_vcs {
            let free = r.output(min_out).credits(VcId(vc as u8));
            // consume credits by staging packets until (nearly) exhausted
            let mut remaining = free;
            while remaining >= 8 && r.output(min_out).can_accept(VcId(vc as u8), 8) {
                let filler = packet(0, 40);
                r.output_mut(min_out).accept(filler, VcId(vc as u8), 0);
                remaining -= 8;
                // drain the output buffer so buffer space is not the limit
                let _ = r.output_mut(min_out).try_transmit(1_000);
            }
        }
        // The Valiant intermediate is drawn at random inside decide(); when
        // its first hop happens to share the congested minimal output, PB
        // correctly stays minimal. Sample several decisions and require the
        // large majority to go Valiant.
        let mut rng = DeterministicRng::new(1);
        let valiant = (0..20)
            .filter(|_| {
                decide(&RoutingConfig::default(), &r, Port(0), &p, &mut rng).kind
                    == DecisionKind::NonminimalGlobal
            })
            .count();
        assert!(
            valiant >= 12,
            "a heavily occupied minimal path must push PB to Valiant most of the time ({valiant}/20)"
        );
    }

    #[test]
    fn in_transit_pb_is_minimal() {
        let r = router(9);
        let mut p = packet(0, 40);
        p.routing.local_hops = 1;
        let mut rng = DeterministicRng::new(1);
        let d = decide(&RoutingConfig::default(), &r, Port(2), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::Minimal);
    }

    #[test]
    fn intra_group_traffic_is_minimal() {
        let r = router(0);
        let p = packet(0, 6); // destination in group 0
        let mut rng = DeterministicRng::new(1);
        let d = decide(&RoutingConfig::default(), &r, Port(0), &p, &mut rng);
        assert_eq!(d.kind, DecisionKind::Minimal);
    }

    #[test]
    fn saturation_update_reflects_occupancy() {
        let mut r = router(0);
        let config = RoutingConfig::default();
        update_own_saturation(&config, &mut r);
        assert!(!r.pb().own_saturated(0));
        // fill global port 0's credits beyond the saturation fraction
        let gport = Port::global(r.topology().params(), 0);
        let total =
            r.output(gport).total_credit_capacity() + r.output(gport).buffer_capacity_phits();
        let mut consumed = 0;
        'outer: for vc in 0..r.output(gport).num_downstream_vcs() {
            loop {
                if consumed as f64 <= 0.6 * total as f64
                    && r.output(gport).can_accept(VcId(vc as u8), 8)
                {
                    r.output_mut(gport).accept(packet(0, 40), VcId(vc as u8), 0);
                    let _ = r.output_mut(gport).try_transmit(10_000 + consumed as u64);
                    consumed += 8;
                } else if consumed as f64 > 0.6 * total as f64 {
                    break 'outer;
                } else {
                    break;
                }
            }
        }
        update_own_saturation(&config, &mut r);
        assert!(
            r.pb().own_saturated(0),
            "occupancy {consumed}/{total} should exceed the 50% saturation fraction"
        );
    }
}
