//! Helpers shared by every routing mechanism.

use df_engine::DeterministicRng;
use df_model::Packet;
use df_router::Router;
use df_topology::{GroupId, Port, RouterId, Topology};

use crate::decision::{Commitment, Decision, DecisionKind};
use crate::minimal::{minimal_output, minimal_output_to_router};
use crate::vcmap::vc_for_next_hop;

/// A continuation decision: follow the hierarchical minimal path towards
/// `target` (a router the packet is already committed to reach).
pub fn continuation_to_router(router: &Router, packet: &Packet, target: RouterId) -> Decision {
    let topo = router.topology();
    let port = minimal_output_to_router(topo, router.id(), target);
    Decision {
        output_port: port,
        output_vc: vc_for_next_hop(packet, port.class(&topo.layout()), router.config()),
        kind: DecisionKind::Continuation,
        commitment: Commitment::None,
    }
}

/// A plain minimal decision towards the packet's destination.
pub fn minimal_decision(router: &Router, packet: &Packet) -> Decision {
    let topo = router.topology();
    let port = minimal_output(topo, router.id(), packet.dst);
    Decision::minimal(
        port,
        vc_for_next_hop(packet, port.class(&topo.layout()), router.config()),
    )
}

/// Occupancy (in phits) of the path behind an output port, as seen through
/// credits: staged output-buffer phits plus estimated downstream occupancy.
/// This is the congestion signal used by the credit-based triggers.
pub fn output_occupancy(router: &Router, port: Port) -> u32 {
    let o = router.output(port);
    o.buffer_occupancy_phits() + o.downstream_occupancy_phits()
}

/// Pick a uniformly random element of a non-empty slice.
pub fn pick_random<'a, T>(items: &'a [T], rng: &mut DeterministicRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.index(items.len())])
    }
}

/// Pick a uniformly random intermediate router outside both `src_group` and
/// `dst_group` (the Valiant intermediate of VAL and of PB's nonminimal source
/// routes). Returns `None` when no third group exists.
pub fn pick_intermediate_router(
    router: &Router,
    src_group: GroupId,
    dst_group: GroupId,
    rng: &mut DeterministicRng,
) -> Option<RouterId> {
    let topo = router.topology();
    let groups = topo.num_groups();
    let excluded = if src_group == dst_group { 1 } else { 2 };
    if groups <= excluded {
        return None;
    }
    // draw a group uniformly among the eligible ones, then a router in it
    let eligible = groups - excluded;
    let mut pick = rng.below(eligible as u64) as u32;
    let mut chosen = None;
    for g in 0..groups {
        if g == src_group.0 || g == dst_group.0 {
            continue;
        }
        if pick == 0 {
            chosen = Some(GroupId(g));
            break;
        }
        pick -= 1;
    }
    let group = chosen?;
    let local_index = rng.below(topo.intermediates_per_group() as u64) as u32;
    Some(topo.router_at(group, local_index))
}

/// Fault-aware variant of [`pick_intermediate_router`]: draw intermediates
/// until one is reachable — the first hop towards it is up, and (for
/// mechanisms with a link-state view) the view marks both the
/// source-group link towards its group and its group's onward link towards
/// the destination group alive. Gives up after a bounded number of draws
/// (`None`), leaving the caller to fall back to minimal routing.
///
/// `global_first_hop_only` must be set when the packet has already taken
/// its single pre-global local hop: the replacement path may then only
/// start on one of the *current* router's own global ports — a second
/// pre-global local hop would re-enter the VC ladder below the rung the
/// packet occupies and break the deadlock-freedom argument (the same rule
/// `recommit_global` enforces through its own-links-only restriction).
///
/// On a healthy network the first draw always passes, so callers that gate
/// on `any_link_down() || !link_view().all_up()` consume the exact RNG
/// sequence of the unfiltered picker.
pub fn pick_live_intermediate(
    router: &Router,
    src_group: GroupId,
    dst_group: GroupId,
    global_first_hop_only: bool,
    rng: &mut DeterministicRng,
) -> Option<RouterId> {
    const MAX_DRAWS: u32 = 8;
    let topo = router.topology();
    let my_group = topo.router_group(router.id());
    let view = router.link_view();
    for _ in 0..MAX_DRAWS {
        let inter = pick_intermediate_router(router, src_group, dst_group, rng)?;
        if inter == router.id() {
            continue;
        }
        let first_hop = minimal_output_to_router(topo, router.id(), inter);
        if !router.link_is_up(first_hop) {
            continue;
        }
        if global_first_hop_only
            && first_hop.class(&topo.layout()) != df_topology::PortClass::Global
        {
            continue;
        }
        let g_inter = topo.router_group(inter);
        if g_inter != my_group && !view.link_up(my_group, topo.group_link_to(my_group, g_inter)) {
            continue;
        }
        if g_inter != dst_group && !view.link_up(g_inter, topo.group_link_to(g_inter, dst_group)) {
            continue;
        }
        return Some(inter);
    }
    None
}

/// Whether at least one of the router's own global ports offers a live
/// Valiant escape towards `dst_group`: the link is up locally, it leads to
/// a third group (neither this router's own nor the destination group),
/// and the (possibly stale) gateway-liveness view marks both it and that
/// group's onward link towards the destination group alive.
///
/// This is the existence check behind the bounded draws of
/// [`pick_live_intermediate`] with `global_first_hop_only` set: every
/// escape that function can return starts on one of these ports, so when
/// this returns `false` no amount of redrawing can ever succeed — callers
/// then discard the packet as unroutable instead of stalling on a dead
/// port forever (churn can keep links down through the drain window).
pub fn any_live_global_escape(router: &Router, dst_group: GroupId) -> bool {
    let topo = router.topology();
    let layout = topo.layout();
    let my_group = topo.router_group(router.id());
    let view = router.link_view();
    (0..topo.own_globals(router.id())).any(|k| {
        let port = Port::global(&layout, k);
        if !router.link_is_up(port) {
            return false;
        }
        let j = topo.global_link_index(router.id(), k);
        match topo.global_link_target_group(my_group, j) {
            Some(target) => {
                target != my_group
                    && target != dst_group
                    && view.link_up(my_group, j)
                    && view.link_up(target, topo.group_link_to(target, dst_group))
            }
            None => false,
        }
    })
}

/// First-hop decision towards an intermediate router, carrying the Valiant
/// commitment. `misroute` marks whether the statistics should count the
/// packet as globally misrouted.
pub fn valiant_first_hop(
    router: &Router,
    packet: &Packet,
    intermediate: RouterId,
    misroute: bool,
) -> Decision {
    let topo = router.topology();
    debug_assert_ne!(intermediate, router.id());
    let port = minimal_output_to_router(topo, router.id(), intermediate);
    Decision {
        output_port: port,
        output_vc: vc_for_next_hop(packet, port.class(&topo.layout()), router.config()),
        kind: DecisionKind::NonminimalGlobal,
        commitment: Commitment::Intermediate {
            router: intermediate,
            misroute,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::{NetworkConfig, PacketId, VcId};
    use df_topology::{Dragonfly, DragonflyParams, NodeId, PortClass};

    fn router(id: u32) -> Router {
        let topo = Dragonfly::new(DragonflyParams::small());
        Router::new(RouterId(id), topo, NetworkConfig::fast_test())
    }

    fn packet(src: u32, dst: u32) -> Packet {
        Packet::new(PacketId(0), NodeId(src), NodeId(dst), 8, 0)
    }

    #[test]
    fn continuation_routes_minimally_towards_the_target() {
        let r = router(0);
        let p = packet(0, 70);
        let d = continuation_to_router(&r, &p, RouterId(3));
        assert_eq!(d.kind, DecisionKind::Continuation);
        assert_eq!(d.output_port.class(r.topology().params()), PortClass::Local);
        assert_eq!(d.output_vc, VcId(0));
    }

    #[test]
    fn minimal_decision_matches_minimal_output() {
        let r = router(0);
        let p = packet(0, 70);
        let d = minimal_decision(&r, &p);
        assert_eq!(
            d.output_port,
            crate::minimal::minimal_output(r.topology(), r.id(), p.dst)
        );
        assert_eq!(d.kind, DecisionKind::Minimal);
    }

    #[test]
    fn intermediate_router_avoids_src_and_dst_groups() {
        let r = router(0);
        let mut rng = DeterministicRng::new(1);
        let topo = *r.topology();
        for _ in 0..200 {
            let inter =
                pick_intermediate_router(&r, GroupId(0), GroupId(1), &mut rng).expect("exists");
            let g = topo.router_group(inter);
            assert_ne!(g, GroupId(0));
            assert_ne!(g, GroupId(1));
        }
    }

    #[test]
    fn intermediate_router_covers_many_groups() {
        let r = router(0);
        let mut rng = DeterministicRng::new(2);
        let topo = *r.topology();
        let mut groups = std::collections::HashSet::new();
        for _ in 0..500 {
            let inter = pick_intermediate_router(&r, GroupId(0), GroupId(1), &mut rng).unwrap();
            groups.insert(topo.router_group(inter));
        }
        assert_eq!(groups.len(), (topo.num_groups() - 2) as usize);
    }

    #[test]
    fn no_intermediate_in_a_two_group_network() {
        let topo = Dragonfly::new(DragonflyParams::new(2, 4, 2, 2).unwrap());
        let r = Router::new(RouterId(0), topo, NetworkConfig::fast_test());
        let mut rng = DeterministicRng::new(3);
        assert!(pick_intermediate_router(&r, GroupId(0), GroupId(1), &mut rng).is_none());
    }

    #[test]
    fn valiant_first_hop_commits_the_intermediate() {
        let r = router(0);
        let p = packet(0, 70);
        let d = valiant_first_hop(&r, &p, RouterId(10), true);
        assert_eq!(d.kind, DecisionKind::NonminimalGlobal);
        match d.commitment {
            Commitment::Intermediate { router, misroute } => {
                assert_eq!(router, RouterId(10));
                assert!(misroute);
            }
            other => panic!("expected intermediate commitment, got {other:?}"),
        }
    }

    #[test]
    fn pick_random_is_none_on_empty() {
        let mut rng = DeterministicRng::new(0);
        let empty: [u32; 0] = [];
        assert!(pick_random(&empty, &mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(pick_random(&items, &mut rng).unwrap()));
    }

    #[test]
    fn output_occupancy_starts_at_zero() {
        let r = router(0);
        for port in df_topology::Port::all(r.topology().params()) {
            assert_eq!(output_occupancy(&r, port), 0);
        }
    }
}
