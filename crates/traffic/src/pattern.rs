//! Traffic patterns: who sends to whom.

use df_engine::DeterministicRng;
use df_topology::{Dragonfly, GroupId, NodeId};
use serde::{Deserialize, Serialize};

/// Declarative description of a traffic pattern, used in configuration files
/// and experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PatternKind {
    /// Uniform random traffic (UN).
    Uniform,
    /// Adversarial traffic ADV+`offset`: nodes of group `G` send to random
    /// nodes of group `(G + offset) mod groups`. `offset = 1` is the paper's
    /// ADV+1; `offset = h` is ADV+h, which additionally stresses local links.
    Adversarial {
        /// Group offset `i` of ADV+i.
        offset: u32,
    },
    /// Mix of adversarial and uniform traffic: each packet is uniform with
    /// probability `uniform_fraction`, adversarial (ADV+`offset`) otherwise
    /// (Figure 6).
    Mixed {
        /// Group offset of the adversarial component.
        offset: u32,
        /// Probability that a packet follows the uniform component.
        uniform_fraction: f64,
    },
}

impl PatternKind {
    /// Short name used in result tables ("UN", "ADV+1", ...).
    pub fn label(&self) -> String {
        match self {
            PatternKind::Uniform => "UN".to_string(),
            PatternKind::Adversarial { offset } => format!("ADV+{offset}"),
            PatternKind::Mixed {
                offset,
                uniform_fraction,
            } => format!("MIX(ADV+{offset},{:.0}%UN)", uniform_fraction * 100.0),
        }
    }

    /// Materialise the pattern for a topology.
    pub fn build(&self, topo: Dragonfly) -> TrafficPattern {
        TrafficPattern { kind: *self, topo }
    }
}

/// A traffic pattern bound to a topology: maps a source node (plus
/// randomness) to a destination node.
#[derive(Debug, Clone)]
pub struct TrafficPattern {
    kind: PatternKind,
    topo: Dragonfly,
}

impl TrafficPattern {
    /// The declarative kind of this pattern.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// The topology the pattern is bound to.
    pub fn topology(&self) -> &Dragonfly {
        &self.topo
    }

    /// Draw a destination for a packet generated at `src`.
    ///
    /// The destination is always different from `src` (self-traffic is never
    /// generated, matching FOGSim).
    pub fn destination(&self, src: NodeId, rng: &mut DeterministicRng) -> NodeId {
        match self.kind {
            PatternKind::Uniform => self.uniform_destination(src, rng),
            PatternKind::Adversarial { offset } => self.adversarial_destination(src, offset, rng),
            PatternKind::Mixed {
                offset,
                uniform_fraction,
            } => {
                if rng.bernoulli(uniform_fraction) {
                    self.uniform_destination(src, rng)
                } else {
                    self.adversarial_destination(src, offset, rng)
                }
            }
        }
    }

    fn uniform_destination(&self, src: NodeId, rng: &mut DeterministicRng) -> NodeId {
        let n = self.topo.num_nodes() as u64;
        debug_assert!(n > 1, "uniform traffic needs at least two nodes");
        // draw uniformly among the n-1 other nodes
        let raw = rng.below(n - 1) as u32;
        let dst = if raw >= src.0 { raw + 1 } else { raw };
        NodeId(dst)
    }

    fn adversarial_destination(&self, src: NodeId, offset: u32, rng: &mut DeterministicRng) -> NodeId {
        let groups = self.topo.num_groups();
        debug_assert!(groups > 1, "adversarial traffic needs at least two groups");
        let offset = {
            // an offset that is a multiple of the group count would be
            // self-group traffic; fold it into the valid range 1..groups
            let m = offset % groups;
            if m == 0 {
                1
            } else {
                m
            }
        };
        let src_group = self.topo.node_group(src);
        let dst_group = GroupId((src_group.0 + offset) % groups);
        // uniform node within the destination group
        let nodes_per_group = (self.topo.params().a * self.topo.params().p) as u64;
        let k = rng.below(nodes_per_group) as u32;
        let first_router = self.topo.router_at(dst_group, 0);
        NodeId(first_router.0 * self.topo.params().p + k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::DragonflyParams;

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small()) // p=2,a=4,h=2, 9 groups, 72 nodes
    }

    fn rng() -> DeterministicRng {
        DeterministicRng::new(7)
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PatternKind::Uniform.label(), "UN");
        assert_eq!(PatternKind::Adversarial { offset: 1 }.label(), "ADV+1");
        assert_eq!(PatternKind::Adversarial { offset: 8 }.label(), "ADV+8");
        assert_eq!(
            PatternKind::Mixed {
                offset: 1,
                uniform_fraction: 0.4
            }
            .label(),
            "MIX(ADV+1,40%UN)"
        );
    }

    #[test]
    fn uniform_never_targets_self_and_covers_nodes() {
        let p = PatternKind::Uniform.build(topo());
        let mut r = rng();
        let src = NodeId(10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let d = p.destination(src, &mut r);
            assert_ne!(d, src);
            assert!(d.0 < p.topology().num_nodes());
            seen.insert(d);
        }
        // 71 possible destinations; 5000 draws should see almost all of them
        assert!(seen.len() > 65, "saw only {} destinations", seen.len());
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let p = PatternKind::Uniform.build(topo());
        let mut r = rng();
        let n = p.topology().num_nodes() as usize;
        let mut counts = vec![0u32; n];
        let draws = 71_000;
        for _ in 0..draws {
            counts[p.destination(NodeId(0), &mut r).index()] += 1;
        }
        assert_eq!(counts[0], 0, "no self traffic");
        let expected = draws as f64 / (n as f64 - 1.0);
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as f64) > expected * 0.7 && (c as f64) < expected * 1.3,
                "node {i} count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn adversarial_targets_the_offset_group() {
        let t = topo();
        let p = PatternKind::Adversarial { offset: 1 }.build(t);
        let mut r = rng();
        for src in t.nodes() {
            let d = p.destination(src, &mut r);
            let src_group = t.node_group(src);
            let dst_group = t.node_group(d);
            assert_eq!(
                dst_group.0,
                (src_group.0 + 1) % t.num_groups(),
                "ADV+1 must target the next group"
            );
        }
    }

    #[test]
    fn adversarial_offset_h_matches_paper_advh() {
        let t = topo();
        let h = t.params().h;
        let p = PatternKind::Adversarial { offset: h }.build(t);
        let mut r = rng();
        let src = NodeId(3);
        let d = p.destination(src, &mut r);
        assert_eq!(
            t.node_group(d).0,
            (t.node_group(src).0 + h) % t.num_groups()
        );
    }

    #[test]
    fn adversarial_offset_multiple_of_groups_does_not_self_target() {
        let t = topo();
        let groups = t.num_groups();
        let p = PatternKind::Adversarial { offset: groups * 2 }.build(t);
        let mut r = rng();
        for src in [NodeId(0), NodeId(33), NodeId(71)] {
            let d = p.destination(src, &mut r);
            assert_ne!(t.node_group(d), t.node_group(src));
        }
    }

    #[test]
    fn adversarial_spreads_within_destination_group() {
        let t = topo();
        let p = PatternKind::Adversarial { offset: 1 }.build(t);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(p.destination(NodeId(0), &mut r));
        }
        // 8 nodes per group; all should appear
        assert_eq!(seen.len(), (t.params().a * t.params().p) as usize);
    }

    #[test]
    fn mixed_fraction_controls_the_blend() {
        let t = topo();
        let p = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.25,
        }
        .build(t);
        let mut r = rng();
        let src = NodeId(0);
        let adv_group = GroupId((t.node_group(src).0 + 1) % t.num_groups());
        let draws = 20_000;
        let adversarial = (0..draws)
            .filter(|_| t.node_group(p.destination(src, &mut r)) == adv_group)
            .count();
        let frac = adversarial as f64 / draws as f64;
        // 75% adversarial plus a small uniform contribution landing in that
        // group by chance (1/9th of the 25%)
        let expected = 0.75 + 0.25 / 9.0;
        assert!(
            (frac - expected).abs() < 0.03,
            "adversarial fraction {frac} should be ~{expected}"
        );
    }

    #[test]
    fn mixed_extremes_degenerate_to_pure_patterns() {
        let t = topo();
        let mut r = rng();
        let all_uniform = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 1.0,
        }
        .build(t);
        let all_adv = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.0,
        }
        .build(t);
        let src = NodeId(20);
        let adv_group = GroupId((t.node_group(src).0 + 1) % t.num_groups());
        for _ in 0..200 {
            let d = all_adv.destination(src, &mut r);
            assert_eq!(t.node_group(d), adv_group);
        }
        let mut all_in_adv_group = true;
        for _ in 0..200 {
            let d = all_uniform.destination(src, &mut r);
            if t.node_group(d) != adv_group {
                all_in_adv_group = false;
            }
        }
        assert!(!all_in_adv_group, "uniform traffic must leave the ADV group");
    }

    #[test]
    fn destinations_are_deterministic_given_seed() {
        let t = topo();
        let p = PatternKind::Uniform.build(t);
        let mut r1 = DeterministicRng::new(3);
        let mut r2 = DeterministicRng::new(3);
        for src in t.nodes() {
            assert_eq!(p.destination(src, &mut r1), p.destination(src, &mut r2));
        }
    }
}
