//! Traffic patterns: who sends to whom.

use df_engine::DeterministicRng;
use df_topology::{AnyTopology, GroupId, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Declarative description of a traffic pattern, used in configuration files
/// and experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PatternKind {
    /// Uniform random traffic (UN).
    Uniform,
    /// Adversarial traffic ADV+`offset`: nodes of group `G` send to random
    /// nodes of group `(G + offset) mod groups`. `offset = 1` is the paper's
    /// ADV+1; `offset = h` is ADV+h, which additionally stresses local links.
    Adversarial {
        /// Group offset `i` of ADV+i.
        offset: u32,
    },
    /// Mix of adversarial and uniform traffic: each packet is uniform with
    /// probability `uniform_fraction`, adversarial (ADV+`offset`) otherwise
    /// (Figure 6).
    Mixed {
        /// Group offset of the adversarial component.
        offset: u32,
        /// Probability that a packet follows the uniform component.
        uniform_fraction: f64,
    },
    /// Random permutation traffic: a fixed-point-free permutation of the
    /// nodes, drawn once from `seed` (independent of the run seed, so the
    /// permutation is part of the workload specification). Every node always
    /// sends to the same peer, which concentrates load on a static set of
    /// paths.
    Permutation {
        /// Seed the permutation is derived from.
        seed: u64,
    },
    /// Hotspot traffic: with probability `fraction` the destination is one of
    /// `hotspots` evenly spaced hot nodes (uniform among them), otherwise
    /// uniform among all other nodes.
    Hotspot {
        /// Number of hot destination nodes (evenly spaced over the node
        /// index range, so they land in different groups).
        hotspots: u32,
        /// Probability that a packet targets the hotspot set.
        fraction: f64,
    },
    /// Bit-complement traffic: node `i` always sends to node `n-1-i`, which
    /// is the bitwise complement of `i` when the node count `n` is a power
    /// of two (and the mirrored index otherwise). Requires an even `n`.
    BitComplement,
    /// Bit-reversal traffic: node `i < m` (with `m` the largest power of two
    /// `≤ n`) sends to the node whose index reverses `i`'s `log2(m)` bits;
    /// the tail `m..n` and the palindromic indices are rotated among
    /// themselves so the map stays a fixed-point-free bijection for any `n`.
    BitReversal,
    /// Group-local versus global mix: with probability `local_fraction` the
    /// destination is uniform within the source's own group, otherwise
    /// uniform among the nodes of all other groups.
    GroupLocal {
        /// Probability that a packet stays inside its source group.
        local_fraction: f64,
    },
}

impl PatternKind {
    /// Short name used in result tables ("UN", "ADV+1", ...).
    pub fn label(&self) -> String {
        match self {
            PatternKind::Uniform => "UN".to_string(),
            PatternKind::Adversarial { offset } => format!("ADV+{offset}"),
            PatternKind::Mixed {
                offset,
                uniform_fraction,
            } => format!("MIX(ADV+{offset},{:.0}%UN)", uniform_fraction * 100.0),
            PatternKind::Permutation { seed } => format!("PERM({seed})"),
            PatternKind::Hotspot { hotspots, fraction } => {
                format!("HOT({hotspots}x{:.0}%)", fraction * 100.0)
            }
            PatternKind::BitComplement => "BITCOMP".to_string(),
            PatternKind::BitReversal => "BITREV".to_string(),
            PatternKind::GroupLocal { local_fraction } => {
                format!("LOC({:.0}%)", local_fraction * 100.0)
            }
        }
    }

    /// Whether the pattern is a fixed destination map (permutation-style):
    /// every source always sends to the same destination and no randomness is
    /// consumed per packet.
    pub fn is_deterministic_map(&self) -> bool {
        matches!(
            self,
            PatternKind::Permutation { .. } | PatternKind::BitComplement | PatternKind::BitReversal
        )
    }

    /// Check the pattern parameters against a topology without building it.
    pub fn validate(&self, topo: &impl Topology) -> Result<(), String> {
        let n = topo.num_nodes();
        match *self {
            PatternKind::Uniform | PatternKind::Permutation { .. } | PatternKind::BitReversal => {}
            PatternKind::Adversarial { .. } | PatternKind::Mixed { .. } => {
                if topo.num_groups() < 2 {
                    return Err("adversarial traffic needs at least two groups".into());
                }
            }
            PatternKind::Hotspot { hotspots, fraction } => {
                if hotspots == 0 || hotspots > n {
                    return Err(format!("hotspot count must be in 1..={n}, got {hotspots}"));
                }
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(format!("hotspot fraction must be in [0,1], got {fraction}"));
                }
            }
            PatternKind::BitComplement => {
                if !n.is_multiple_of(2) {
                    return Err(format!("bit-complement needs an even node count, got {n}"));
                }
            }
            PatternKind::GroupLocal { local_fraction } => {
                if !(0.0..=1.0).contains(&local_fraction) {
                    return Err(format!(
                        "group-local fraction must be in [0,1], got {local_fraction}"
                    ));
                }
                if topo.num_groups() < 2 {
                    return Err("group-local traffic needs at least two groups".into());
                }
                let group_size = topo.nodes_per_group();
                if local_fraction > 0.0 && group_size < 2 {
                    return Err(format!(
                        "group-local traffic needs at least two nodes per group \
                         for a non-zero local fraction, got {group_size}"
                    ));
                }
            }
        }
        if let PatternKind::Mixed {
            uniform_fraction, ..
        } = *self
        {
            if !(0.0..=1.0).contains(&uniform_fraction) {
                return Err(format!(
                    "uniform fraction must be in [0,1], got {uniform_fraction}"
                ));
            }
        }
        Ok(())
    }

    /// Materialise the pattern for a topology.
    ///
    /// # Panics
    /// Panics if [`validate`](Self::validate) rejects the pattern for this
    /// topology.
    pub fn build(&self, topo: impl Into<AnyTopology>) -> TrafficPattern {
        let topo = topo.into();
        self.validate(&topo)
            .unwrap_or_else(|e| panic!("invalid pattern {self:?}: {e}"));
        let n = topo.num_nodes() as usize;
        let map = match *self {
            PatternKind::Permutation { seed } => Some(sattolo_permutation(n, seed)),
            PatternKind::BitComplement => Some(complement_map(n)),
            PatternKind::BitReversal => Some(bit_reversal_map(n)),
            _ => None,
        };
        let hotspot_nodes = match *self {
            PatternKind::Hotspot { hotspots, .. } => {
                let stride = (n as u32 / hotspots).max(1);
                Some((0..hotspots).map(|k| k * stride).collect())
            }
            _ => None,
        };
        TrafficPattern {
            kind: *self,
            topo,
            map,
            hotspot_nodes,
        }
    }
}

/// A uniformly random *cyclic* permutation of `0..n` (Sattolo's algorithm):
/// a single n-cycle, hence fixed-point-free for `n ≥ 2`.
fn sattolo_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = DeterministicRng::new(seed).split(0x5EED_9E24);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut i = n.saturating_sub(1);
    while i > 0 {
        let j = rng.index(i); // j in [0, i): never a self-swap
        perm.swap(i, j);
        i -= 1;
    }
    perm
}

/// The mirror map `i → n-1-i`: the bitwise complement of `i` in `log2(n)`
/// bits when `n` is a power of two. An involution; fixed-point-free for even
/// `n` (enforced by [`PatternKind::validate`]).
fn complement_map(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| (n as u32 - 1) - i).collect()
}

/// Bit reversal over the largest power-of-two prefix `[0, m)`, identity on
/// the tail `[m, n)`, with every fixed point (bit palindromes plus the tail)
/// rotated one position among themselves. The rotation keeps the map a
/// bijection and removes all self-destinations; `0` and `m-1` are always
/// palindromes, so the rotation set has at least two members.
fn bit_reversal_map(n: usize) -> Vec<u32> {
    let m = if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    };
    let bits = m.trailing_zeros();
    let mut map: Vec<u32> = (0..n as u32)
        .map(|i| {
            if (i as usize) < m {
                i.reverse_bits() >> (32 - bits)
            } else {
                i
            }
        })
        .collect();
    let fixed: Vec<u32> = (0..n as u32).filter(|&i| map[i as usize] == i).collect();
    if fixed.len() >= 2 {
        for (k, &i) in fixed.iter().enumerate() {
            map[i as usize] = fixed[(k + 1) % fixed.len()];
        }
    }
    map
}

/// A traffic pattern bound to a topology: maps a source node (plus
/// randomness) to a destination node.
#[derive(Debug, Clone)]
pub struct TrafficPattern {
    kind: PatternKind,
    topo: AnyTopology,
    /// Precomputed destination map for permutation-style patterns.
    map: Option<Vec<u32>>,
    /// Precomputed hot destination list for [`PatternKind::Hotspot`].
    hotspot_nodes: Option<Vec<u32>>,
}

impl TrafficPattern {
    /// The declarative kind of this pattern.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// The topology the pattern is bound to.
    pub fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    /// Draw a destination for a packet generated at `src`.
    ///
    /// The destination is always different from `src` (self-traffic is never
    /// generated, matching FOGSim).
    pub fn destination(&self, src: NodeId, rng: &mut DeterministicRng) -> NodeId {
        match self.kind {
            PatternKind::Uniform => self.uniform_destination(src, rng),
            PatternKind::Adversarial { offset } => self.adversarial_destination(src, offset, rng),
            PatternKind::Mixed {
                offset,
                uniform_fraction,
            } => {
                if rng.bernoulli(uniform_fraction) {
                    self.uniform_destination(src, rng)
                } else {
                    self.adversarial_destination(src, offset, rng)
                }
            }
            PatternKind::Permutation { .. }
            | PatternKind::BitComplement
            | PatternKind::BitReversal => {
                let map = self
                    .map
                    .as_ref()
                    .expect("map built for deterministic pattern");
                NodeId(map[src.index()])
            }
            PatternKind::Hotspot { fraction, .. } => self.hotspot_destination(src, fraction, rng),
            PatternKind::GroupLocal { local_fraction } => {
                self.group_local_destination(src, local_fraction, rng)
            }
        }
    }

    /// The fixed destination map of a permutation-style pattern, if any
    /// (indexable by source node index; used by property tests and tooling).
    pub fn destination_map(&self) -> Option<&[u32]> {
        self.map.as_deref()
    }

    /// The hot destination nodes of a [`PatternKind::Hotspot`] pattern.
    pub fn hotspot_nodes(&self) -> Option<&[u32]> {
        self.hotspot_nodes.as_deref()
    }

    fn uniform_destination(&self, src: NodeId, rng: &mut DeterministicRng) -> NodeId {
        let n = self.topo.num_nodes() as u64;
        debug_assert!(n > 1, "uniform traffic needs at least two nodes");
        // draw uniformly among the n-1 other nodes
        let raw = rng.below(n - 1) as u32;
        let dst = if raw >= src.0 { raw + 1 } else { raw };
        NodeId(dst)
    }

    fn adversarial_destination(
        &self,
        src: NodeId,
        offset: u32,
        rng: &mut DeterministicRng,
    ) -> NodeId {
        let groups = self.topo.num_groups();
        debug_assert!(groups > 1, "adversarial traffic needs at least two groups");
        let offset = {
            // an offset that is a multiple of the group count would be
            // self-group traffic; fold it into the valid range 1..groups
            let m = offset % groups;
            if m == 0 {
                1
            } else {
                m
            }
        };
        let src_group = self.topo.node_group(src);
        let dst_group = GroupId((src_group.0 + offset) % groups);
        // uniform node within the destination group (node ids are dense and
        // group-major in every topology, so the group's nodes start at
        // group * nodes_per_group)
        let nodes_per_group = self.topo.nodes_per_group() as u64;
        let k = rng.below(nodes_per_group) as u32;
        NodeId(dst_group.0 * self.topo.nodes_per_group() + k)
    }

    fn hotspot_destination(
        &self,
        src: NodeId,
        fraction: f64,
        rng: &mut DeterministicRng,
    ) -> NodeId {
        if rng.bernoulli(fraction) {
            let hot = self
                .hotspot_nodes
                .as_ref()
                .expect("hotspot list built for hotspot pattern");
            // pick among the hot nodes that are not the source; fall back to
            // uniform traffic when the source is the only hot node
            let others = hot.iter().filter(|&&h| h != src.0).count();
            if others > 0 {
                let mut k = rng.index(others);
                for &h in hot.iter() {
                    if h == src.0 {
                        continue;
                    }
                    if k == 0 {
                        return NodeId(h);
                    }
                    k -= 1;
                }
                unreachable!("index was drawn below the candidate count");
            }
        }
        self.uniform_destination(src, rng)
    }

    fn group_local_destination(
        &self,
        src: NodeId,
        local_fraction: f64,
        rng: &mut DeterministicRng,
    ) -> NodeId {
        let group_size = self.topo.nodes_per_group();
        let group = self.topo.node_group(src);
        let first = group.0 * group_size;
        // group_size >= 2 whenever local_fraction > 0 (enforced by validate)
        if rng.bernoulli(local_fraction) {
            // uniform among the group_size-1 other nodes of the own group
            let raw = first + rng.below((group_size - 1) as u64) as u32;
            let dst = if raw >= src.0 { raw + 1 } else { raw };
            return NodeId(dst);
        }
        // uniform among the nodes of every other group
        let n = self.topo.num_nodes();
        let raw = rng.below((n - group_size) as u64) as u32;
        let dst = if raw >= first { raw + group_size } else { raw };
        NodeId(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams};

    fn topo() -> Dragonfly {
        Dragonfly::new(DragonflyParams::small()) // p=2,a=4,h=2, 9 groups, 72 nodes
    }

    fn rng() -> DeterministicRng {
        DeterministicRng::new(7)
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PatternKind::Uniform.label(), "UN");
        assert_eq!(PatternKind::Adversarial { offset: 1 }.label(), "ADV+1");
        assert_eq!(PatternKind::Adversarial { offset: 8 }.label(), "ADV+8");
        assert_eq!(
            PatternKind::Mixed {
                offset: 1,
                uniform_fraction: 0.4
            }
            .label(),
            "MIX(ADV+1,40%UN)"
        );
    }

    #[test]
    fn uniform_never_targets_self_and_covers_nodes() {
        let p = PatternKind::Uniform.build(topo());
        let mut r = rng();
        let src = NodeId(10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let d = p.destination(src, &mut r);
            assert_ne!(d, src);
            assert!(d.0 < p.topology().num_nodes());
            seen.insert(d);
        }
        // 71 possible destinations; 5000 draws should see almost all of them
        assert!(seen.len() > 65, "saw only {} destinations", seen.len());
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let p = PatternKind::Uniform.build(topo());
        let mut r = rng();
        let n = p.topology().num_nodes() as usize;
        let mut counts = vec![0u32; n];
        let draws = 71_000;
        for _ in 0..draws {
            counts[p.destination(NodeId(0), &mut r).index()] += 1;
        }
        assert_eq!(counts[0], 0, "no self traffic");
        let expected = draws as f64 / (n as f64 - 1.0);
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as f64) > expected * 0.7 && (c as f64) < expected * 1.3,
                "node {i} count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn adversarial_targets_the_offset_group() {
        let t = topo();
        let p = PatternKind::Adversarial { offset: 1 }.build(t);
        let mut r = rng();
        for src in t.nodes() {
            let d = p.destination(src, &mut r);
            let src_group = t.node_group(src);
            let dst_group = t.node_group(d);
            assert_eq!(
                dst_group.0,
                (src_group.0 + 1) % t.num_groups(),
                "ADV+1 must target the next group"
            );
        }
    }

    #[test]
    fn adversarial_offset_h_matches_paper_advh() {
        let t = topo();
        let h = t.params().h;
        let p = PatternKind::Adversarial { offset: h }.build(t);
        let mut r = rng();
        let src = NodeId(3);
        let d = p.destination(src, &mut r);
        assert_eq!(
            t.node_group(d).0,
            (t.node_group(src).0 + h) % t.num_groups()
        );
    }

    #[test]
    fn adversarial_offset_multiple_of_groups_does_not_self_target() {
        let t = topo();
        let groups = t.num_groups();
        let p = PatternKind::Adversarial { offset: groups * 2 }.build(t);
        let mut r = rng();
        for src in [NodeId(0), NodeId(33), NodeId(71)] {
            let d = p.destination(src, &mut r);
            assert_ne!(t.node_group(d), t.node_group(src));
        }
    }

    #[test]
    fn adversarial_spreads_within_destination_group() {
        let t = topo();
        let p = PatternKind::Adversarial { offset: 1 }.build(t);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(p.destination(NodeId(0), &mut r));
        }
        // 8 nodes per group; all should appear
        assert_eq!(seen.len(), (t.params().a * t.params().p) as usize);
    }

    #[test]
    fn mixed_fraction_controls_the_blend() {
        let t = topo();
        let p = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.25,
        }
        .build(t);
        let mut r = rng();
        let src = NodeId(0);
        let adv_group = GroupId((t.node_group(src).0 + 1) % t.num_groups());
        let draws = 20_000;
        let adversarial = (0..draws)
            .filter(|_| t.node_group(p.destination(src, &mut r)) == adv_group)
            .count();
        let frac = adversarial as f64 / draws as f64;
        // 75% adversarial plus a small uniform contribution landing in that
        // group by chance (1/9th of the 25%)
        let expected = 0.75 + 0.25 / 9.0;
        assert!(
            (frac - expected).abs() < 0.03,
            "adversarial fraction {frac} should be ~{expected}"
        );
    }

    #[test]
    fn mixed_extremes_degenerate_to_pure_patterns() {
        let t = topo();
        let mut r = rng();
        let all_uniform = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 1.0,
        }
        .build(t);
        let all_adv = PatternKind::Mixed {
            offset: 1,
            uniform_fraction: 0.0,
        }
        .build(t);
        let src = NodeId(20);
        let adv_group = GroupId((t.node_group(src).0 + 1) % t.num_groups());
        for _ in 0..200 {
            let d = all_adv.destination(src, &mut r);
            assert_eq!(t.node_group(d), adv_group);
        }
        let mut all_in_adv_group = true;
        for _ in 0..200 {
            let d = all_uniform.destination(src, &mut r);
            if t.node_group(d) != adv_group {
                all_in_adv_group = false;
            }
        }
        assert!(
            !all_in_adv_group,
            "uniform traffic must leave the ADV group"
        );
    }

    #[test]
    fn destinations_are_deterministic_given_seed() {
        let t = topo();
        let p = PatternKind::Uniform.build(t);
        let mut r1 = DeterministicRng::new(3);
        let mut r2 = DeterministicRng::new(3);
        for src in t.nodes() {
            assert_eq!(p.destination(src, &mut r1), p.destination(src, &mut r2));
        }
    }

    /// Exhaustively check that a map-style pattern is a fixed-point-free
    /// bijection on every node of `t`.
    fn assert_bijection(t: Dragonfly, kind: PatternKind) {
        let p = kind.build(t);
        let mut r = rng();
        let mut seen = vec![false; t.num_nodes() as usize];
        for src in t.nodes() {
            let d = p.destination(src, &mut r);
            assert_ne!(d, src, "{} maps {src} to itself", kind.label());
            assert!(d.0 < t.num_nodes());
            assert!(!seen[d.index()], "{} maps two sources to {d}", kind.label());
            seen[d.index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{} is not surjective",
            kind.label()
        );
    }

    #[test]
    fn permutation_is_a_fixed_point_free_bijection() {
        for seed in 0..20 {
            assert_bijection(topo(), PatternKind::Permutation { seed });
        }
    }

    #[test]
    fn bit_complement_is_a_fixed_point_free_bijection() {
        // 72 nodes (not a power of two) and a 64-node power-of-two network
        assert_bijection(topo(), PatternKind::BitComplement);
        let pow2 = Dragonfly::new(DragonflyParams::new(2, 4, 2, 8).unwrap());
        assert_eq!(pow2.num_nodes(), 64);
        assert_bijection(pow2, PatternKind::BitComplement);
    }

    #[test]
    fn bit_reversal_is_a_fixed_point_free_bijection() {
        assert_bijection(topo(), PatternKind::BitReversal);
        let pow2 = Dragonfly::new(DragonflyParams::new(2, 4, 2, 8).unwrap());
        assert_bijection(pow2, PatternKind::BitReversal);
    }

    #[test]
    fn bit_reversal_reverses_bits_on_a_power_of_two_network() {
        let pow2 = Dragonfly::new(DragonflyParams::new(2, 4, 2, 8).unwrap());
        let p = PatternKind::BitReversal.build(pow2);
        let map = p.destination_map().unwrap();
        // 0b000110 reversed in 6 bits is 0b011000; neither is a palindrome
        assert_eq!(map[0b000110], 0b011000);
        assert_eq!(map[0b011000], 0b000110);
    }

    #[test]
    fn bit_complement_mirrors_the_index_range() {
        let t = topo();
        let p = PatternKind::BitComplement.build(t);
        let map = p.destination_map().unwrap();
        let n = t.num_nodes();
        for i in 0..n {
            assert_eq!(map[i as usize], n - 1 - i);
        }
    }

    #[test]
    fn permutation_is_stable_across_builds_and_varies_with_seed() {
        let a = PatternKind::Permutation { seed: 5 }.build(topo());
        let b = PatternKind::Permutation { seed: 5 }.build(topo());
        let c = PatternKind::Permutation { seed: 6 }.build(topo());
        assert_eq!(a.destination_map(), b.destination_map());
        assert_ne!(a.destination_map(), c.destination_map());
    }

    #[test]
    fn hotspot_respects_its_weight_split() {
        let t = topo();
        let kind = PatternKind::Hotspot {
            hotspots: 4,
            fraction: 0.6,
        };
        let p = kind.build(t);
        let hot: std::collections::HashSet<u32> =
            p.hotspot_nodes().unwrap().iter().copied().collect();
        assert_eq!(hot.len(), 4, "hot nodes must be distinct");
        let mut r = rng();
        let src = NodeId(7); // not a hot node (hot nodes are 0,18,36,54)
        assert!(!hot.contains(&src.0));
        let draws = 40_000;
        let hits = (0..draws)
            .filter(|_| hot.contains(&p.destination(src, &mut r).0))
            .count();
        let frac = hits as f64 / draws as f64;
        // 60% targeted plus the uniform branch landing on a hot node by
        // chance (40% * 4/71)
        let expected = 0.6 + 0.4 * 4.0 / 71.0;
        assert!(
            (frac - expected).abs() < 0.02,
            "hotspot fraction {frac:.3} should be ~{expected:.3}"
        );
    }

    #[test]
    fn hotspot_nodes_span_multiple_groups() {
        let t = topo();
        let p = PatternKind::Hotspot {
            hotspots: 4,
            fraction: 1.0,
        }
        .build(t);
        let groups: std::collections::HashSet<u32> = p
            .hotspot_nodes()
            .unwrap()
            .iter()
            .map(|&h| t.node_group(NodeId(h)).0)
            .collect();
        assert!(groups.len() > 1, "evenly spaced hot nodes must spread out");
    }

    #[test]
    fn hotspot_never_targets_self_even_when_source_is_hot() {
        let t = topo();
        let p = PatternKind::Hotspot {
            hotspots: 1,
            fraction: 1.0,
        }
        .build(t);
        let hot = p.hotspot_nodes().unwrap()[0];
        let mut r = rng();
        for _ in 0..2_000 {
            let d = p.destination(NodeId(hot), &mut r);
            assert_ne!(d.0, hot, "the only hot node must fall back to uniform");
        }
    }

    #[test]
    fn group_local_fraction_controls_locality() {
        let t = topo();
        let p = PatternKind::GroupLocal {
            local_fraction: 0.7,
        }
        .build(t);
        let mut r = rng();
        let src = NodeId(20);
        let own = t.node_group(src);
        let draws = 40_000;
        let mut local = 0usize;
        for _ in 0..draws {
            let d = p.destination(src, &mut r);
            assert_ne!(d, src);
            if t.node_group(d) == own {
                local += 1;
            }
        }
        let frac = local as f64 / draws as f64;
        assert!(
            (frac - 0.7).abs() < 0.02,
            "local fraction {frac:.3} should be ~0.7"
        );
    }

    #[test]
    fn group_local_extremes_are_pure() {
        let t = topo();
        let all_local = PatternKind::GroupLocal {
            local_fraction: 1.0,
        }
        .build(t);
        let all_global = PatternKind::GroupLocal {
            local_fraction: 0.0,
        }
        .build(t);
        let mut r = rng();
        for src in t.nodes() {
            let d = all_local.destination(src, &mut r);
            assert_eq!(t.node_group(d), t.node_group(src));
            assert_ne!(d, src);
            let d = all_global.destination(src, &mut r);
            assert_ne!(t.node_group(d), t.node_group(src));
        }
    }

    #[test]
    fn new_pattern_labels_are_stable() {
        assert_eq!(PatternKind::Permutation { seed: 3 }.label(), "PERM(3)");
        assert_eq!(
            PatternKind::Hotspot {
                hotspots: 4,
                fraction: 0.6
            }
            .label(),
            "HOT(4x60%)"
        );
        assert_eq!(PatternKind::BitComplement.label(), "BITCOMP");
        assert_eq!(PatternKind::BitReversal.label(), "BITREV");
        assert_eq!(
            PatternKind::GroupLocal {
                local_fraction: 0.5
            }
            .label(),
            "LOC(50%)"
        );
    }

    #[test]
    fn invalid_patterns_are_rejected() {
        let t = topo();
        assert!(PatternKind::Hotspot {
            hotspots: 0,
            fraction: 0.5
        }
        .validate(&t)
        .is_err());
        assert!(PatternKind::Hotspot {
            hotspots: 1,
            fraction: 1.5
        }
        .validate(&t)
        .is_err());
        assert!(PatternKind::GroupLocal {
            local_fraction: -0.1
        }
        .validate(&t)
        .is_err());
        assert!(PatternKind::Uniform.validate(&t).is_ok());
        assert!(PatternKind::BitReversal.validate(&t).is_ok());
        // one node per group: a non-zero local fraction has no valid
        // destination, so it must be rejected rather than silently ignored
        let single = Dragonfly::new(DragonflyParams::new(1, 1, 2, 3).unwrap());
        assert_eq!(single.params().a * single.params().p, 1);
        assert!(PatternKind::GroupLocal {
            local_fraction: 0.5
        }
        .validate(&single)
        .is_err());
        assert!(PatternKind::GroupLocal {
            local_fraction: 0.0
        }
        .validate(&single)
        .is_ok());
    }
}
