//! Rank-level collective workloads: declarative communication sequences with
//! causal dependencies.
//!
//! A [`TaskWorkload`] turns nodes into **ranks** executing a sequence of
//! collectives ([`CollectiveKind`]). Each collective *lowers* into per-rank
//! scripts of dependency-gated steps ([`TaskStep`]): a rank only injects a
//! step's messages once its previous step completed — all of its own sends
//! delivered AND all the messages addressed to it in that step received.
//! This is message-gated generation: the traffic the network sees is shaped
//! by the network itself (synchronized bursts, convoys, stragglers), which
//! packet-level stochastic injection cannot express.
//!
//! The lowering is a pure function of `(collective, ranks,
//! packets_per_message)` — no RNG, no topology — so the generated dependency
//! graph is identical across kernels, worker counts and hosts by
//! construction. The simulation layer (df-sim's task engine) owns the
//! runtime side: tracking deliveries, advancing cursors, accounting stalls.
//!
//! Lowered scripts satisfy a global conservation property checked by
//! [`validate_scripts`]: in every step, the packets sent to rank `r` across
//! all ranks equal exactly what `r` expects. Steps may be empty for a rank
//! (zero sends, zero expected receives) — e.g. the spare ranks of a
//! non-power-of-two recursive doubling — and such steps complete
//! immediately.

use serde::{Deserialize, Serialize};

/// The algorithm an all-reduce lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllReduceAlgorithm {
    /// Ring all-reduce: `2(p-1)` steps; in each, rank `r` sends one message
    /// to `(r+1) mod p` and waits for one from `(r-1) mod p` (reduce-scatter
    /// followed by all-gather — the bandwidth-optimal schedule used by
    /// gradient exchange).
    Ring,
    /// Recursive doubling: `ceil(log2 p)` exchange rounds between partners
    /// `r XOR 2^k` (latency-optimal). Non-power-of-two rank counts fold the
    /// surplus ranks into the power-of-two core with a pre-step and unfold
    /// them with a post-step, as MPI implementations do.
    RecursiveDoubling,
}

/// One collective operation over all ranks of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every rank sends one message to every other rank, in `p-1` phased
    /// rounds: in round `i` rank `r` sends to `(r+i) mod p` and receives
    /// from `(r-i) mod p` (the classic shifted-exchange schedule of expert
    /// dispatch / FFT transposes). Each round is gated on the previous one,
    /// so the network sees `p-1` synchronized burst waves.
    AllToAll,
    /// All-reduce with the selected algorithm.
    AllReduce(AllReduceAlgorithm),
    /// Dissemination barrier: `ceil(log2 p)` rounds; in round `k` rank `r`
    /// signals `(r + 2^k) mod p` and waits for `(r - 2^k) mod p`. After the
    /// last round every rank transitively depends on every other.
    Barrier,
    /// One halo exchange of a 1-D sweep: rank `r` exchanges one message with
    /// each existing neighbor `r-1` / `r+1` (non-wrapping).
    SweepNeighbors,
}

impl CollectiveKind {
    /// Short stable label for tables, CSV rows and corpus keys.
    pub fn label(&self) -> &'static str {
        match self {
            CollectiveKind::AllToAll => "all-to-all",
            CollectiveKind::AllReduce(AllReduceAlgorithm::Ring) => "all-reduce-ring",
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling) => "all-reduce-rd",
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::SweepNeighbors => "sweep-neighbors",
        }
    }

    /// Lower this collective for `ranks` ranks into per-rank step lists,
    /// `packets` packets per logical message. `scripts[r]` is rank `r`'s
    /// sequence; all ranks get the same number of steps (possibly empty for
    /// some ranks in some steps).
    pub fn lower(&self, ranks: u32, packets: u32) -> Vec<Vec<TaskStep>> {
        let p = ranks as usize;
        let mut scripts: Vec<Vec<TaskStep>> = vec![Vec::new(); p];
        match self {
            CollectiveKind::AllToAll => {
                for round in 1..p {
                    for (r, script) in scripts.iter_mut().enumerate() {
                        script.push(TaskStep {
                            sends: vec![(((r + round) % p) as u32, packets)],
                            expected_packets: packets,
                        });
                    }
                }
            }
            CollectiveKind::AllReduce(AllReduceAlgorithm::Ring) => {
                // saturating: degenerate rank counts (0 or 1) lower to
                // empty/ step-free scripts instead of underflowing
                for _ in 0..2 * p.saturating_sub(1) {
                    for (r, script) in scripts.iter_mut().enumerate() {
                        script.push(TaskStep {
                            sends: vec![(((r + 1) % p) as u32, packets)],
                            expected_packets: packets,
                        });
                    }
                }
            }
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling) => {
                // m = largest power of two <= p; ranks m..p are folded into
                // partner r-m for the core rounds
                let m = if p == 0 { 0 } else { prev_power_of_two(p) };
                let extras = p - m;
                if extras > 0 {
                    for (r, script) in scripts.iter_mut().enumerate() {
                        let (sends, expected) = if r >= m {
                            (vec![((r - m) as u32, packets)], 0)
                        } else if r < extras {
                            (Vec::new(), packets)
                        } else {
                            (Vec::new(), 0)
                        };
                        script.push(TaskStep {
                            sends,
                            expected_packets: expected,
                        });
                    }
                }
                let mut distance = 1;
                while distance < m {
                    for (r, script) in scripts.iter_mut().enumerate() {
                        let (sends, expected) = if r < m {
                            (vec![((r ^ distance) as u32, packets)], packets)
                        } else {
                            (Vec::new(), 0)
                        };
                        script.push(TaskStep {
                            sends,
                            expected_packets: expected,
                        });
                    }
                    distance *= 2;
                }
                if extras > 0 {
                    for (r, script) in scripts.iter_mut().enumerate() {
                        let (sends, expected) = if r < extras {
                            (vec![((r + m) as u32, packets)], 0)
                        } else if r >= m {
                            (Vec::new(), packets)
                        } else {
                            (Vec::new(), 0)
                        };
                        script.push(TaskStep {
                            sends,
                            expected_packets: expected,
                        });
                    }
                }
            }
            CollectiveKind::Barrier => {
                let mut distance = 1;
                while distance < p {
                    for (r, script) in scripts.iter_mut().enumerate() {
                        script.push(TaskStep {
                            sends: vec![(((r + distance) % p) as u32, packets)],
                            expected_packets: packets,
                        });
                    }
                    distance *= 2;
                }
            }
            CollectiveKind::SweepNeighbors => {
                for (r, script) in scripts.iter_mut().enumerate() {
                    let mut sends = Vec::new();
                    let mut expected = 0;
                    if r > 0 {
                        sends.push(((r - 1) as u32, packets));
                        expected += packets;
                    }
                    if r + 1 < p {
                        sends.push(((r + 1) as u32, packets));
                        expected += packets;
                    }
                    script.push(TaskStep {
                        sends,
                        expected_packets: expected,
                    });
                }
            }
        }
        scripts
    }
}

/// Largest power of two `<= n` (`n >= 1`).
fn prev_power_of_two(n: usize) -> usize {
    let mut m = 1;
    while m * 2 <= n {
        m *= 2;
    }
    m
}

/// One dependency-gated step of a rank's script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskStep {
    /// Messages this rank injects when the step starts: `(destination rank,
    /// packet count)`. Multiple entries to the same destination are allowed
    /// and additive.
    pub sends: Vec<(u32, u32)>,
    /// Packets addressed to this rank in this step (across all senders) that
    /// must arrive before the step completes.
    pub expected_packets: u32,
}

impl TaskStep {
    /// Total packets this step injects.
    pub fn send_packets(&self) -> u32 {
        self.sends.iter().map(|&(_, n)| n).sum()
    }
}

/// How ranks map onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankPlacement {
    /// Rank `r` runs on node `r`: consecutive ranks share routers and
    /// groups, so ring/neighbor traffic stays local.
    Block,
    /// Consecutive ranks are spread round-robin across the `g` groups:
    /// rank `r` runs on node `(r mod g) * s + r / g` with `s` nodes per
    /// group — neighbor exchanges become global traffic, the adversarial
    /// placement for a Dragonfly.
    GroupSpread,
}

impl RankPlacement {
    /// Node index hosting `rank`, for a topology with `groups` groups of
    /// `nodes_per_group` nodes. The map is injective for
    /// `rank < groups * nodes_per_group`.
    pub fn node_of_rank(&self, rank: u32, groups: u32, nodes_per_group: u32) -> u32 {
        match self {
            RankPlacement::Block => rank,
            RankPlacement::GroupSpread => (rank % groups) * nodes_per_group + rank / groups,
        }
    }
}

/// A multi-step application workload: a sequence of collectives executed by
/// `ranks` ranks, each message `packets_per_message` packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskWorkload {
    /// Number of ranks (each mapped onto one distinct node).
    pub ranks: u32,
    /// Rank-to-node mapping.
    pub placement: RankPlacement,
    /// Collectives executed in order; each is globally ordered after the
    /// previous one through its own dependency structure plus the step
    /// gating (a rank enters collective `i+1` only after finishing its part
    /// of collective `i` — ranks may skew, the dependencies keep it sound).
    pub sequence: Vec<CollectiveKind>,
    /// Packets per logical message.
    pub packets_per_message: u32,
}

impl TaskWorkload {
    /// A single-collective workload with block placement.
    pub fn single(kind: CollectiveKind, ranks: u32, packets_per_message: u32) -> Self {
        TaskWorkload {
            ranks,
            placement: RankPlacement::Block,
            sequence: vec![kind],
            packets_per_message,
        }
    }

    /// Use the given placement (builder style).
    pub fn with_placement(mut self, placement: RankPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Lower the whole sequence into per-rank scripts (collectives
    /// concatenated in order). `scripts[r].len()` is identical for all `r`.
    pub fn lower(&self) -> Vec<Vec<TaskStep>> {
        let mut scripts: Vec<Vec<TaskStep>> = vec![Vec::new(); self.ranks as usize];
        for kind in &self.sequence {
            for (rank, steps) in kind
                .lower(self.ranks, self.packets_per_message)
                .into_iter()
                .enumerate()
            {
                scripts[rank].extend(steps);
            }
        }
        scripts
    }

    /// Total steps per rank across the sequence.
    pub fn total_steps(&self) -> usize {
        self.sequence
            .iter()
            .map(|k| match k {
                CollectiveKind::AllToAll => (self.ranks as usize).saturating_sub(1),
                CollectiveKind::AllReduce(AllReduceAlgorithm::Ring) => {
                    2 * (self.ranks as usize).saturating_sub(1)
                }
                CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling) => {
                    let p = self.ranks as usize;
                    if p == 0 {
                        return 0;
                    }
                    let m = prev_power_of_two(p);
                    let core = m.trailing_zeros() as usize;
                    if p == m {
                        core
                    } else {
                        core + 2
                    }
                }
                CollectiveKind::Barrier => {
                    let p = self.ranks as usize;
                    let mut rounds = 0;
                    let mut d = 1;
                    while d < p {
                        rounds += 1;
                        d *= 2;
                    }
                    rounds
                }
                CollectiveKind::SweepNeighbors => 1,
            })
            .sum()
    }

    /// Total packets the workload injects across all ranks and steps.
    pub fn total_packets(&self) -> u64 {
        self.lower()
            .iter()
            .flat_map(|script| script.iter())
            .map(|s| s.send_packets() as u64)
            .sum()
    }

    /// Stable label for tables and corpus keys.
    pub fn label(&self) -> String {
        let kinds: Vec<&str> = self.sequence.iter().map(|k| k.label()).collect();
        format!("{}x{}", kinds.join("+"), self.ranks)
    }

    /// Check the workload against a topology of `groups * nodes_per_group`
    /// nodes. Errors name the offending field.
    pub fn validate(&self, groups: u32, nodes_per_group: u32) -> Result<(), String> {
        let nodes = groups * nodes_per_group;
        if self.ranks < 2 {
            return Err(format!(
                "a workload needs at least 2 ranks, got {}",
                self.ranks
            ));
        }
        if self.ranks > nodes {
            return Err(format!(
                "workload has {} ranks but the topology only has {nodes} nodes",
                self.ranks
            ));
        }
        if self.sequence.is_empty() {
            return Err("a workload needs at least one collective".into());
        }
        if self.packets_per_message == 0 {
            return Err("packets_per_message must be at least 1".into());
        }
        validate_scripts(&self.lower())
    }
}

/// Check the global conservation property of lowered scripts: every step's
/// sends to rank `r`, summed over all ranks, must equal what `r` expects in
/// that step, and all ranks must have equally long scripts.
pub fn validate_scripts(scripts: &[Vec<TaskStep>]) -> Result<(), String> {
    let p = scripts.len();
    let steps = scripts.first().map_or(0, |s| s.len());
    for (r, script) in scripts.iter().enumerate() {
        if script.len() != steps {
            return Err(format!(
                "rank {r} has {} steps, rank 0 has {steps}",
                script.len()
            ));
        }
    }
    for step in 0..steps {
        let mut incoming = vec![0u64; p];
        for script in scripts {
            for &(dst, n) in &script[step].sends {
                if dst as usize >= p {
                    return Err(format!("step {step} sends to nonexistent rank {dst}"));
                }
                incoming[dst as usize] += n as u64;
            }
        }
        for (r, script) in scripts.iter().enumerate() {
            if incoming[r] != script[step].expected_packets as u64 {
                return Err(format!(
                    "step {step}: rank {r} expects {} packets but the other \
                     ranks send it {}",
                    script[step].expected_packets, incoming[r]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [CollectiveKind; 5] = [
        CollectiveKind::AllToAll,
        CollectiveKind::AllReduce(AllReduceAlgorithm::Ring),
        CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
        CollectiveKind::Barrier,
        CollectiveKind::SweepNeighbors,
    ];

    #[test]
    fn every_collective_lowers_to_conserving_scripts_at_any_rank_count() {
        for kind in KINDS {
            for ranks in 2..=33u32 {
                let scripts = kind.lower(ranks, 3);
                assert_eq!(scripts.len(), ranks as usize);
                validate_scripts(&scripts).unwrap_or_else(|e| {
                    panic!("{} at {ranks} ranks: {e}", kind.label());
                });
            }
        }
    }

    #[test]
    fn total_steps_matches_the_lowering() {
        for kind in KINDS {
            for ranks in [2u32, 5, 8, 13, 16, 31] {
                let w = TaskWorkload::single(kind, ranks, 1);
                let scripts = w.lower();
                assert_eq!(
                    scripts[0].len(),
                    w.total_steps(),
                    "{} at {ranks} ranks",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn all_to_all_sends_to_every_peer_exactly_once() {
        let p = 7u32;
        let scripts = CollectiveKind::AllToAll.lower(p, 2);
        for (r, script) in scripts.iter().enumerate() {
            let mut dsts: Vec<u32> = script
                .iter()
                .flat_map(|s| s.sends.iter().map(|&(d, _)| d))
                .collect();
            dsts.sort_unstable();
            let expected: Vec<u32> = (0..p).filter(|&d| d != r as u32).collect();
            assert_eq!(dsts, expected, "rank {r} must hit every other rank once");
        }
    }

    #[test]
    fn ring_all_reduce_has_bandwidth_optimal_volume() {
        let p = 9u32;
        let w = TaskWorkload::single(CollectiveKind::AllReduce(AllReduceAlgorithm::Ring), p, 1);
        // 2(p-1) messages per rank
        assert_eq!(w.total_packets(), (2 * (p - 1) * p) as u64);
    }

    #[test]
    fn recursive_doubling_handles_non_powers_of_two() {
        for p in [2usize, 3, 4, 6, 8, 12, 16, 23] {
            let kind = CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling);
            let scripts = kind.lower(p as u32, 1);
            validate_scripts(&scripts).unwrap();
            let m = prev_power_of_two(p);
            let expected_steps = if p == m {
                m.trailing_zeros() as usize
            } else {
                m.trailing_zeros() as usize + 2
            };
            assert_eq!(scripts[0].len(), expected_steps, "p = {p}");
            // core ranks exchange in every core round; surplus ranks only
            // speak in the fold/unfold steps
            if p != m {
                let surplus = &scripts[m];
                let speaking = surplus
                    .iter()
                    .filter(|s| !s.sends.is_empty() || s.expected_packets > 0)
                    .count();
                assert_eq!(speaking, 2, "surplus rank speaks only in fold/unfold");
            }
        }
    }

    #[test]
    fn barrier_rounds_are_logarithmic() {
        let scripts = CollectiveKind::Barrier.lower(20, 1);
        assert_eq!(scripts[0].len(), 5); // ceil(log2 20)
        for script in &scripts {
            for step in script {
                assert_eq!(step.send_packets(), 1);
                assert_eq!(step.expected_packets, 1);
            }
        }
    }

    #[test]
    fn sweep_edge_ranks_have_one_neighbor() {
        let scripts = CollectiveKind::SweepNeighbors.lower(6, 4);
        assert_eq!(scripts[0][0].sends, vec![(1, 4)]);
        assert_eq!(scripts[0][0].expected_packets, 4);
        assert_eq!(scripts[5][0].sends, vec![(4, 4)]);
        assert_eq!(scripts[3][0].sends, vec![(2, 4), (4, 4)]);
        assert_eq!(scripts[3][0].expected_packets, 8);
    }

    #[test]
    fn group_spread_placement_is_injective_and_spreads_neighbors() {
        let (groups, per_group) = (9, 8);
        let mut seen = std::collections::BTreeSet::new();
        for rank in 0..groups * per_group {
            let node = RankPlacement::GroupSpread.node_of_rank(rank, groups, per_group);
            assert!(node < groups * per_group);
            assert!(seen.insert(node), "rank {rank} collides");
        }
        // consecutive ranks land in different groups
        let n0 = RankPlacement::GroupSpread.node_of_rank(0, groups, per_group);
        let n1 = RankPlacement::GroupSpread.node_of_rank(1, groups, per_group);
        assert_ne!(n0 / per_group, n1 / per_group);
    }

    #[test]
    fn validation_rejects_bad_workloads() {
        let ok = TaskWorkload::single(CollectiveKind::Barrier, 8, 1);
        assert!(ok.validate(9, 8).is_ok());
        assert!(TaskWorkload::single(CollectiveKind::Barrier, 1, 1)
            .validate(9, 8)
            .is_err());
        assert!(TaskWorkload::single(CollectiveKind::Barrier, 100, 1)
            .validate(9, 8)
            .is_err());
        assert!(TaskWorkload::single(CollectiveKind::Barrier, 8, 0)
            .validate(9, 8)
            .is_err());
        let empty = TaskWorkload {
            ranks: 8,
            placement: RankPlacement::Block,
            sequence: Vec::new(),
            packets_per_message: 1,
        };
        assert!(empty.validate(9, 8).is_err());
    }

    #[test]
    fn multi_collective_sequences_concatenate() {
        let w = TaskWorkload {
            ranks: 8,
            placement: RankPlacement::Block,
            sequence: vec![
                CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling),
                CollectiveKind::Barrier,
                CollectiveKind::AllToAll,
            ],
            packets_per_message: 2,
        };
        let scripts = w.lower();
        validate_scripts(&scripts).unwrap();
        assert_eq!(scripts[0].len(), 3 + 3 + 7);
        assert_eq!(w.total_steps(), 13);
    }
}
