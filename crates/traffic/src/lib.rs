//! # df-traffic — synthetic traffic generation
//!
//! The paper evaluates with synthetic traffic: every node generates packets
//! according to a Bernoulli process with a configurable injection probability
//! (in phits/(node·cycle)), and the destination of each packet follows a
//! *traffic pattern*:
//!
//! * **UN** — uniform random: destination chosen uniformly among all other
//!   nodes,
//! * **ADV+i** — adversarial: every node of group `G` sends to a random node
//!   of group `G + i`, which saturates the single global link between the two
//!   groups under minimal routing (`ADV+1`), and additionally the local links
//!   towards the gateway router when `i = h` (`ADV+h`),
//! * **mixed** — each packet is adversarial with probability `1-f` and
//!   uniform with probability `f` (Figure 6),
//! * **transient** — the pattern changes at a given cycle (Figures 7–9).
//!
//! The module separates *what* destination a packet gets ([`pattern`]) from
//! *when* packets are generated ([`injection`]) and from *how the pattern
//! changes over time* ([`schedule`]).

#![warn(missing_docs)]

pub mod injection;
pub mod pattern;
pub mod schedule;

pub use injection::BernoulliInjector;
pub use pattern::{PatternKind, TrafficPattern};
pub use schedule::{PatternPhase, TrafficSchedule};
