//! # df-traffic — synthetic traffic generation
//!
//! The paper evaluates with synthetic traffic: every node generates packets
//! according to a Bernoulli process with a configurable injection probability
//! (in phits/(node·cycle)), and the destination of each packet follows a
//! *traffic pattern*:
//!
//! * **UN** — uniform random: destination chosen uniformly among all other
//!   nodes,
//! * **ADV+i** — adversarial: every node of group `G` sends to a random node
//!   of group `G + i`, which saturates the single global link between the two
//!   groups under minimal routing (`ADV+1`), and additionally the local links
//!   towards the gateway router when `i = h` (`ADV+h`),
//! * **mixed** — each packet is adversarial with probability `1-f` and
//!   uniform with probability `f` (Figure 6),
//! * **permutation / bit-complement / bit-reversal** — fixed-point-free
//!   bijective destination maps that concentrate load on static paths,
//! * **hotspot** — a weighted split between a small set of hot destinations
//!   and background uniform traffic,
//! * **group-local** — a locality mix between intra-group and inter-group
//!   destinations,
//! * **transient** — the pattern changes at a given cycle (Figures 7–9).
//!
//! Packet timing is equally configurable: the paper's memoryless Bernoulli
//! process, a Markov on/off bursty process, or a linear load ramp
//! ([`InjectionKind`]).
//!
//! The module separates *what* destination a packet gets ([`pattern`]) from
//! *when* packets are generated ([`injection`]) and from *how the pattern
//! changes over time* ([`schedule`]).

#![warn(missing_docs)]

pub mod collective;
pub mod injection;
pub mod job;
pub mod pattern;
pub mod schedule;

pub use collective::{
    validate_scripts, AllReduceAlgorithm, CollectiveKind, RankPlacement, TaskStep, TaskWorkload,
};
pub use injection::{BernoulliInjector, InjectionKind, Injector};
pub use job::{validate_job_disjointness, JobPlacement, JobSpec};
pub use pattern::{PatternKind, TrafficPattern};
pub use schedule::{PatternPhase, TrafficSchedule};
