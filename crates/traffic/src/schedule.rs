//! Time-varying traffic: pattern schedules for transient experiments.
//!
//! Figures 7, 8 and 9 of the paper warm the network up with uniform traffic
//! and switch to ADV+1 at cycle 0, then observe how quickly each routing
//! mechanism adapts. A [`TrafficSchedule`] is an ordered list of phases, each
//! phase being a pattern (and optionally a different offered load) active
//! from its start cycle until the next phase begins.

use df_topology::AnyTopology;
use serde::{Deserialize, Serialize};

use crate::pattern::{PatternKind, TrafficPattern};
use df_model::Cycle;

/// One phase of a traffic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternPhase {
    /// First cycle (inclusive) at which this phase is active.
    pub start: Cycle,
    /// Traffic pattern of the phase.
    pub pattern: PatternKind,
    /// Offered load override for the phase; `None` keeps the experiment's
    /// base load.
    pub load: Option<f64>,
}

/// A piecewise-constant traffic schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSchedule {
    phases: Vec<PatternPhase>,
}

impl TrafficSchedule {
    /// A schedule with a single, constant pattern.
    pub fn constant(pattern: PatternKind) -> Self {
        TrafficSchedule {
            phases: vec![PatternPhase {
                start: 0,
                pattern,
                load: None,
            }],
        }
    }

    /// The paper's transient scenario: `first` until `switch_at`, then
    /// `second` (same offered load throughout).
    pub fn switch_at(first: PatternKind, second: PatternKind, switch_at: Cycle) -> Self {
        TrafficSchedule {
            phases: vec![
                PatternPhase {
                    start: 0,
                    pattern: first,
                    load: None,
                },
                PatternPhase {
                    start: switch_at,
                    pattern: second,
                    load: None,
                },
            ],
        }
    }

    /// Build an arbitrary schedule from phases. Phases are sorted by start
    /// cycle; the first phase is clamped to start at cycle 0.
    pub fn from_phases(mut phases: Vec<PatternPhase>) -> Self {
        assert!(!phases.is_empty(), "a schedule needs at least one phase");
        phases.sort_by_key(|p| p.start);
        phases[0].start = 0;
        TrafficSchedule { phases }
    }

    /// The phases, ordered by start cycle.
    pub fn phases(&self) -> &[PatternPhase] {
        &self.phases
    }

    /// The phase active at `cycle`.
    pub fn phase_at(&self, cycle: Cycle) -> &PatternPhase {
        let idx = match self.phases.binary_search_by_key(&cycle, |p| p.start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        &self.phases[idx]
    }

    /// The pattern kind active at `cycle`.
    pub fn pattern_at(&self, cycle: Cycle) -> PatternKind {
        self.phase_at(cycle).pattern
    }

    /// Cycles at which the pattern changes (start of every phase after the
    /// first).
    pub fn change_points(&self) -> Vec<Cycle> {
        self.phases.iter().skip(1).map(|p| p.start).collect()
    }

    /// Materialise every phase's pattern against a topology, so the simulator
    /// can switch without re-allocating. Returned in phase order.
    pub fn build_patterns(&self, topo: impl Into<AnyTopology>) -> Vec<TrafficPattern> {
        let topo = topo.into();
        self.phases.iter().map(|p| p.pattern.build(topo)).collect()
    }

    /// Index of the phase active at `cycle` (into [`phases`](Self::phases)
    /// and the vector returned by [`build_patterns`](Self::build_patterns)).
    pub fn phase_index_at(&self, cycle: Cycle) -> usize {
        match self.phases.binary_search_by_key(&cycle, |p| p.start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_topology::{Dragonfly, DragonflyParams};

    #[test]
    fn constant_schedule_never_changes() {
        let s = TrafficSchedule::constant(PatternKind::Uniform);
        assert_eq!(s.pattern_at(0), PatternKind::Uniform);
        assert_eq!(s.pattern_at(1_000_000), PatternKind::Uniform);
        assert!(s.change_points().is_empty());
    }

    #[test]
    fn switch_at_changes_exactly_at_the_boundary() {
        let s = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            5_000,
        );
        assert_eq!(s.pattern_at(0), PatternKind::Uniform);
        assert_eq!(s.pattern_at(4_999), PatternKind::Uniform);
        assert_eq!(s.pattern_at(5_000), PatternKind::Adversarial { offset: 1 });
        assert_eq!(
            s.pattern_at(9_999_999),
            PatternKind::Adversarial { offset: 1 }
        );
        assert_eq!(s.change_points(), vec![5_000]);
    }

    #[test]
    fn phases_are_sorted_and_clamped() {
        let s = TrafficSchedule::from_phases(vec![
            PatternPhase {
                start: 500,
                pattern: PatternKind::Adversarial { offset: 2 },
                load: Some(0.1),
            },
            PatternPhase {
                start: 100,
                pattern: PatternKind::Uniform,
                load: None,
            },
        ]);
        assert_eq!(s.phases()[0].pattern, PatternKind::Uniform);
        assert_eq!(s.phases()[0].start, 0, "first phase clamps to cycle 0");
        assert_eq!(s.phase_at(499).pattern, PatternKind::Uniform);
        assert_eq!(s.phase_at(500).load, Some(0.1));
    }

    #[test]
    fn phase_index_matches_built_patterns() {
        let s = TrafficSchedule::switch_at(
            PatternKind::Uniform,
            PatternKind::Adversarial { offset: 1 },
            1_000,
        );
        let topo = Dragonfly::new(DragonflyParams::small());
        let patterns = s.build_patterns(topo);
        assert_eq!(patterns.len(), 2);
        assert_eq!(s.phase_index_at(0), 0);
        assert_eq!(s.phase_index_at(999), 0);
        assert_eq!(s.phase_index_at(1_000), 1);
        assert_eq!(patterns[1].kind(), PatternKind::Adversarial { offset: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_rejected() {
        let _ = TrafficSchedule::from_phases(vec![]);
    }
}
