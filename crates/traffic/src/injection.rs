//! Packet generation: the per-node Bernoulli injection process.

use df_engine::DeterministicRng;
use df_model::{Cycle, Packet, PacketId};
use df_topology::NodeId;

use crate::pattern::TrafficPattern;

/// Bernoulli packet generator for one node.
///
/// Each cycle the node generates a packet with probability
/// `offered_load / packet_size` (the paper expresses load in
/// phits/(node·cycle), and a packet carries `packet_size` phits), so the
/// long-run offered load in phits per cycle equals `offered_load`.
#[derive(Debug, Clone)]
pub struct BernoulliInjector {
    node: NodeId,
    packet_size_phits: u32,
    injection_probability: f64,
    rng: DeterministicRng,
    generated: u64,
}

impl BernoulliInjector {
    /// Create a generator for `node` with the given offered load in
    /// phits/(node·cycle) and packet size in phits. `rng` must be a stream
    /// dedicated to this node (see [`DeterministicRng::split`]).
    pub fn new(node: NodeId, offered_load: f64, packet_size_phits: u32, rng: DeterministicRng) -> Self {
        assert!(packet_size_phits > 0, "packets must have at least one phit");
        assert!(
            (0.0..=1.0).contains(&offered_load),
            "offered load must be in [0, 1] phits/(node*cycle), got {offered_load}"
        );
        BernoulliInjector {
            node,
            packet_size_phits,
            injection_probability: offered_load / packet_size_phits as f64,
            rng,
            generated: 0,
        }
    }

    /// The node this injector generates traffic for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Change the offered load (phits/(node·cycle)) on the fly; used by
    /// experiments that ramp load.
    pub fn set_offered_load(&mut self, offered_load: f64) {
        assert!((0.0..=1.0).contains(&offered_load));
        self.injection_probability = offered_load / self.packet_size_phits as f64;
    }

    /// Advance one cycle: possibly generate a packet destined according to
    /// `pattern`. `next_id` provides the globally unique packet identifier.
    pub fn tick(
        &mut self,
        now: Cycle,
        pattern: &TrafficPattern,
        next_id: &mut u64,
    ) -> Option<Packet> {
        if !self.rng.bernoulli(self.injection_probability) {
            return None;
        }
        let dst = pattern.destination(self.node, &mut self.rng);
        let id = PacketId(*next_id);
        *next_id += 1;
        self.generated += 1;
        Some(Packet::new(id, self.node, dst, self.packet_size_phits, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use df_topology::{Dragonfly, DragonflyParams};

    fn pattern() -> TrafficPattern {
        PatternKind::Uniform.build(Dragonfly::new(DragonflyParams::small()))
    }

    #[test]
    fn generation_rate_matches_offered_load() {
        let pat = pattern();
        let load = 0.4; // phits per node per cycle
        let mut inj = BernoulliInjector::new(NodeId(0), load, 8, DeterministicRng::new(11));
        let mut next_id = 0;
        let cycles = 200_000u64;
        let mut phits = 0u64;
        for now in 0..cycles {
            if let Some(p) = inj.tick(now, &pat, &mut next_id) {
                phits += p.size_phits as u64;
            }
        }
        let rate = phits as f64 / cycles as f64;
        assert!(
            (rate - load).abs() < 0.02,
            "measured rate {rate} too far from offered {load}"
        );
        assert_eq!(inj.generated(), next_id);
    }

    #[test]
    fn zero_load_generates_nothing() {
        let pat = pattern();
        let mut inj = BernoulliInjector::new(NodeId(0), 0.0, 8, DeterministicRng::new(1));
        let mut next_id = 0;
        for now in 0..10_000 {
            assert!(inj.tick(now, &pat, &mut next_id).is_none());
        }
    }

    #[test]
    fn full_load_generates_every_packet_interval() {
        let pat = pattern();
        // load 1.0 phit/cycle with 1-phit packets = one packet per cycle
        let mut inj = BernoulliInjector::new(NodeId(0), 1.0, 1, DeterministicRng::new(1));
        let mut next_id = 0;
        let packets = (0..1000).filter(|&now| inj.tick(now, &pat, &mut next_id).is_some()).count();
        assert_eq!(packets, 1000);
    }

    #[test]
    fn packets_carry_generation_metadata() {
        let pat = pattern();
        let mut inj = BernoulliInjector::new(NodeId(5), 1.0, 8, DeterministicRng::new(3));
        let mut next_id = 100;
        // probability 1/8 per cycle: run until one is generated
        let mut produced = None;
        for now in 0..1000 {
            if let Some(p) = inj.tick(now, &pat, &mut next_id) {
                produced = Some((now, p));
                break;
            }
        }
        let (now, p) = produced.expect("a packet should eventually be generated");
        assert_eq!(p.src, NodeId(5));
        assert_ne!(p.dst, NodeId(5));
        assert_eq!(p.generated_at, now);
        assert_eq!(p.id, PacketId(100));
        assert_eq!(next_id, 101);
    }

    #[test]
    fn ids_are_unique_across_injectors_sharing_counter() {
        let pat = pattern();
        let mut a = BernoulliInjector::new(NodeId(0), 1.0, 1, DeterministicRng::new(1).split(0));
        let mut b = BernoulliInjector::new(NodeId(1), 1.0, 1, DeterministicRng::new(1).split(1));
        let mut next_id = 0;
        let mut ids = std::collections::HashSet::new();
        for now in 0..100 {
            if let Some(p) = a.tick(now, &pat, &mut next_id) {
                assert!(ids.insert(p.id));
            }
            if let Some(p) = b.tick(now, &pat, &mut next_id) {
                assert!(ids.insert(p.id));
            }
        }
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn set_offered_load_takes_effect() {
        let pat = pattern();
        let mut inj = BernoulliInjector::new(NodeId(0), 0.0, 8, DeterministicRng::new(2));
        let mut next_id = 0;
        for now in 0..1000 {
            assert!(inj.tick(now, &pat, &mut next_id).is_none());
        }
        inj.set_offered_load(1.0);
        let generated = (1000..9000)
            .filter(|&now| inj.tick(now, &pat, &mut next_id).is_some())
            .count();
        // probability 1/8 per cycle over 8000 cycles ≈ 1000 packets
        assert!(generated > 800 && generated < 1200, "generated {generated}");
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn overload_is_rejected() {
        let _ = BernoulliInjector::new(NodeId(0), 1.5, 8, DeterministicRng::new(0));
    }
}
