//! Packet generation: per-node injection processes.
//!
//! Three processes are available, selected by [`InjectionKind`]:
//!
//! * **Bernoulli** — the paper's memoryless injector: each cycle a packet is
//!   generated with probability `offered_load / packet_size`.
//! * **Bursty** — a two-state Markov (on/off) process: while ON the node
//!   injects at an elevated rate, while OFF it is silent. The per-cycle
//!   transition probabilities are `1/mean_on` (ON→OFF) and `1/mean_off`
//!   (OFF→ON), and the ON-state injection probability is scaled by the
//!   inverse duty cycle so the *long-run* offered load still equals the
//!   configured one (clamped to one packet per cycle, so very high loads
//!   with a short duty cycle saturate below the nominal load).
//! * **Ramp** — a Bernoulli process whose load ramps linearly from
//!   `start_fraction · offered_load` at cycle 0 to the full offered load at
//!   `ramp_cycles`, then stays constant.
//!
//! [`Injector`] implements all three behind one `tick` interface;
//! [`BernoulliInjector`] is a thin wrapper fixing
//! [`InjectionKind::Bernoulli`], kept for its narrower API. The Bernoulli
//! mode draws the exact random sequence of the original standalone
//! implementation (one trial per tick, a destination draw only on success),
//! so the refactor moved no golden fingerprint.

use df_engine::DeterministicRng;
use df_model::{Cycle, Packet, PacketId};
use df_topology::NodeId;
use serde::{Deserialize, Serialize};

use crate::pattern::TrafficPattern;

/// Declarative description of an injection process, used in configuration
/// files and experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InjectionKind {
    /// Memoryless Bernoulli injection (the paper's process). The default.
    #[default]
    Bernoulli,
    /// Markov on/off bursty injection.
    Bursty {
        /// Mean ON-phase length in cycles (must be ≥ 1).
        mean_on: f64,
        /// Mean OFF-phase length in cycles (must be ≥ 1).
        mean_off: f64,
    },
    /// Linear load ramp.
    Ramp {
        /// Fraction of the offered load applied at cycle 0 (in `[0, 1]`).
        start_fraction: f64,
        /// Cycle at which the full offered load is reached (must be ≥ 1).
        ramp_cycles: u64,
    },
}

impl InjectionKind {
    /// Short name used in result tables ("bernoulli", "bursty(...)", ...).
    pub fn label(&self) -> String {
        match self {
            InjectionKind::Bernoulli => "bernoulli".to_string(),
            InjectionKind::Bursty { mean_on, mean_off } => {
                format!("bursty({mean_on:.0}on/{mean_off:.0}off)")
            }
            InjectionKind::Ramp {
                start_fraction,
                ramp_cycles,
            } => format!("ramp({:.0}%->{ramp_cycles})", start_fraction * 100.0),
        }
    }

    /// Check the process parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            InjectionKind::Bernoulli => Ok(()),
            InjectionKind::Bursty { mean_on, mean_off } => {
                if mean_on < 1.0 || !mean_on.is_finite() {
                    return Err(format!("bursty mean_on must be ≥ 1 cycle, got {mean_on}"));
                }
                if mean_off < 1.0 || !mean_off.is_finite() {
                    return Err(format!("bursty mean_off must be ≥ 1 cycle, got {mean_off}"));
                }
                Ok(())
            }
            InjectionKind::Ramp {
                start_fraction,
                ramp_cycles,
            } => {
                if !(0.0..=1.0).contains(&start_fraction) {
                    return Err(format!(
                        "ramp start fraction must be in [0,1], got {start_fraction}"
                    ));
                }
                if ramp_cycles == 0 {
                    return Err("ramp must take at least one cycle".into());
                }
                Ok(())
            }
        }
    }

    /// The ON-state duty cycle of the process (1 for non-bursty kinds).
    pub fn duty_cycle(&self) -> f64 {
        match *self {
            InjectionKind::Bursty { mean_on, mean_off } => mean_on / (mean_on + mean_off),
            _ => 1.0,
        }
    }
}

/// Packet generator for one node, implementing every [`InjectionKind`].
#[derive(Debug, Clone)]
pub struct Injector {
    node: NodeId,
    kind: InjectionKind,
    packet_size_phits: u32,
    offered_load: f64,
    rng: DeterministicRng,
    generated: u64,
    /// Current Markov state for [`InjectionKind::Bursty`] (always `true`
    /// otherwise).
    on: bool,
}

impl Injector {
    /// Create a generator for `node` with the given process, offered load in
    /// phits/(node·cycle) and packet size in phits. `rng` must be a stream
    /// dedicated to this node (see [`DeterministicRng::split`]).
    pub fn new(
        node: NodeId,
        kind: InjectionKind,
        offered_load: f64,
        packet_size_phits: u32,
        mut rng: DeterministicRng,
    ) -> Self {
        assert!(packet_size_phits > 0, "packets must have at least one phit");
        assert!(
            (0.0..=1.0).contains(&offered_load),
            "offered load must be in [0, 1] phits/(node*cycle), got {offered_load}"
        );
        kind.validate().expect("invalid injection process");
        // start bursty injectors in their stationary distribution so the
        // measured load is unbiased from cycle 0
        let on = match kind {
            InjectionKind::Bursty { .. } => rng.bernoulli(kind.duty_cycle()),
            _ => true,
        };
        Injector {
            node,
            kind,
            packet_size_phits,
            offered_load,
            rng,
            generated: 0,
            on,
        }
    }

    /// The node this injector generates traffic for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The injection process.
    pub fn kind(&self) -> InjectionKind {
        self.kind
    }

    /// Number of packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Change the offered load (phits/(node·cycle)) on the fly; used by
    /// phased scenarios and by [`drain`](../df_sim/struct.Network.html).
    pub fn set_offered_load(&mut self, offered_load: f64) {
        assert!((0.0..=1.0).contains(&offered_load));
        self.offered_load = offered_load;
    }

    /// The probability of generating a packet this cycle, given the process
    /// state (after any Markov transition).
    fn injection_probability(&self, now: Cycle) -> f64 {
        let base = self.offered_load / self.packet_size_phits as f64;
        match self.kind {
            InjectionKind::Bernoulli => base,
            InjectionKind::Bursty { .. } => (base / self.kind.duty_cycle()).min(1.0),
            InjectionKind::Ramp {
                start_fraction,
                ramp_cycles,
            } => {
                let progress = (now as f64 / ramp_cycles as f64).min(1.0);
                base * (start_fraction + (1.0 - start_fraction) * progress)
            }
        }
    }

    /// Advance one cycle: possibly generate a packet destined according to
    /// `pattern`. `next_id` provides the globally unique packet identifier.
    pub fn tick(
        &mut self,
        now: Cycle,
        pattern: &TrafficPattern,
        next_id: &mut u64,
    ) -> Option<Packet> {
        if let InjectionKind::Bursty { mean_on, mean_off } = self.kind {
            // one transition draw per cycle keeps the stream deterministic
            // regardless of the injection outcome
            let flip = if self.on {
                self.rng.bernoulli(1.0 / mean_on)
            } else {
                self.rng.bernoulli(1.0 / mean_off)
            };
            if flip {
                self.on = !self.on;
            }
            if !self.on {
                return None;
            }
        }
        if !self.rng.bernoulli(self.injection_probability(now)) {
            return None;
        }
        let dst = pattern.destination(self.node, &mut self.rng);
        let id = PacketId(*next_id);
        *next_id += 1;
        self.generated += 1;
        Some(Packet::new(id, self.node, dst, self.packet_size_phits, now))
    }

    /// Serialize the injector's dynamic state (snapshot support). The
    /// static configuration — node, process kind, packet size — is not
    /// written: a restored injector is built from the run configuration
    /// first, then continued from this state.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.f64(self.offered_load);
        let (seed, words) = self.rng.state();
        e.u64(seed);
        for w in words {
            e.u64(w);
        }
        e.u64(self.generated);
        e.bool(self.on);
    }

    /// Continue from a [`save_state`](Self::save_state) capture: the next
    /// [`tick`](Self::tick) behaves bit-identically to the injector the
    /// state was captured from.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let offered_load = d.f64()?;
        if !(0.0..=1.0).contains(&offered_load) {
            return Err(df_engine::CodecError::Invalid(format!(
                "injector offered load {offered_load}"
            )));
        }
        let seed = d.u64()?;
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = d.u64()?;
        }
        self.offered_load = offered_load;
        self.rng = DeterministicRng::from_state(seed, words);
        self.generated = d.u64()?;
        self.on = d.bool()?;
        Ok(())
    }
}

/// Bernoulli packet generator for one node: [`Injector`] fixed to
/// [`InjectionKind::Bernoulli`], kept for its narrower API.
///
/// Each cycle the node generates a packet with probability
/// `offered_load / packet_size` (the paper expresses load in
/// phits/(node·cycle), and a packet carries `packet_size` phits), so the
/// long-run offered load in phits per cycle equals `offered_load`.
#[derive(Debug, Clone)]
pub struct BernoulliInjector(Injector);

impl BernoulliInjector {
    /// Create a generator for `node` with the given offered load in
    /// phits/(node·cycle) and packet size in phits. `rng` must be a stream
    /// dedicated to this node (see [`DeterministicRng::split`]).
    pub fn new(
        node: NodeId,
        offered_load: f64,
        packet_size_phits: u32,
        rng: DeterministicRng,
    ) -> Self {
        BernoulliInjector(Injector::new(
            node,
            InjectionKind::Bernoulli,
            offered_load,
            packet_size_phits,
            rng,
        ))
    }

    /// The node this injector generates traffic for.
    pub fn node(&self) -> NodeId {
        self.0.node()
    }

    /// Number of packets generated so far.
    pub fn generated(&self) -> u64 {
        self.0.generated()
    }

    /// Change the offered load (phits/(node·cycle)) on the fly; used by
    /// experiments that ramp load.
    pub fn set_offered_load(&mut self, offered_load: f64) {
        self.0.set_offered_load(offered_load);
    }

    /// Advance one cycle: possibly generate a packet destined according to
    /// `pattern`. `next_id` provides the globally unique packet identifier.
    pub fn tick(
        &mut self,
        now: Cycle,
        pattern: &TrafficPattern,
        next_id: &mut u64,
    ) -> Option<Packet> {
        self.0.tick(now, pattern, next_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use df_topology::{Dragonfly, DragonflyParams};

    fn pattern() -> TrafficPattern {
        PatternKind::Uniform.build(Dragonfly::new(DragonflyParams::small()))
    }

    #[test]
    fn generation_rate_matches_offered_load() {
        let pat = pattern();
        let load = 0.4; // phits per node per cycle
        let mut inj = BernoulliInjector::new(NodeId(0), load, 8, DeterministicRng::new(11));
        let mut next_id = 0;
        let cycles = 200_000u64;
        let mut phits = 0u64;
        for now in 0..cycles {
            if let Some(p) = inj.tick(now, &pat, &mut next_id) {
                phits += p.size_phits as u64;
            }
        }
        let rate = phits as f64 / cycles as f64;
        assert!(
            (rate - load).abs() < 0.02,
            "measured rate {rate} too far from offered {load}"
        );
        assert_eq!(inj.generated(), next_id);
    }

    #[test]
    fn zero_load_generates_nothing() {
        let pat = pattern();
        let mut inj = BernoulliInjector::new(NodeId(0), 0.0, 8, DeterministicRng::new(1));
        let mut next_id = 0;
        for now in 0..10_000 {
            assert!(inj.tick(now, &pat, &mut next_id).is_none());
        }
    }

    #[test]
    fn full_load_generates_every_packet_interval() {
        let pat = pattern();
        // load 1.0 phit/cycle with 1-phit packets = one packet per cycle
        let mut inj = BernoulliInjector::new(NodeId(0), 1.0, 1, DeterministicRng::new(1));
        let mut next_id = 0;
        let packets = (0..1000)
            .filter(|&now| inj.tick(now, &pat, &mut next_id).is_some())
            .count();
        assert_eq!(packets, 1000);
    }

    #[test]
    fn packets_carry_generation_metadata() {
        let pat = pattern();
        let mut inj = BernoulliInjector::new(NodeId(5), 1.0, 8, DeterministicRng::new(3));
        let mut next_id = 100;
        // probability 1/8 per cycle: run until one is generated
        let mut produced = None;
        for now in 0..1000 {
            if let Some(p) = inj.tick(now, &pat, &mut next_id) {
                produced = Some((now, p));
                break;
            }
        }
        let (now, p) = produced.expect("a packet should eventually be generated");
        assert_eq!(p.src, NodeId(5));
        assert_ne!(p.dst, NodeId(5));
        assert_eq!(p.generated_at, now);
        assert_eq!(p.id, PacketId(100));
        assert_eq!(next_id, 101);
    }

    #[test]
    fn ids_are_unique_across_injectors_sharing_counter() {
        let pat = pattern();
        let mut a = BernoulliInjector::new(NodeId(0), 1.0, 1, DeterministicRng::new(1).split(0));
        let mut b = BernoulliInjector::new(NodeId(1), 1.0, 1, DeterministicRng::new(1).split(1));
        let mut next_id = 0;
        let mut ids = std::collections::HashSet::new();
        for now in 0..100 {
            if let Some(p) = a.tick(now, &pat, &mut next_id) {
                assert!(ids.insert(p.id));
            }
            if let Some(p) = b.tick(now, &pat, &mut next_id) {
                assert!(ids.insert(p.id));
            }
        }
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn set_offered_load_takes_effect() {
        let pat = pattern();
        let mut inj = BernoulliInjector::new(NodeId(0), 0.0, 8, DeterministicRng::new(2));
        let mut next_id = 0;
        for now in 0..1000 {
            assert!(inj.tick(now, &pat, &mut next_id).is_none());
        }
        inj.set_offered_load(1.0);
        let generated = (1000..9000)
            .filter(|&now| inj.tick(now, &pat, &mut next_id).is_some())
            .count();
        // probability 1/8 per cycle over 8000 cycles ≈ 1000 packets
        assert!(generated > 800 && generated < 1200, "generated {generated}");
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn overload_is_rejected() {
        let _ = BernoulliInjector::new(NodeId(0), 1.5, 8, DeterministicRng::new(0));
    }

    // ---- unified Injector ----

    #[test]
    fn bursty_long_run_load_matches_offered_load() {
        let pat = pattern();
        let load = 0.3;
        let mut inj = Injector::new(
            NodeId(0),
            InjectionKind::Bursty {
                mean_on: 50.0,
                mean_off: 150.0,
            },
            load,
            8,
            DeterministicRng::new(4),
        );
        let mut next_id = 0;
        let cycles = 400_000u64;
        let mut phits = 0u64;
        for now in 0..cycles {
            if let Some(p) = inj.tick(now, &pat, &mut next_id) {
                phits += p.size_phits as u64;
            }
        }
        let rate = phits as f64 / cycles as f64;
        assert!(
            (rate - load).abs() < 0.02,
            "bursty long-run rate {rate} too far from offered {load}"
        );
    }

    #[test]
    fn bursty_traffic_is_actually_bursty() {
        // compare the variance of per-window packet counts against Bernoulli:
        // the on/off process must cluster its packets
        let pat = pattern();
        let window = 100u64;
        let windows = 2_000u64;
        let counts = |kind: InjectionKind| -> Vec<u64> {
            let mut inj = Injector::new(NodeId(0), kind, 0.2, 8, DeterministicRng::new(5));
            let mut next_id = 0;
            let mut out = vec![0u64; windows as usize];
            for now in 0..window * windows {
                if inj.tick(now, &pat, &mut next_id).is_some() {
                    out[(now / window) as usize] += 1;
                }
            }
            out
        };
        let variance = |c: &[u64]| -> f64 {
            let mean = c.iter().sum::<u64>() as f64 / c.len() as f64;
            c.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / c.len() as f64
        };
        let bernoulli = counts(InjectionKind::Bernoulli);
        let bursty = counts(InjectionKind::Bursty {
            mean_on: 60.0,
            mean_off: 60.0,
        });
        assert!(
            variance(&bursty) > variance(&bernoulli) * 2.0,
            "bursty window variance {} must exceed Bernoulli's {}",
            variance(&bursty),
            variance(&bernoulli)
        );
    }

    #[test]
    fn ramp_load_grows_then_plateaus() {
        let pat = pattern();
        let mut inj = Injector::new(
            NodeId(0),
            InjectionKind::Ramp {
                start_fraction: 0.0,
                ramp_cycles: 50_000,
            },
            0.8,
            8,
            DeterministicRng::new(6),
        );
        let mut next_id = 0;
        let mut early = 0u64;
        let mut late = 0u64;
        let mut plateau = 0u64;
        for now in 0..150_000u64 {
            if inj.tick(now, &pat, &mut next_id).is_some() {
                match now {
                    0..=24_999 => early += 1,
                    25_000..=49_999 => late += 1,
                    _ => plateau += 1,
                }
            }
        }
        assert!(
            late > early * 2,
            "the second ramp half ({late}) must generate far more than the first ({early})"
        );
        // plateau covers 100k cycles at the full 0.8 load: 0.1 packets/cycle
        let plateau_rate = plateau as f64 / 100_000.0;
        assert!(
            (plateau_rate - 0.1).abs() < 0.01,
            "plateau rate {plateau_rate} should be ~0.1 packets/cycle"
        );
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let pat = pattern();
        let kinds = [
            InjectionKind::Bernoulli,
            InjectionKind::Bursty {
                mean_on: 20.0,
                mean_off: 30.0,
            },
            InjectionKind::Ramp {
                start_fraction: 0.5,
                ramp_cycles: 500,
            },
        ];
        for kind in kinds {
            let run = |seed: u64| -> Vec<(u64, u32)> {
                let mut inj = Injector::new(NodeId(1), kind, 0.4, 8, DeterministicRng::new(seed));
                let mut next_id = 0;
                let mut out = Vec::new();
                for now in 0..5_000 {
                    if let Some(p) = inj.tick(now, &pat, &mut next_id) {
                        out.push((now, p.dst.0));
                    }
                }
                out
            };
            assert_eq!(run(3), run(3), "{} must be reproducible", kind.label());
            assert_ne!(run(3), run(4), "{} must vary with the seed", kind.label());
        }
    }

    #[test]
    fn injection_kind_labels_and_validation() {
        assert_eq!(InjectionKind::Bernoulli.label(), "bernoulli");
        assert_eq!(
            InjectionKind::Bursty {
                mean_on: 20.0,
                mean_off: 60.0
            }
            .label(),
            "bursty(20on/60off)"
        );
        assert_eq!(
            InjectionKind::Ramp {
                start_fraction: 0.25,
                ramp_cycles: 1000
            }
            .label(),
            "ramp(25%->1000)"
        );
        assert!(InjectionKind::Bursty {
            mean_on: 0.5,
            mean_off: 10.0
        }
        .validate()
        .is_err());
        assert!(InjectionKind::Ramp {
            start_fraction: 1.5,
            ramp_cycles: 10
        }
        .validate()
        .is_err());
        assert!(InjectionKind::Ramp {
            start_fraction: 0.5,
            ramp_cycles: 0
        }
        .validate()
        .is_err());
        assert!(InjectionKind::Bernoulli.validate().is_ok());
    }

    #[test]
    fn zero_load_bursty_generates_nothing() {
        let pat = pattern();
        let mut inj = Injector::new(
            NodeId(0),
            InjectionKind::Bursty {
                mean_on: 10.0,
                mean_off: 10.0,
            },
            0.0,
            8,
            DeterministicRng::new(1),
        );
        let mut next_id = 0;
        for now in 0..5_000 {
            assert!(inj.tick(now, &pat, &mut next_id).is_none());
        }
    }
}
