//! Multi-job workloads: several collective applications with distinct
//! placements sharing one network.
//!
//! A [`JobSpec`] wraps a [`TaskWorkload`] with *where* it runs (a
//! [`JobPlacement`]: a base node plus a rank-spreading strategy), *when* it
//! starts (`start_cycle`) and *how fast* its ranks compute between
//! communication steps (`compute_delay`, cycles of modelled computation a
//! rank performs after finishing a step before it may inject the next one —
//! the compute half of a mini-app's compute/communicate alternation, per
//! caminos-lib's `mini_apps`).
//!
//! Placements of concurrent jobs must be node-disjoint; the simulation
//! configuration validates this at build time so an overlap is a
//! `ConfigError`, never a runtime surprise. Jobs layer *over* background
//! stochastic injection: unlike the single-workload mode (which replaces
//! generation entirely), a job set contends both with the other jobs and
//! with whatever synthetic pattern the configuration injects.

use serde::{Deserialize, Serialize};

use crate::collective::{AllReduceAlgorithm, CollectiveKind, RankPlacement, TaskWorkload};

/// Where a job's ranks live: a rank-spreading strategy offset to a base
/// node, so several jobs can use the same strategy on disjoint node ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobPlacement {
    /// How consecutive ranks spread over the topology (relative map).
    pub strategy: RankPlacement,
    /// Node index added to the strategy's relative map: rank `r` runs on
    /// node `base_node + strategy.node_of_rank(r, ..)`.
    pub base_node: u32,
}

impl JobPlacement {
    /// Block placement starting at `base_node` (ranks occupy the contiguous
    /// node range `base_node..base_node + ranks`).
    pub fn block(base_node: u32) -> Self {
        JobPlacement {
            strategy: RankPlacement::Block,
            base_node,
        }
    }

    /// Group-spread placement offset by `base_node`.
    pub fn group_spread(base_node: u32) -> Self {
        JobPlacement {
            strategy: RankPlacement::GroupSpread,
            base_node,
        }
    }

    /// Node hosting `rank` under this placement, for a topology with
    /// `groups` groups of `nodes_per_group` nodes.
    pub fn node_of_rank(&self, rank: u32, groups: u32, nodes_per_group: u32) -> u32 {
        self.base_node + self.strategy.node_of_rank(rank, groups, nodes_per_group)
    }
}

/// One job of a multi-job traffic mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The collective sequence the job's ranks execute. The workload's own
    /// `placement` field is ignored in job mode — [`JobSpec::placement`]
    /// decides where the ranks live.
    pub workload: TaskWorkload,
    /// Rank-to-node mapping for this job.
    pub placement: JobPlacement,
    /// Cycle the job starts executing (ranks are idle before it).
    pub start_cycle: u64,
    /// Cycles of modelled computation a rank performs after completing a
    /// step before it may inject the next step's messages (0 = the pure
    /// communication behaviour of the single-workload mode).
    pub compute_delay: u64,
}

impl JobSpec {
    /// A job starting at cycle 0 with no compute delay.
    pub fn new(workload: TaskWorkload, placement: JobPlacement) -> Self {
        JobSpec {
            workload,
            placement,
            start_cycle: 0,
            compute_delay: 0,
        }
    }

    /// Set the start cycle (builder style).
    pub fn starting_at(mut self, cycle: u64) -> Self {
        self.start_cycle = cycle;
        self
    }

    /// Set the per-step compute delay (builder style).
    pub fn with_compute_delay(mut self, cycles: u64) -> Self {
        self.compute_delay = cycles;
        self
    }

    /// The node set this job's ranks occupy (sorted, for disjointness
    /// checks and reporting).
    pub fn nodes(&self, groups: u32, nodes_per_group: u32) -> Vec<u32> {
        let mut nodes: Vec<u32> = (0..self.workload.ranks)
            .map(|r| self.placement.node_of_rank(r, groups, nodes_per_group))
            .collect();
        nodes.sort_unstable();
        nodes
    }

    /// Stable label for tables, CSV rows and corpus keys.
    pub fn label(&self) -> String {
        format!("{}@{}", self.workload.label(), self.placement.base_node)
    }

    /// Check the job against a topology of `groups * nodes_per_group`
    /// nodes: the workload itself must be valid and every rank's node must
    /// exist. Errors name the offending field.
    pub fn validate(&self, groups: u32, nodes_per_group: u32) -> Result<(), String> {
        self.workload.validate(groups, nodes_per_group)?;
        let num_nodes = groups * nodes_per_group;
        for r in 0..self.workload.ranks {
            let node = self.placement.node_of_rank(r, groups, nodes_per_group);
            if node >= num_nodes {
                return Err(format!(
                    "job {}: rank {r} maps to node {node} but the topology \
                     only has {num_nodes} nodes",
                    self.label()
                ));
            }
        }
        Ok(())
    }
}

/// Check that the node sets of a job list are pairwise disjoint. Returns
/// the first overlapping `(job_a, job_b, node)` as an error string.
pub fn validate_job_disjointness(
    jobs: &[JobSpec],
    groups: u32,
    nodes_per_group: u32,
) -> Result<(), String> {
    let mut owner: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for (i, job) in jobs.iter().enumerate() {
        for node in job.nodes(groups, nodes_per_group) {
            if let Some(&j) = owner.get(&node) {
                return Err(format!(
                    "jobs {} (#{j}) and {} (#{i}) both place a rank on node {node}",
                    jobs[j].label(),
                    job.label()
                ));
            }
            owner.insert(node, i);
        }
    }
    Ok(())
}

impl TaskWorkload {
    /// A mini-app skeleton: `phases` stencil sweep phases, each a halo
    /// exchange ([`CollectiveKind::SweepNeighbors`]) followed by an
    /// all-reduce (the convergence check of an iterative solver), as in
    /// caminos-lib's `mini_apps`. Pair with [`JobSpec::with_compute_delay`]
    /// to model the computation between communication phases.
    pub fn mini_app(
        ranks: u32,
        phases: u32,
        algorithm: AllReduceAlgorithm,
        packets_per_message: u32,
    ) -> Self {
        let mut sequence = Vec::with_capacity(2 * phases as usize);
        for _ in 0..phases {
            sequence.push(CollectiveKind::SweepNeighbors);
            sequence.push(CollectiveKind::AllReduce(algorithm));
        }
        TaskWorkload {
            ranks,
            placement: RankPlacement::Block,
            sequence,
            packets_per_message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::validate_scripts;

    #[test]
    fn job_placement_offsets_the_strategy_map() {
        let p = JobPlacement::block(16);
        assert_eq!(p.node_of_rank(0, 9, 8), 16);
        assert_eq!(p.node_of_rank(5, 9, 8), 21);
        let s = JobPlacement::group_spread(1);
        // GroupSpread rank 1 of (9 groups, 8/group) lands on node 8
        assert_eq!(s.node_of_rank(1, 9, 8), 9);
    }

    #[test]
    fn disjointness_accepts_separated_blocks_and_rejects_overlap() {
        let w = TaskWorkload::single(CollectiveKind::Barrier, 8, 1);
        let a = JobSpec::new(w.clone(), JobPlacement::block(0));
        let b = JobSpec::new(w.clone(), JobPlacement::block(8));
        assert!(validate_job_disjointness(&[a.clone(), b], 9, 8).is_ok());
        let c = JobSpec::new(w, JobPlacement::block(4));
        let err = validate_job_disjointness(&[a, c], 9, 8).unwrap_err();
        assert!(err.contains("node 4"), "error names the node: {err}");
    }

    #[test]
    fn job_validation_rejects_out_of_range_placements() {
        let w = TaskWorkload::single(CollectiveKind::Barrier, 8, 1);
        let job = JobSpec::new(w, JobPlacement::block(70));
        let err = job.validate(9, 8).unwrap_err();
        assert!(err.contains("node 7"), "error names the node: {err}");
    }

    #[test]
    fn mini_app_interleaves_sweep_and_all_reduce_and_conserves() {
        let w = TaskWorkload::mini_app(8, 3, AllReduceAlgorithm::RecursiveDoubling, 2);
        assert_eq!(w.sequence.len(), 6);
        assert_eq!(w.sequence[0], CollectiveKind::SweepNeighbors);
        assert_eq!(
            w.sequence[1],
            CollectiveKind::AllReduce(AllReduceAlgorithm::RecursiveDoubling)
        );
        validate_scripts(&w.lower()).unwrap();
        assert!(w.validate(9, 8).is_ok());
    }

    #[test]
    fn start_cycle_and_compute_delay_builders() {
        let w = TaskWorkload::single(CollectiveKind::Barrier, 4, 1);
        let job = JobSpec::new(w, JobPlacement::block(0))
            .starting_at(500)
            .with_compute_delay(25);
        assert_eq!(job.start_cycle, 500);
        assert_eq!(job.compute_delay, 25);
    }
}
