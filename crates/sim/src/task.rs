//! The collective task layer: ranks executing message-gated communication
//! scripts on top of the packet engine.
//!
//! A [`df_traffic::TaskWorkload`] lowers into one script per rank — a list
//! of [`df_traffic::TaskStep`]s, each naming the messages the rank injects
//! when the step starts and how many packets it must receive before the
//! step completes. The [`TaskEngine`] executes those scripts against the
//! simulator:
//!
//! * when a rank reaches a step, its sends are enqueued into the hosting
//!   node's source queue (the existing injection machinery takes over from
//!   there — VC round-robin, credit checks, spare retargeting),
//! * every delivered packet is attributed back through a pending table
//!   (packet id → sender rank, receiver rank, step), crediting the sender's
//!   outstanding-send counter and the receiver's per-step receive counter,
//! * a rank advances past its current step only once **all its sends have
//!   been delivered** and **the step's expected packets have arrived** —
//!   the causal gating that makes the workload a dependency graph rather
//!   than a traffic pattern. Packets for a *future* step that arrive early
//!   (a faster peer ran ahead) accumulate and are counted when the rank
//!   gets there.
//!
//! # Determinism
//!
//! Every engine mutation happens on the main thread: delivery attribution
//! in step 1 of [`crate::network::Network::step`] and advance/enqueue in
//! step 2 — both of which are sequential in **every** kernel (optimized,
//! legacy, parallel at any worker count). Ranks are visited in ascending
//! rank order and the lowering itself is a pure function of the workload,
//! so task runs inherit the simulator's bit-identity contract unchanged.
//!
//! When the configuration carries no workload the engine does not exist
//! and the packet-level simulator is byte-for-byte unaffected.

use std::collections::BTreeMap;

use df_model::{Cycle, Packet, PacketId};
use df_topology::{NodeId, Topology};
use df_traffic::{JobSpec, TaskStep, TaskWorkload};

use crate::config::SimulationConfig;
use crate::metrics::Metrics;
use crate::network::Network;
use crate::node::Node;

/// A task packet still in the network (source queue or in flight), keyed by
/// packet id in the engine's pending table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingPacket {
    /// Rank that sent the packet (credited on delivery).
    src_rank: u32,
    /// Rank the packet is addressed to (its receive counter is credited —
    /// recorded at enqueue time, so spare retargeting of the node address
    /// cannot misattribute the rank-level receive).
    dst_rank: u32,
    /// Script step the packet belongs to (the *sender's* step index).
    step: u32,
}

/// Executes a lowered task workload against the packet engine. Owned by
/// [`Network`] when the configuration carries a workload; all mutations
/// happen on the main thread (see the module docs for the determinism
/// argument).
#[derive(Debug, Clone)]
pub struct TaskEngine {
    /// One script per rank, all the same length (lowering guarantees it).
    scripts: Vec<Vec<TaskStep>>,
    /// Hosting node of each rank.
    node_of_rank: Vec<u32>,
    /// Phits per task packet (the configured packet size).
    packet_size: u32,
    /// Script length (steps per rank).
    steps_total: usize,
    /// Cycles of modelled computation between a step's completion and the
    /// next step's injection (0 in single-workload mode).
    compute_delay: u64,
    // ---- per-rank execution state ----
    /// Current step index of each rank (`steps_total` once finished).
    cursor: Vec<usize>,
    /// Whether the current step's sends have been enqueued.
    enqueued: Vec<bool>,
    /// Packets sent in the current step and not yet delivered.
    sends_outstanding: Vec<u32>,
    /// Packets received per rank per step (early arrivals for future steps
    /// accumulate here until the rank reaches them).
    recvs: Vec<Vec<u32>>,
    /// Cycle before which each rank may not inject its current step's sends
    /// (set to `advance cycle + compute_delay` whenever a rank passes a
    /// step: the rank is computing). Never gates when `compute_delay == 0`.
    ready_at: Vec<u64>,
    /// Cycles each rank spent blocked on the network: step enqueued, source
    /// queue drained, completion conditions not yet met.
    stall_cycles: Vec<u64>,
    // ---- global progress ----
    /// Task packets in the network, by packet id.
    pending: BTreeMap<u64, PendingPacket>,
    /// Ranks that have passed each step (a step is globally complete when
    /// this reaches the rank count).
    step_rank_done: Vec<u32>,
    /// Cycle each step globally completed at.
    step_completion_cycles: Vec<Option<Cycle>>,
    /// Ranks that have finished their whole script.
    ranks_done: u32,
    /// Cycle the last rank finished (application completion time).
    completed_at: Option<Cycle>,
}

impl TaskEngine {
    /// Lower `workload` onto `topo` and build a fresh engine. The workload
    /// must already have passed [`TaskWorkload::validate`] for this
    /// topology (configuration validation guarantees it).
    pub(crate) fn new(workload: &TaskWorkload, topo: &impl Topology, packet_size: u32) -> Self {
        let groups = topo.num_groups();
        let nodes_per_group = topo.nodes_per_group();
        let node_of_rank: Vec<u32> = (0..workload.ranks)
            .map(|r| workload.placement.node_of_rank(r, groups, nodes_per_group))
            .collect();
        Self::from_parts(workload.lower(), node_of_rank, packet_size, 0)
    }

    /// Build an engine for one job of a job set: the [`JobSpec`]'s own
    /// placement decides where the ranks live (the workload's `placement`
    /// field is ignored in job mode) and its `compute_delay` gates each
    /// step's injection. The job must already have passed
    /// [`JobSpec::validate`] for this topology.
    pub(crate) fn for_job(job: &JobSpec, topo: &impl Topology, packet_size: u32) -> Self {
        let groups = topo.num_groups();
        let nodes_per_group = topo.nodes_per_group();
        let node_of_rank: Vec<u32> = (0..job.workload.ranks)
            .map(|r| job.placement.node_of_rank(r, groups, nodes_per_group))
            .collect();
        Self::from_parts(
            job.workload.lower(),
            node_of_rank,
            packet_size,
            job.compute_delay,
        )
    }

    fn from_parts(
        scripts: Vec<Vec<TaskStep>>,
        node_of_rank: Vec<u32>,
        packet_size: u32,
        compute_delay: u64,
    ) -> Self {
        let ranks = node_of_rank.len();
        let steps_total = scripts.first().map_or(0, |s| s.len());
        TaskEngine {
            scripts,
            node_of_rank,
            packet_size,
            steps_total,
            compute_delay,
            cursor: vec![0; ranks],
            enqueued: vec![false; ranks],
            sends_outstanding: vec![0; ranks],
            recvs: vec![vec![0; steps_total]; ranks],
            ready_at: vec![0; ranks],
            stall_cycles: vec![0; ranks],
            pending: BTreeMap::new(),
            step_rank_done: vec![0; steps_total],
            step_completion_cycles: vec![None; steps_total],
            ranks_done: 0,
            completed_at: None,
        }
    }

    /// Attribute a delivered packet: credit the sender's outstanding-send
    /// counter and the receiver's per-step receive counter. Runs in step 1
    /// of the cycle (main thread, every kernel).
    pub(crate) fn on_delivery(&mut self, packet: &Packet) {
        if let Some(p) = self.pending.remove(&packet.id.0) {
            self.sends_outstanding[p.src_rank as usize] -= 1;
            self.recvs[p.dst_rank as usize][p.step as usize] += 1;
        }
    }

    /// Advance ranks past completed steps, enqueue newly reached steps'
    /// sends into the hosting nodes' source queues, and account stall
    /// cycles. Runs in step 2 of the cycle in place of stochastic traffic
    /// generation (main thread, every kernel; ascending rank order).
    pub(crate) fn advance_and_generate(
        &mut self,
        now: Cycle,
        nodes: &mut [Node],
        metrics: &mut Metrics,
        next_packet_id: &mut u64,
        blocked: &[bool],
        failed: &[bool],
    ) {
        let ranks = self.node_of_rank.len();
        let mut stalled_ranks = 0u64;
        for r in 0..ranks {
            let node_idx = self.node_of_rank[r] as usize;
            // a failed rank (or one on a draining router) makes no progress;
            // its peers will stall honestly waiting for it
            if blocked[node_idx] || failed[node_idx] {
                continue;
            }
            loop {
                if self.cursor[r] >= self.steps_total {
                    break;
                }
                let step = self.cursor[r];
                if !self.enqueued[r] {
                    // modelled computation between steps: the rank holds its
                    // sends back until the compute delay elapses (never gates
                    // when compute_delay == 0 — ready_at is then <= now)
                    if now < self.ready_at[r] {
                        break;
                    }
                    let sends = self.scripts[r][step].sends.clone();
                    let mut outstanding = 0u32;
                    for (dst_rank, packets) in sends {
                        let dst = NodeId(self.node_of_rank[dst_rank as usize]);
                        let src = NodeId(self.node_of_rank[r]);
                        for _ in 0..packets {
                            let id = *next_packet_id;
                            *next_packet_id += 1;
                            let packet = Packet::new(PacketId(id), src, dst, self.packet_size, now);
                            self.pending.insert(
                                id,
                                PendingPacket {
                                    src_rank: r as u32,
                                    dst_rank,
                                    step: step as u32,
                                },
                            );
                            nodes[node_idx].enqueue_task_packet(packet);
                            metrics.record_generated(self.packet_size as u64);
                        }
                        outstanding += packets;
                    }
                    self.sends_outstanding[r] = outstanding;
                    self.enqueued[r] = true;
                }
                let expected = self.scripts[r][step].expected_packets;
                if self.sends_outstanding[r] == 0 && self.recvs[r][step] >= expected {
                    // step complete for this rank (empty steps fall straight
                    // through, so a rank can cross several in one cycle)
                    self.step_rank_done[step] += 1;
                    if self.step_rank_done[step] == ranks as u32 {
                        self.step_completion_cycles[step] = Some(now);
                        metrics.record_task_step_completed();
                    }
                    self.cursor[r] += 1;
                    self.enqueued[r] = false;
                    self.ready_at[r] = now + self.compute_delay;
                    if self.cursor[r] == self.steps_total {
                        self.ranks_done += 1;
                        if self.ranks_done == ranks as u32 {
                            self.completed_at = Some(now);
                        }
                    }
                    continue;
                }
                break;
            }
            // stall: the rank handed everything to the network and is waiting
            // on deliveries (its own sends or its peers')
            if self.cursor[r] < self.steps_total
                && self.enqueued[r]
                && nodes[node_idx].queue_len() == 0
            {
                self.stall_cycles[r] += 1;
                stalled_ranks += 1;
            }
        }
        if stalled_ranks > 0 {
            metrics.record_rank_stalls(stalled_ranks);
        }
    }

    /// Whether every rank has finished its script.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Cycle the last rank finished (the application completion time), once
    /// complete.
    pub fn completion_cycle(&self) -> Option<Cycle> {
        self.completed_at
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.node_of_rank.len() as u32
    }

    /// Steps per rank script.
    pub fn total_steps(&self) -> usize {
        self.steps_total
    }

    /// Steps every rank has passed.
    pub fn steps_completed(&self) -> usize {
        self.step_completion_cycles
            .iter()
            .filter(|c| c.is_some())
            .count()
    }

    /// Cycle each step globally completed at (`None` for steps still in
    /// progress), indexed by step.
    pub fn step_completion_cycles(&self) -> &[Option<Cycle>] {
        &self.step_completion_cycles
    }

    /// Cycles each rank spent blocked on the network, indexed by rank.
    pub fn stall_cycles(&self) -> &[u64] {
        &self.stall_cycles
    }

    /// The node hosting `rank`.
    pub fn node_of_rank(&self, rank: u32) -> NodeId {
        NodeId(self.node_of_rank[rank as usize])
    }

    /// Task packets currently in the network (source queues + in flight).
    pub fn pending_packets(&self) -> usize {
        self.pending.len()
    }

    /// Serialise the mutable execution state (the scripts and rank map are
    /// rebuilt from the configuration on restore).
    pub(crate) fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.cursor.len());
        for r in 0..self.cursor.len() {
            e.usize(self.cursor[r]);
            e.bool(self.enqueued[r]);
            e.u32(self.sends_outstanding[r]);
            e.u64(self.stall_cycles[r]);
            e.u64(self.ready_at[r]);
            for &c in &self.recvs[r] {
                e.u32(c);
            }
        }
        for s in 0..self.steps_total {
            e.u32(self.step_rank_done[s]);
            e.bool(self.step_completion_cycles[s].is_some());
            if let Some(c) = self.step_completion_cycles[s] {
                e.u64(c);
            }
        }
        e.u32(self.ranks_done);
        e.bool(self.completed_at.is_some());
        if let Some(c) = self.completed_at {
            e.u64(c);
        }
        e.seq(self.pending.len());
        for (&id, p) in &self.pending {
            e.u64(id);
            e.u32(p.src_rank);
            e.u32(p.dst_rank);
            e.u32(p.step);
        }
    }

    /// Restore the state written by [`TaskEngine::save_state`] into a
    /// freshly built engine (same workload and topology — the snapshot's
    /// configuration fingerprint guarantees it).
    pub(crate) fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let ranks = d.seq(13)?;
        if ranks != self.cursor.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "snapshot task rank count mismatch: {} vs {}",
                ranks,
                self.cursor.len()
            )));
        }
        for r in 0..ranks {
            self.cursor[r] = d.usize()?;
            if self.cursor[r] > self.steps_total {
                return Err(df_engine::CodecError::Invalid(format!(
                    "snapshot task cursor {} beyond the {}-step script",
                    self.cursor[r], self.steps_total
                )));
            }
            self.enqueued[r] = d.bool()?;
            self.sends_outstanding[r] = d.u32()?;
            self.stall_cycles[r] = d.u64()?;
            self.ready_at[r] = d.u64()?;
            for c in &mut self.recvs[r] {
                *c = d.u32()?;
            }
        }
        for s in 0..self.steps_total {
            self.step_rank_done[s] = d.u32()?;
            self.step_completion_cycles[s] = if d.bool()? { Some(d.u64()?) } else { None };
        }
        self.ranks_done = d.u32()?;
        if self.ranks_done as usize > ranks {
            return Err(df_engine::CodecError::Invalid(format!(
                "snapshot claims {} finished ranks of {ranks}",
                self.ranks_done
            )));
        }
        self.completed_at = if d.bool()? { Some(d.u64()?) } else { None };
        let n = d.seq(20)?;
        let mut pending = BTreeMap::new();
        for _ in 0..n {
            let id = d.u64()?;
            let p = PendingPacket {
                src_rank: d.u32()?,
                dst_rank: d.u32()?,
                step: d.u32()?,
            };
            if p.src_rank as usize >= ranks || p.dst_rank as usize >= ranks {
                return Err(df_engine::CodecError::Invalid(format!(
                    "snapshot task packet {id} names an out-of-range rank"
                )));
            }
            pending.insert(id, p);
        }
        self.pending = pending;
        Ok(())
    }
}

/// Advances a set of concurrently scheduled jobs — one [`TaskEngine`] per
/// [`JobSpec`] — against one shared network. Owned by [`Network`] when the
/// configuration carries a job set. Jobs are visited in specification
/// order; a job whose `start_cycle` has not been reached is skipped, so
/// its ranks stay idle and accrue no stalls. Packet ids are globally
/// unique, so delivery attribution simply offers each packet to every
/// job's pending table (at most one claims it; stochastic background
/// packets match none).
#[derive(Debug, Clone)]
pub struct JobsEngine {
    jobs: Vec<JobRun>,
}

#[derive(Debug, Clone)]
struct JobRun {
    spec: JobSpec,
    engine: TaskEngine,
}

impl JobsEngine {
    pub(crate) fn new(jobs: &[JobSpec], topo: &impl Topology, packet_size: u32) -> Self {
        JobsEngine {
            jobs: jobs
                .iter()
                .map(|spec| JobRun {
                    spec: spec.clone(),
                    engine: TaskEngine::for_job(spec, topo, packet_size),
                })
                .collect(),
        }
    }

    /// Attribute a delivered packet to whichever job sent it (no-op for
    /// stochastic background packets). Runs in step 1 of the cycle.
    pub(crate) fn on_delivery(&mut self, packet: &Packet) {
        for job in &mut self.jobs {
            job.engine.on_delivery(packet);
        }
    }

    /// Advance every started, unfinished job (specification order). Runs in
    /// step 2 of the cycle alongside — not instead of — stochastic
    /// generation.
    pub(crate) fn advance_and_generate(
        &mut self,
        now: Cycle,
        nodes: &mut [Node],
        metrics: &mut Metrics,
        next_packet_id: &mut u64,
        blocked: &[bool],
        failed: &[bool],
    ) {
        for job in &mut self.jobs {
            if now < job.spec.start_cycle || job.engine.is_complete() {
                continue;
            }
            job.engine
                .advance_and_generate(now, nodes, metrics, next_packet_id, blocked, failed);
        }
    }

    /// Whether every job has completed.
    pub fn is_complete(&self) -> bool {
        self.jobs.iter().all(|j| j.engine.is_complete())
    }

    /// Cycle the last job finished (the job-set makespan), once all are
    /// complete.
    pub fn completion_cycle(&self) -> Option<Cycle> {
        self.jobs
            .iter()
            .map(|j| j.engine.completion_cycle())
            .collect::<Option<Vec<Cycle>>>()
            .and_then(|v| v.into_iter().max())
    }

    /// Number of jobs in the set.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Job `i`'s specification.
    pub fn spec(&self, i: usize) -> &JobSpec {
        &self.jobs[i].spec
    }

    /// Job `i`'s engine (per-job completion, stalls, pending packets).
    pub fn engine(&self, i: usize) -> &TaskEngine {
        &self.jobs[i].engine
    }

    /// Task packets of all jobs currently in the network.
    pub fn pending_packets(&self) -> usize {
        self.jobs.iter().map(|j| j.engine.pending_packets()).sum()
    }

    /// Serialise every job's mutable execution state (job specifications
    /// and scripts are rebuilt from the configuration on restore).
    pub(crate) fn save_state(&self, e: &mut df_engine::Encoder) {
        e.seq(self.jobs.len());
        for job in &self.jobs {
            job.engine.save_state(e);
        }
    }

    /// Restore the state written by [`JobsEngine::save_state`].
    pub(crate) fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let n = d.seq(16)?;
        if n != self.jobs.len() {
            return Err(df_engine::CodecError::Invalid(format!(
                "snapshot job count mismatch: {} vs {}",
                n,
                self.jobs.len()
            )));
        }
        for job in &mut self.jobs {
            job.engine.restore_state(d)?;
        }
        Ok(())
    }
}

/// Binning of the rank-stall distributions reported by [`TaskReport`] and
/// [`JobReport`]: same shape as the packet-latency histogram. A percentile
/// landing past the range is reported as `f64::INFINITY` (see
/// [`df_engine::Histogram::percentile`]) — the tail is *at least* that bad,
/// never silently clamped to the range bound.
const STALL_HISTOGRAM_HIGH: f64 = 5_000.0;
const STALL_HISTOGRAM_BINS: usize = 500;

fn stall_percentile(stalls: &[u64], pct: f64) -> f64 {
    let mut h = df_engine::Histogram::new(0.0, STALL_HISTOGRAM_HIGH, STALL_HISTOGRAM_BINS);
    for &s in stalls {
        h.record(s as f64);
    }
    h.percentile(pct)
}

/// Application-level outcome of a task-workload run: completion time, step
/// timeline and the rank stall distribution, alongside the packet-level
/// delivery statistics.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Whether every rank finished within the cycle budget.
    pub completed: bool,
    /// Cycle the last rank finished (the application completion time).
    pub completion_cycle: Option<Cycle>,
    /// Steps per rank script.
    pub total_steps: usize,
    /// Steps every rank passed.
    pub steps_completed: usize,
    /// Cycle each step globally completed at, indexed by step.
    pub step_completion_cycles: Vec<Option<Cycle>>,
    /// Sum of rank stall cycles (cycles a rank sat blocked on the network).
    pub total_stall_cycles: u64,
    /// Largest per-rank stall total.
    pub max_rank_stall_cycles: u64,
    /// Mean per-rank stall total.
    pub mean_rank_stall_cycles: f64,
    /// Per-rank stall totals, indexed by rank (the full distribution behind
    /// the aggregates; feed to [`TaskReport::stall_percentile`]).
    pub rank_stall_cycles: Vec<u64>,
    /// Task packets delivered.
    pub delivered_packets: u64,
    /// Mean packet latency (generation to delivery), cycles.
    pub avg_packet_latency: f64,
}

impl TaskReport {
    /// Percentile of the per-rank stall distribution, through the same
    /// binned histogram the packet-latency tail uses. Returns
    /// `f64::INFINITY` when the requested rank lands past the binned range
    /// — the tail is at least that bad, never clamped.
    pub fn stall_percentile(&self, pct: f64) -> f64 {
        stall_percentile(&self.rank_stall_cycles, pct)
    }
}

/// Run `config`'s task workload to completion (or until `max_cycles`
/// elapse) and report application completion time, the per-step timeline
/// and the rank stall distribution.
///
/// Panics if the configuration carries no workload — packet-level
/// experiments use [`crate::experiment`] instead.
pub fn run_task_workload(config: SimulationConfig, max_cycles: u64) -> TaskReport {
    assert!(
        config.workload.is_some(),
        "run_task_workload needs a configuration with a task workload"
    );
    let mut net = Network::new(config);
    net.metrics_mut().start_measurement(0);
    let completion_cycle = net.run_until_tasks_complete(max_cycles);
    let task = net.task().expect("workload checked above");
    let stalls = task.stall_cycles();
    let total_stall_cycles: u64 = stalls.iter().sum();
    let summary = net.metrics().window_summary();
    TaskReport {
        completed: completion_cycle.is_some(),
        completion_cycle,
        total_steps: task.total_steps(),
        steps_completed: task.steps_completed(),
        step_completion_cycles: task.step_completion_cycles().to_vec(),
        total_stall_cycles,
        max_rank_stall_cycles: stalls.iter().copied().max().unwrap_or(0),
        mean_rank_stall_cycles: total_stall_cycles as f64 / stalls.len().max(1) as f64,
        rank_stall_cycles: stalls.to_vec(),
        delivered_packets: net.metrics().delivered_packets_total(),
        avg_packet_latency: summary.avg_packet_latency,
    }
}

/// Per-job outcome of a multi-job run.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's stable label (`workload@base_node`).
    pub label: String,
    /// Cycle the job was scheduled to start.
    pub start_cycle: u64,
    /// Whether every rank of the job finished within the cycle budget.
    pub completed: bool,
    /// Cycle the job's last rank finished.
    pub completion_cycle: Option<Cycle>,
    /// `completion_cycle - start_cycle`: the job's own wall-clock, the
    /// quantity compared against a solo-run baseline for slowdown.
    pub elapsed_cycles: Option<u64>,
    /// Sum of the job's rank stall cycles.
    pub total_stall_cycles: u64,
    /// Largest per-rank stall total in the job.
    pub max_rank_stall_cycles: u64,
    /// Mean per-rank stall total in the job.
    pub mean_rank_stall_cycles: f64,
    /// Per-rank stall totals, indexed by job-local rank.
    pub rank_stall_cycles: Vec<u64>,
}

impl JobReport {
    fn from_engine(spec: &JobSpec, engine: &TaskEngine) -> Self {
        let stalls = engine.stall_cycles();
        let total_stall_cycles: u64 = stalls.iter().sum();
        let completion_cycle = engine.completion_cycle();
        JobReport {
            label: spec.label(),
            start_cycle: spec.start_cycle,
            completed: completion_cycle.is_some(),
            completion_cycle,
            elapsed_cycles: completion_cycle.map(|c| c - spec.start_cycle),
            total_stall_cycles,
            max_rank_stall_cycles: stalls.iter().copied().max().unwrap_or(0),
            mean_rank_stall_cycles: total_stall_cycles as f64 / stalls.len().max(1) as f64,
            rank_stall_cycles: stalls.to_vec(),
        }
    }

    /// Percentile of the job's per-rank stall distribution (binned;
    /// `f64::INFINITY` past the range — see [`TaskReport::stall_percentile`]).
    pub fn stall_percentile(&self, pct: f64) -> f64 {
        stall_percentile(&self.rank_stall_cycles, pct)
    }
}

/// Outcome of a multi-job run: one [`JobReport`] per job plus the shared
/// network-level statistics.
#[derive(Debug, Clone)]
pub struct JobSetReport {
    /// Whether every job finished within the cycle budget.
    pub all_completed: bool,
    /// Cycle the last job finished (the job-set makespan).
    pub makespan: Option<Cycle>,
    /// Per-job outcomes, in specification order.
    pub jobs: Vec<JobReport>,
    /// Packets delivered network-wide (task packets of every job plus the
    /// stochastic background traffic).
    pub delivered_packets: u64,
    /// Mean packet latency network-wide, cycles.
    pub avg_packet_latency: f64,
}

/// Run `config`'s job set until every job completes (or `max_cycles`
/// elapse) and report per-job completion, stall distributions and the
/// shared network statistics.
///
/// Panics if the configuration carries no jobs.
pub fn run_job_set(config: SimulationConfig, max_cycles: u64) -> JobSetReport {
    assert!(
        !config.jobs.is_empty(),
        "run_job_set needs a configuration with at least one job"
    );
    let mut net = Network::new(config);
    net.metrics_mut().start_measurement(0);
    let makespan = net.run_until_jobs_complete(max_cycles);
    let jobs_engine = net.jobs().expect("job set checked above");
    let jobs: Vec<JobReport> = (0..jobs_engine.num_jobs())
        .map(|i| JobReport::from_engine(jobs_engine.spec(i), jobs_engine.engine(i)))
        .collect();
    let summary = net.metrics().window_summary();
    JobSetReport {
        all_completed: makespan.is_some(),
        makespan,
        jobs,
        delivered_packets: net.metrics().delivered_packets_total(),
        avg_packet_latency: summary.avg_packet_latency,
    }
}

/// A job set's shared-network outcome next to each job's solo-run baseline
/// (same configuration with every other job removed — background stochastic
/// traffic, faults and schedule identical), the slowdown-vs-isolation
/// comparison the interference studies report.
#[derive(Debug, Clone)]
pub struct InterferenceReport {
    /// The shared run: all jobs contending for one network.
    pub shared: JobSetReport,
    /// Job `i` run alone (only the other jobs removed), in specification
    /// order.
    pub solo: Vec<JobReport>,
}

impl InterferenceReport {
    /// Job `i`'s slowdown: shared elapsed time over solo elapsed time
    /// (`None` unless both runs completed). `1.0` means no interference.
    pub fn slowdown(&self, i: usize) -> Option<f64> {
        let shared = self.shared.jobs[i].elapsed_cycles?;
        let solo = self.solo[i].elapsed_cycles?;
        Some(shared as f64 / solo as f64)
    }
}

/// Run `config`'s job set shared, then each job solo under the otherwise
/// identical configuration, and report the slowdown-vs-isolation
/// comparison. Costs `jobs + 1` full simulations.
pub fn run_interference(config: SimulationConfig, max_cycles: u64) -> InterferenceReport {
    assert!(
        !config.jobs.is_empty(),
        "run_interference needs a configuration with at least one job"
    );
    let shared = run_job_set(config.clone(), max_cycles);
    let solo = config
        .jobs
        .iter()
        .map(|job| {
            let mut solo_cfg = config.clone();
            solo_cfg.jobs = vec![job.clone()];
            let mut report = run_job_set(solo_cfg, max_cycles);
            report.jobs.remove(0)
        })
        .collect();
    InterferenceReport { shared, solo }
}
