//! The cycle-driven network simulator.
//!
//! [`Network`] owns every router, every node, the in-flight event queue and
//! the metrics collector, and advances them together one cycle at a time.
//! The per-cycle sequence is:
//!
//! 1. deliver due link events (packet arrivals, credit returns, node
//!    deliveries),
//! 2. traffic generation and injection from the node source queues into the
//!    routers' injection buffers,
//! 3. control-plane dissemination: PB saturation flags every cycle, ECtN
//!    partial-array broadcast every `ectn_update_period` cycles,
//! 4. routing decisions + separable allocation, iterated
//!    `allocator_speedup` times,
//! 5. output-buffer link transmission, scheduling remote arrivals after the
//!    link latency.

use df_engine::DeterministicRng;
use df_model::{Cycle, VcId};
use df_router::{AllocationRequest, Router};
use df_routing::algorithms::piggyback;
use df_routing::{minimal, Commitment, Decision, RoutingAlgorithm};
use df_topology::{Dragonfly, GroupId, NodeId, Port, PortClass, PortPeer, RouterId};
use df_traffic::TrafficPattern;

use crate::config::SimulationConfig;
use crate::events::{Event, EventQueue};
use crate::metrics::Metrics;
use crate::node::Node;

/// The whole simulated network.
pub struct Network {
    config: SimulationConfig,
    topo: Dragonfly,
    algorithm: RoutingAlgorithm,
    routers: Vec<Router>,
    nodes: Vec<Node>,
    patterns: Vec<TrafficPattern>,
    current_phase: usize,
    events: EventQueue,
    router_rngs: Vec<DeterministicRng>,
    cycle: Cycle,
    next_packet_id: u64,
    metrics: Metrics,
    in_flight: u64,
    last_delivery_cycle: Cycle,
    // reusable scratch buffers for the hot loop
    scratch_requests: Vec<AllocationRequest>,
    scratch_decisions: Vec<((Port, VcId), Decision)>,
}

impl Network {
    /// Build a network from a validated configuration.
    pub fn new(config: SimulationConfig) -> Self {
        config.validate().expect("invalid simulation configuration");
        let topo = Dragonfly::new(config.topology);
        let root_rng = DeterministicRng::new(config.seed);
        let routers: Vec<Router> = topo
            .routers()
            .map(|r| Router::new(r, topo, config.network))
            .collect();
        let router_rngs: Vec<DeterministicRng> = topo
            .routers()
            .map(|r| root_rng.split(0x1000_0000 + r.0 as u64))
            .collect();
        let base_load = config
            .schedule
            .phases()
            .first()
            .and_then(|p| p.load)
            .unwrap_or(config.offered_load);
        let nodes: Vec<Node> = topo
            .nodes()
            .map(|n| {
                Node::new(
                    n,
                    base_load,
                    config.network.packet_size_phits,
                    root_rng.split(0x2000_0000 + n.0 as u64),
                )
            })
            .collect();
        let patterns = config.schedule.build_patterns(topo);
        let algorithm = RoutingAlgorithm::new(config.routing, config.routing_config);
        // transient series are centred on the first traffic change (or the
        // end of warm-up when the schedule is constant)
        let origin = config
            .schedule
            .change_points()
            .first()
            .copied()
            .unwrap_or(config.warmup_cycles) as i64;
        let metrics = Metrics::new(origin, 20);
        Network {
            config,
            topo,
            algorithm,
            routers,
            nodes,
            patterns,
            current_phase: 0,
            events: EventQueue::new(),
            router_rngs,
            cycle: 0,
            next_packet_id: 0,
            metrics,
            in_flight: 0,
            last_delivery_cycle: 0,
            scratch_requests: Vec::new(),
            scratch_decisions: Vec::new(),
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The topology.
    pub fn topology(&self) -> &Dragonfly {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The metrics collector.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics collector (to open the measurement window).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Borrow a router (tests and inspection).
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Borrow a node (tests and inspection).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Packets currently inside the network (injected but not delivered).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether the network appears stalled: packets are in flight but nothing
    /// has been delivered for `threshold` cycles. Used as a deadlock
    /// watchdog by the tests.
    pub fn stalled(&self, threshold: Cycle) -> bool {
        self.in_flight > 0 && self.cycle.saturating_sub(self.last_delivery_cycle) > threshold
    }

    /// Advance `cycles` cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Stop traffic generation and keep stepping until every in-flight packet
    /// is delivered (or `max_cycles` elapse). Returns true if the network
    /// drained completely.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for node in &mut self.nodes {
            node.set_offered_load(0.0);
        }
        for _ in 0..max_cycles {
            if self.in_flight == 0 && self.all_source_queues_empty() {
                return true;
            }
            self.step();
        }
        self.in_flight == 0 && self.all_source_queues_empty()
    }

    fn all_source_queues_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.queue_len() == 0)
    }

    /// Sum of contention counters across all routers (used by invariant
    /// tests: must be zero once the network drains).
    pub fn total_contention(&self) -> u64 {
        self.routers
            .iter()
            .map(|r| r.contention().total() as u64)
            .sum()
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;

        // ---- 0. traffic-phase change ----
        let phase = self.config.schedule.phase_index_at(now);
        if phase != self.current_phase {
            self.current_phase = phase;
            let load = self.config.schedule.phases()[phase]
                .load
                .unwrap_or(self.config.offered_load);
            for node in &mut self.nodes {
                node.set_offered_load(load);
            }
        }

        // ---- 1. deliver due events ----
        for event in self.events.pop_due(now) {
            match event {
                Event::PacketArrival {
                    router,
                    port,
                    vc,
                    packet,
                } => self.routers[router.index()].receive_packet(port, vc, packet),
                Event::CreditReturn {
                    router,
                    port,
                    vc,
                    phits,
                } => self.routers[router.index()].receive_credits(port, vc, phits),
                Event::Delivery { node: _, packet } => {
                    self.in_flight -= 1;
                    self.last_delivery_cycle = now;
                    self.metrics.record_delivery(&packet, now);
                }
            }
        }

        // ---- 2. generation + injection ----
        {
            let pattern = &self.patterns[self.current_phase];
            for node in self.nodes.iter_mut() {
                let phits = node.generate(now, pattern, &mut self.next_packet_id);
                if phits > 0 {
                    self.metrics.record_generated(phits as u64);
                }
            }
        }
        for node_idx in 0..self.nodes.len() {
            let node_id = NodeId(node_idx as u32);
            let Some(head_size) = self.nodes[node_idx].head().map(|p| p.size_phits) else {
                continue;
            };
            let router_id = self.topo.node_router(node_id);
            let port = self.topo.node_port(node_id);
            let num_vcs = self.routers[router_id.index()].input(port).num_vcs();
            let start = self.nodes[node_idx].take_vc_rr(num_vcs);
            let mut chosen = None;
            for k in 0..num_vcs {
                let vc = (start + k) % num_vcs;
                if self.routers[router_id.index()].can_accept_input(port, VcId(vc as u8), head_size)
                {
                    chosen = Some(vc);
                    break;
                }
            }
            if let Some(vc) = chosen {
                let mut packet = self.nodes[node_idx].pop_head().expect("head checked");
                packet.injected_at = Some(now);
                self.in_flight += 1;
                self.routers[router_id.index()].receive_packet(port, VcId(vc as u8), packet);
            }
        }

        // ---- 3. control-plane dissemination ----
        if self.config.routing.needs_pb_dissemination() {
            self.disseminate_pb();
        }
        if self.config.routing.needs_ectn_broadcast()
            && now % self.config.routing_config.ectn_update_period == 0
        {
            self.broadcast_ectn();
        }

        // ---- 4. routing + allocation ----
        for _ in 0..self.config.network.allocator_speedup {
            for r_idx in 0..self.routers.len() {
                self.route_and_allocate(r_idx, now);
            }
        }

        // ---- 5. link transmission ----
        for r_idx in 0..self.routers.len() {
            let router_id = RouterId(r_idx as u32);
            let sent = self.routers[r_idx].transmit_outputs(now);
            for (port, packet, vc, tail_at) in sent {
                match self.topo.peer(router_id, port) {
                    PortPeer::Node(node) => {
                        let latency = self.config.network.latencies.terminal_link as Cycle;
                        self.events
                            .schedule(tail_at + latency, Event::Delivery { node, packet });
                    }
                    PortPeer::Router(peer, peer_port) => {
                        let class = port.class(self.topo.params());
                        let latency = self.config.network.link_latency_for(class) as Cycle;
                        self.events.schedule(
                            tail_at + latency,
                            Event::PacketArrival {
                                router: peer,
                                port: peer_port,
                                vc,
                                packet,
                            },
                        );
                    }
                    PortPeer::Unconnected => {
                        unreachable!("routing never selects an unconnected port")
                    }
                }
            }
        }

        self.cycle += 1;
    }

    /// Share every router's own-link saturation flags inside its group (one
    /// cycle of staleness), then recompute the own flags for this cycle.
    fn disseminate_pb(&mut self) {
        let params = *self.topo.params();
        for g in 0..self.topo.num_groups() {
            let group = GroupId(g);
            let mut group_flags = Vec::with_capacity((params.a * params.h) as usize);
            for r in self.topo.routers_in_group(group) {
                group_flags.extend(self.routers[r.index()].pb().own_snapshot());
            }
            for r in self.topo.routers_in_group(group) {
                self.routers[r.index()].pb_mut().install_group(group_flags.clone());
            }
        }
        for router in self.routers.iter_mut() {
            piggyback::update_own_saturation(&self.config.routing_config, router);
        }
    }

    /// Sum the partial arrays of every router of each group into that group's
    /// combined array (the periodic ECtN broadcast).
    fn broadcast_ectn(&mut self) {
        for g in 0..self.topo.num_groups() {
            let group = GroupId(g);
            let snapshots: Vec<Vec<u32>> = self
                .topo
                .routers_in_group(group)
                .map(|r| self.routers[r.index()].ectn().partial_snapshot())
                .collect();
            let combined =
                df_router::ectn::combine_partials(snapshots.iter().map(|s| s.as_slice()));
            for r in self.topo.routers_in_group(group) {
                self.routers[r.index()]
                    .ectn_mut()
                    .install_combined(combined.clone());
            }
        }
    }

    /// One allocation iteration for one router: register new heads, compute
    /// routing decisions, allocate, apply grants.
    fn route_and_allocate(&mut self, r_idx: usize, now: Cycle) {
        let router_id = RouterId(r_idx as u32);
        let track_ectn = self.config.routing.needs_ectn_broadcast();

        // a. contention / ECtN registration of new head packets
        let unregistered = self.routers[r_idx].unregistered_heads();
        for (port, vc) in unregistered {
            let (min_out, ectn_link) = {
                let router = &self.routers[r_idx];
                let head = router
                    .input(port)
                    .vc(vc.index())
                    .head()
                    .expect("unregistered head exists");
                let min_out = minimal::minimal_output(&self.topo, router_id, head.dst);
                let ectn_link = if track_ectn {
                    minimal::ectn_link_for(&self.topo, router_id, router.input(port).class(), head)
                } else {
                    None
                };
                (min_out, ectn_link)
            };
            self.routers[r_idx].register_head(port, vc, min_out, ectn_link);
        }

        // b. routing decisions for every occupied VC head
        let occupied = self.routers[r_idx].occupied_vcs();
        self.scratch_requests.clear();
        self.scratch_decisions.clear();
        {
            let router = &self.routers[r_idx];
            let rng = &mut self.router_rngs[r_idx];
            for (port, vc) in occupied {
                let head = router.input(port).vc(vc.index()).head().expect("occupied");
                let decision = self.algorithm.decide(router, port, head, rng);
                self.scratch_requests.push(AllocationRequest {
                    input_port: port,
                    input_vc: vc,
                    output_port: decision.output_port,
                    output_vc: decision.output_vc,
                    size_phits: head.size_phits,
                });
                self.scratch_decisions.push(((port, vc), decision));
            }
        }

        // c. separable allocation
        let grants = self.routers[r_idx].allocate(&self.scratch_requests);

        // d. apply grants
        for grant in grants {
            let decision = self
                .scratch_decisions
                .iter()
                .find(|(k, _)| *k == (grant.input_port, grant.input_vc))
                .map(|(_, d)| *d)
                .expect("grant matches a request");
            // apply the commitment to the head packet before it moves
            {
                let group = self.routers[r_idx].group();
                let router = &mut self.routers[r_idx];
                if let Some(head) = router
                    .input_mut(grant.input_port)
                    .vc_mut(grant.input_vc.index())
                    .head_mut()
                {
                    match decision.commitment {
                        Commitment::None => {}
                        Commitment::Intermediate { router: inter, misroute } => {
                            head.routing.commit_intermediate(inter, misroute)
                        }
                        Commitment::NonminimalGlobal { gateway, port } => {
                            head.routing.commit_nonminimal_global(gateway, port)
                        }
                        Commitment::LocalDetour { router: detour } => {
                            head.routing.commit_local_detour(detour, group)
                        }
                    }
                }
            }
            // misrouted-percentage statistics: count each packet once, when it
            // takes its first global hop
            if grant.output_port.class(self.topo.params()) == PortClass::Global {
                let head = self.routers[r_idx]
                    .input(grant.input_port)
                    .vc(grant.input_vc.index())
                    .head()
                    .expect("granted head exists");
                if head.routing.global_hops == 0 {
                    self.metrics.record_commit(now, head.routing.flags.global);
                }
            }
            let applied = self.routers[r_idx].apply_grant(&grant, now);
            // return credits to the upstream router
            if applied.input_class != PortClass::Terminal {
                if let PortPeer::Router(upstream, upstream_port) =
                    self.topo.peer(router_id, grant.input_port)
                {
                    let latency =
                        self.config.network.link_latency_for(applied.input_class) as Cycle;
                    self.events.schedule(
                        now + latency,
                        Event::CreditReturn {
                            router: upstream,
                            port: upstream_port,
                            vc: grant.input_vc,
                            phits: applied.freed_phits,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::NetworkConfig;
    use df_routing::RoutingKind;
    use df_topology::DragonflyParams;
    use df_traffic::PatternKind;

    fn small_config(routing: RoutingKind, pattern: PatternKind, load: f64) -> SimulationConfig {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .pattern(pattern)
            .offered_load(load)
            .warmup_cycles(200)
            .measurement_cycles(400)
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn packets_are_delivered_under_light_uniform_traffic() {
        let mut net = Network::new(small_config(RoutingKind::Minimal, PatternKind::Uniform, 0.1));
        net.run_cycles(600);
        assert!(
            net.metrics().delivered_packets_total() > 20,
            "expected deliveries, got {}",
            net.metrics().delivered_packets_total()
        );
        assert!(!net.stalled(300));
    }

    #[test]
    fn every_routing_mechanism_delivers_traffic() {
        for kind in RoutingKind::ALL {
            let mut net = Network::new(small_config(kind, PatternKind::Uniform, 0.1));
            net.run_cycles(600);
            assert!(
                net.metrics().delivered_packets_total() > 10,
                "{kind} delivered only {}",
                net.metrics().delivered_packets_total()
            );
        }
    }

    #[test]
    fn network_drains_and_counters_return_to_zero() {
        let mut net = Network::new(small_config(RoutingKind::Base, PatternKind::Uniform, 0.2));
        net.run_cycles(400);
        assert!(net.drain(5_000), "network must drain after traffic stops");
        assert_eq!(net.in_flight(), 0);
        assert_eq!(
            net.total_contention(),
            0,
            "contention counters must return to zero when the network is empty"
        );
    }

    #[test]
    fn adversarial_traffic_is_delivered_by_adaptive_routing() {
        let mut net = Network::new(small_config(
            RoutingKind::Base,
            PatternKind::Adversarial { offset: 1 },
            0.2,
        ));
        net.run_cycles(800);
        assert!(net.metrics().delivered_packets_total() > 20);
        assert!(!net.stalled(400), "no deadlock under adversarial traffic");
    }

    #[test]
    fn valiant_marks_packets_as_misrouted() {
        let cfg = small_config(RoutingKind::Valiant, PatternKind::Uniform, 0.1);
        let mut net = Network::new(cfg);
        net.metrics_mut().start_measurement(0);
        net.run_cycles(800);
        let summary = net.metrics().window_summary();
        assert!(summary.delivered_packets > 0);
        assert!(
            summary.global_misroute_fraction > 0.9,
            "VAL misroutes (nearly) all inter-group packets, got {}",
            summary.global_misroute_fraction
        );
    }

    #[test]
    fn minimal_routing_never_misroutes() {
        let cfg = small_config(RoutingKind::Minimal, PatternKind::Uniform, 0.15);
        let mut net = Network::new(cfg);
        net.metrics_mut().start_measurement(0);
        net.run_cycles(800);
        let summary = net.metrics().window_summary();
        assert!(summary.delivered_packets > 0);
        assert_eq!(summary.global_misroute_fraction, 0.0);
        assert_eq!(summary.local_misroute_fraction, 0.0);
        // minimal paths never exceed 3 hops
        assert!(summary.avg_hops <= 3.0 + 1e-9);
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let run = |seed: u64| {
            let cfg = SimulationConfig::builder()
                .topology(DragonflyParams::small())
                .network(NetworkConfig::fast_test())
                .routing(RoutingKind::Base)
                .pattern(PatternKind::Uniform)
                .offered_load(0.2)
                .warmup_cycles(0)
                .measurement_cycles(300)
                .seed(seed)
                .build()
                .unwrap();
            let mut net = Network::new(cfg);
            net.metrics_mut().start_measurement(0);
            net.run_cycles(300);
            let s = net.metrics().window_summary();
            (s.delivered_packets, s.avg_packet_latency)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn in_flight_accounting_is_consistent() {
        let mut net = Network::new(small_config(RoutingKind::Olm, PatternKind::Uniform, 0.2));
        net.run_cycles(300);
        // in_flight counts packets injected but not delivered; it can never
        // exceed total generated packets
        let generated = net.metrics().generated_phits_total / 8;
        assert!(net.in_flight() <= generated);
    }
}
