//! The cycle-driven network simulator.
//!
//! [`Network`] owns every router, every node, the in-flight event queue and
//! the metrics collector, and advances them together one cycle at a time.
//! The per-cycle sequence is:
//!
//! 0. apply fault events due this cycle (link state flips, credit-ledger
//!    restoration, drain flags — see the `fault` module; a no-op
//!    comparison for healthy runs),
//! 1. deliver due link events (packet arrivals, credit returns, node
//!    deliveries) — an arrival whose link failed while it was in flight
//!    is dropped and accounted in the `DroppedOnFault` counters,
//! 2. traffic generation and injection from the node source queues into the
//!    routers' injection buffers,
//! 3. control-plane dissemination: PB saturation flags every cycle, ECtN
//!    partial-array broadcast every `ectn_update_period` cycles — each
//!    exchange also carries the piggybacked gateway-liveness bits
//!    (failure-aware routing), advanced one *flooding hop* per exchange:
//!    every group merges its live neighbours' previous-round views, so a
//!    fault becomes visible to its own group at the first exchange after
//!    it and spreads one live-group-hop per exchange thereafter (one
//!    integer compare per router when no fault changed anything),
//! 4. routing decisions + separable allocation, iterated
//!    `allocator_speedup` times,
//! 5. output-buffer link transmission, scheduling remote arrivals after the
//!    link latency.
//!
//! # The optimized kernel
//!
//! Under [`KernelMode::Optimized`] (the default) three coordinated
//! optimizations apply — none of which changes results (guarded bit-for-bit
//! against the legacy kernel by `tests/determinism.rs`):
//!
//! * **Time-wheel event queue** ([`EventQueue`]): O(1) scheduling into
//!   per-cycle ring buckets, drained into a reusable scratch buffer. An
//!   event-free cycle costs one length check.
//! * **Activity gating**: steps 4–5 iterate only the *active set* of
//!   routers instead of all `a·g` of them. A router enters the set when it
//!   receives a packet, credits or an injection, and leaves it when it holds
//!   no buffered traffic. Invariant: a router with any buffered traffic
//!   (input VCs or output buffers) is always in the set; an idle router's
//!   allocation/transmission steps are provably no-ops, so skipping them is
//!   behaviour-preserving. The set is iterated in ascending router order to
//!   keep event sequence numbers — and therefore results — identical to the
//!   legacy full scan. [`Network::drain`] additionally fast-forwards the
//!   clock to the next pending event when every router is idle.
//! * **Allocation-free steady state**: the per-cycle loop reuses scratch
//!   buffers for due events, allocation requests/grants and transmitted
//!   packets, and PB/ECtN dissemination gathers into flat per-group arrays
//!   copied slice-to-slice instead of cloning a `Vec` per router per cycle.
//!
//! # The parallel kernel
//!
//! [`KernelMode::Parallel`] runs steps 3–5 through the *same* phase
//! executor as the optimized kernel, but sharded across a persistent worker
//! pool with barriers between phases: PB/ECtN by group, routing +
//! allocation and transmission by contiguous chunks of the sorted active
//! list. Cross-router effects (link events, upstream credits, misroute
//! commits) are staged per worker and merged in ascending router order
//! after each phase, which reproduces the sequential effect sequence
//! exactly — results are bit-identical to [`KernelMode::Optimized`] for
//! any worker count (see the `parallel` module docs for the full argument
//! and `tests/kernel_equivalence.rs` for the proof-by-regression).
//!
//! [`KernelMode::Legacy`] preserves the original binary-heap queue and
//! full-router scan as a benchmarking baseline (see `BENCH_kernel.json`).

use df_engine::DeterministicRng;
use df_model::{Cycle, VcId};
use df_router::{Grant, Router};
use df_routing::algorithms::piggyback;
use df_routing::{minimal, RoutingAlgorithm};
use df_topology::{
    AnyTopology, GatewayLiveness, GroupId, LinkState, NodeId, Port, PortPeer, RouterId, Topology,
};
use df_traffic::TrafficPattern;
use std::collections::BTreeMap;

use crate::config::{KernelMode, SimulationConfig};
use crate::events::{Event, EventQueue, LegacyEventQueue};
use crate::fault::{FaultEvent, FaultKind};
use crate::metrics::Metrics;
use crate::node::Node;
use crate::parallel::{execute_shard, PhaseJob, PhaseKind, ShardState, StepCtx, WorkerPool};
use crate::task::{JobsEngine, TaskEngine};

#[path = "snapshot.rs"]
pub mod snapshot;

/// Either event-queue implementation, selected by [`KernelMode`].
enum KernelQueue {
    Wheel(EventQueue),
    Legacy(LegacyEventQueue),
}

impl KernelQueue {
    #[inline]
    fn schedule(&mut self, at: Cycle, event: Event) {
        match self {
            KernelQueue::Wheel(q) => q.schedule(at, event),
            KernelQueue::Legacy(q) => q.schedule(at, event),
        }
    }

    #[inline]
    fn pop_due_into(&mut self, now: Cycle, out: &mut Vec<Event>) {
        match self {
            KernelQueue::Wheel(q) => q.pop_due_into(now, out),
            KernelQueue::Legacy(q) => q.pop_due_into(now, out),
        }
    }

    fn next_time(&self) -> Option<Cycle> {
        match self {
            KernelQueue::Wheel(q) => q.next_time(),
            KernelQueue::Legacy(q) => q.next_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            KernelQueue::Wheel(q) => q.len(),
            KernelQueue::Legacy(q) => q.len(),
        }
    }
}

/// The whole simulated network.
pub struct Network {
    config: SimulationConfig,
    topo: AnyTopology,
    algorithm: RoutingAlgorithm,
    routers: Vec<Router>,
    nodes: Vec<Node>,
    patterns: Vec<TrafficPattern>,
    current_phase: usize,
    events: KernelQueue,
    router_rngs: Vec<DeterministicRng>,
    cycle: Cycle,
    next_packet_id: u64,
    metrics: Metrics,
    in_flight: u64,
    in_flight_phits: u64,
    injected_packets_total: u64,
    injected_phits_total: u64,
    last_delivery_cycle: Cycle,
    // ---- fault injection ----
    /// Dynamic link availability (mirrored into each router's own port
    /// flags whenever a fault event fires).
    link_state: LinkState,
    /// The lowered fault plan, sorted by cycle (stable).
    fault_events: Vec<FaultEvent>,
    /// Index of the next fault event to apply.
    next_fault: usize,
    /// Nodes whose router is draining (generation suppressed).
    node_blocked: Vec<bool>,
    /// Credits lost to drops on each failed directed link, keyed by the
    /// *upstream* `(router, port)` owning them, per downstream VC. Returned
    /// to the owner on `LinkUp` (the downstream buffer space the dropped
    /// packets had reserved was never used). `BTreeMap` for deterministic
    /// iteration; empty in healthy runs.
    lost_credits: BTreeMap<(u32, u32), Vec<u32>>,
    /// The true network-wide gateway-liveness map, kept in sync with
    /// `link_state` and the node-failure flags as fault events fire.
    linkview_truth: GatewayLiveness,
    /// Per-group flooded gateway-liveness views, indexed by group id: what
    /// each group's routers install at a control-plane exchange. A group
    /// observes its own link keyspace and its own nodes' failure state
    /// directly; everything else arrives hop-by-hop — one live-neighbour
    /// merge per exchange (see [`Network::flood_linkviews`]).
    group_views: Vec<GatewayLiveness>,
    /// The previous flooding round's views (double buffer): a round reads
    /// only these, so information advances exactly one hop per exchange
    /// regardless of group iteration order.
    group_views_prev: Vec<GatewayLiveness>,
    /// Fast path: `true` while no truth change is pending and the last
    /// flooding round adopted nothing — rounds are skipped entirely
    /// (healthy runs never flood).
    flood_quiescent: bool,
    /// Whether every group's view currently matches the truth's marks
    /// (drives the staleness metric; trivially `true` on healthy runs).
    views_converged: bool,
    /// Per-node failure flag (`NodeFail`/`NodeRestore`): a failed node
    /// generates nothing and traffic addressed to it is retargeted.
    node_failed: Vec<bool>,
    /// Designated spare of each failed node (valid while `node_failed` is
    /// set; chains resolve in fail order and cannot cycle — see the fault
    /// module docs).
    spare_of: Vec<u32>,
    /// Number of currently failed nodes (O(1) "any node down?" fast path
    /// for the injection retarget).
    nodes_failed_count: usize,
    // ---- task layer ----
    /// The collective task engine (`Some` only when the configuration
    /// carries a task workload, in which case it replaces stochastic
    /// generation entirely). All engine mutations happen on the main thread
    /// in steps 1–2, so task runs are bit-identical across kernels.
    task: Option<TaskEngine>,
    /// The multi-job engine (`Some` only when the configuration carries a
    /// job set). Unlike the single-workload mode, job traffic layers *over*
    /// stochastic generation — collectives run under background load. All
    /// mutations happen on the main thread in steps 1–2, so multi-job runs
    /// are bit-identical across kernels too.
    jobs: Option<JobsEngine>,
    // ---- activity gate (staged kernels only) ----
    /// Whether steps 4–5 iterate the active set (false for the legacy
    /// kernel's full scan).
    gated: bool,
    /// Whether the routing mechanism disseminates control state every cycle
    /// (PB) or on a fixed period (ECtN) — if so, idle cycles are not
    /// no-ops and the drain fast-forward must not skip them.
    control_plane_every_cycle: bool,
    /// Schedule change points, precomputed so the drain loop does not
    /// re-collect them per iteration.
    change_points: Vec<Cycle>,
    /// Membership flag per router.
    active_flags: Vec<bool>,
    /// Router indices currently in the active set (sorted before use).
    active_list: Vec<u32>,
    // ---- sharded phase execution ----
    /// Per-shard scratch and effect-staging buffers. The sequential kernels
    /// hold exactly one shard; the parallel kernel one per worker.
    shards: Vec<ShardState>,
    /// Number of shards phases are split into (1 for sequential kernels).
    num_shards: usize,
    /// Persistent worker pool (`None` unless `num_shards > 1`).
    pool: Option<WorkerPool>,
    /// Reusable buffer for due events (step 1).
    scratch_events: Vec<Event>,
}

impl Network {
    /// Build a network from a validated configuration.
    pub fn new(config: SimulationConfig) -> Self {
        config.validate().expect("invalid simulation configuration");
        let topo = config.topology.build();
        let root_rng = DeterministicRng::new(config.seed);
        let routers: Vec<Router> = topo
            .routers()
            .map(|r| Router::new(r, topo, config.network))
            .collect();
        let router_rngs: Vec<DeterministicRng> = topo
            .routers()
            .map(|r| root_rng.split(0x1000_0000 + r.0 as u64))
            .collect();
        let base_load = config
            .schedule
            .phases()
            .first()
            .and_then(|p| p.load)
            .unwrap_or(config.offered_load);
        let nodes: Vec<Node> = topo
            .nodes()
            .map(|n| {
                Node::new(
                    n,
                    config.injection,
                    base_load,
                    config.network.packet_size_phits,
                    root_rng.split(0x2000_0000 + n.0 as u64),
                )
            })
            .collect();
        let patterns = config.schedule.build_patterns(topo);
        let algorithm = RoutingAlgorithm::new(config.routing, config.routing_config);
        // transient series are centred on the first traffic change (or the
        // end of warm-up when the schedule is constant)
        let origin = config
            .schedule
            .change_points()
            .first()
            .copied()
            .unwrap_or(config.warmup_cycles) as i64;
        let metrics = Metrics::new(origin, 20);
        // The wheel must cover the farthest schedule distance of any event:
        // packet serialisation plus the longest link latency plus the router
        // pipeline, with a little slack. Anything beyond spills to the
        // overflow map, which stays correct — just slower.
        let lat = &config.network.latencies;
        let max_link = lat.terminal_link.max(lat.local_link).max(lat.global_link);
        let horizon =
            (config.network.packet_size_phits + max_link + lat.router_pipeline + 2) as usize;
        let events = match config.kernel {
            KernelMode::Optimized | KernelMode::Parallel { .. } => {
                KernelQueue::Wheel(EventQueue::with_horizon(horizon))
            }
            KernelMode::Legacy => KernelQueue::Legacy(LegacyEventQueue::new()),
        };
        let gated = config.kernel != KernelMode::Legacy;
        let num_shards = config.kernel.resolved_workers().max(1);
        let pool = (num_shards > 1).then(|| WorkerPool::new(num_shards));
        // PB/ECtN dissemination runs on a fixed cadence even through idle
        // cycles (and is *not* a no-op there: it refreshes group views from
        // post-transmission state), so the drain fast-forward must not skip
        // cycles for those mechanisms.
        let control_plane_every_cycle =
            config.routing.needs_pb_dissemination() || config.routing.needs_ectn_broadcast();
        // Fault cycles are schedule change-points too: the drain()
        // fast-forward must observe every fault at its exact cycle.
        let mut change_points = config.schedule.change_points();
        change_points.extend(config.faults.change_points());
        change_points.sort_unstable();
        change_points.dedup();
        let fault_events = config.faults.sorted_events();
        let task = config
            .workload
            .as_ref()
            .map(|w| TaskEngine::new(w, &topo, config.network.packet_size_phits));
        let jobs = (!config.jobs.is_empty())
            .then(|| JobsEngine::new(&config.jobs, &topo, config.network.packet_size_phits));
        let num_routers = routers.len();
        let num_nodes = nodes.len();
        Network {
            config,
            topo,
            algorithm,
            routers,
            nodes,
            patterns,
            current_phase: 0,
            events,
            router_rngs,
            cycle: 0,
            next_packet_id: 0,
            metrics,
            in_flight: 0,
            in_flight_phits: 0,
            injected_packets_total: 0,
            injected_phits_total: 0,
            last_delivery_cycle: 0,
            link_state: LinkState::new(&topo),
            fault_events,
            next_fault: 0,
            node_blocked: vec![false; num_nodes],
            lost_credits: BTreeMap::new(),
            linkview_truth: GatewayLiveness::new(&topo),
            group_views: vec![GatewayLiveness::new(&topo); topo.num_groups() as usize],
            group_views_prev: vec![GatewayLiveness::new(&topo); topo.num_groups() as usize],
            flood_quiescent: true,
            views_converged: true,
            node_failed: vec![false; num_nodes],
            spare_of: vec![0; num_nodes],
            nodes_failed_count: 0,
            task,
            jobs,
            gated,
            control_plane_every_cycle,
            change_points,
            active_flags: vec![false; num_routers],
            active_list: Vec::with_capacity(num_routers),
            shards: (0..num_shards).map(|_| ShardState::default()).collect(),
            num_shards,
            pool,
            scratch_events: Vec::new(),
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The topology.
    pub fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The metrics collector.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics collector (to open the measurement window).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Borrow a router (tests and inspection).
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Borrow a node (tests and inspection).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Packets currently inside the network (injected but not delivered or
    /// dropped).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Phits currently inside the network.
    pub fn in_flight_phits(&self) -> u64 {
        self.in_flight_phits
    }

    /// Packets handed to the routers' injection buffers since the beginning
    /// of the run. Under faults the conservation law is the exact equality
    /// `injected = delivered + in-flight + dropped-on-fault`.
    pub fn injected_packets_total(&self) -> u64 {
        self.injected_packets_total
    }

    /// Phits injected since the beginning of the run.
    pub fn injected_phits_total(&self) -> u64 {
        self.injected_phits_total
    }

    /// The dynamic link-availability mask (all up unless a fault plan is
    /// active).
    pub fn link_state(&self) -> &LinkState {
        &self.link_state
    }

    /// The true network-wide gateway-liveness map (what the flooded views
    /// converge towards; tests compare per-router views against it).
    pub fn linkview_truth(&self) -> &GatewayLiveness {
        &self.linkview_truth
    }

    /// Group `g`'s current flooded gateway-liveness view (what its routers
    /// install at the next control-plane exchange).
    pub fn group_view(&self, g: GroupId) -> &GatewayLiveness {
        &self.group_views[g.0 as usize]
    }

    /// Whether `node` is currently failed (a `NodeFail` without a matching
    /// `NodeRestore` has fired).
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.node_failed[node.index()]
    }

    /// Credits currently lost to in-flight drops on failed links (returned
    /// to their owners when the links come back up). Non-zero only while a
    /// link that dropped traffic is still down.
    pub fn fault_lost_credits(&self) -> u64 {
        self.lost_credits
            .values()
            .flat_map(|per_vc| per_vc.iter())
            .map(|&c| c as u64)
            .sum()
    }

    /// Number of events pending on links.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Number of shards the per-cycle phases are split into (1 for the
    /// sequential kernels).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of routers currently in the active set (equals the router
    /// count for the legacy kernel, which scans everything).
    pub fn active_routers(&self) -> usize {
        if self.gated {
            self.active_list.len()
        } else {
            self.routers.len()
        }
    }

    /// Whether the network appears stalled: packets are in flight but nothing
    /// has been delivered for `threshold` cycles. Used as a deadlock
    /// watchdog by the tests.
    pub fn stalled(&self, threshold: Cycle) -> bool {
        self.in_flight > 0 && self.cycle.saturating_sub(self.last_delivery_cycle) > threshold
    }

    /// Advance `cycles` cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Stop traffic generation and keep stepping until every in-flight packet
    /// is delivered (or `max_cycles` elapse). Returns true if the network
    /// drained completely.
    ///
    /// With the optimized and parallel kernels, cycles in which every router
    /// is idle and all remaining traffic is in flight on links are skipped by
    /// fast-forwarding the clock to the next pending event — behaviour-
    /// preserving because traffic generation is off and an idle cycle
    /// changes no state.
    ///
    /// Draining ends the run at the cycle the network empties: fault events
    /// scheduled beyond that cycle simply have not happened yet (the
    /// simulation ended while the network was still degraded — e.g. a
    /// `LinkUp` after the drain point leaves its link down and its lost
    /// credits ledgered). The fault plan is not frozen: resume stepping and
    /// the remaining events fire at their scheduled cycles.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for node in &mut self.nodes {
            node.set_offered_load(0.0);
        }
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if self.in_flight == 0 && self.all_source_queues_empty() {
                return true;
            }
            if self.gated
                && !self.control_plane_every_cycle
                && self.active_list.is_empty()
                && self.all_source_queues_empty()
                // a waiting rank accrues a stall cycle per real cycle, so the
                // fast-forward must not skip cycles while a task or job set
                // is running — jobs can also be waiting on a future
                // start_cycle with nothing in flight at all (the legacy
                // kernel never skips — bit-identity would break)
                && self.task.as_ref().is_none_or(|t| t.is_complete())
                && self.jobs.as_ref().is_none_or(|j| j.is_complete())
            {
                if let Some(t) = self.events.next_time() {
                    if t > self.cycle {
                        // don't jump past a schedule change point (traffic
                        // phase switch or fault event): clamp the jump and
                        // fall through to step(), so the change is observed
                        // by a real step at its exact cycle
                        let next_change =
                            self.change_points.iter().copied().find(|&c| c > self.cycle);
                        self.cycle = match next_change {
                            Some(c) => t.min(c),
                            None => t,
                        };
                        if self.cycle >= deadline {
                            // the jump exhausted the budget: stop without
                            // stepping, exactly like the cycle-by-cycle
                            // kernels which never reach past the deadline
                            break;
                        }
                    }
                }
            }
            self.step();
        }
        self.in_flight == 0 && self.all_source_queues_empty()
    }

    fn all_source_queues_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.queue_len() == 0)
    }

    /// The task engine, when the configuration carries a workload.
    pub fn task(&self) -> Option<&TaskEngine> {
        self.task.as_ref()
    }

    /// The multi-job engine, when the configuration carries a job set.
    pub fn jobs(&self) -> Option<&JobsEngine> {
        self.jobs.as_ref()
    }

    /// Step until every job of the configured job set completes or
    /// `max_cycles` elapse. Returns the job-set makespan (the cycle the
    /// last job's last rank finished), or `None` when the budget ran out —
    /// or when the configuration carries no jobs at all. Unlike workload
    /// mode, completion does not imply an empty network: the stochastic
    /// background traffic keeps flowing.
    pub fn run_until_jobs_complete(&mut self, max_cycles: u64) -> Option<Cycle> {
        self.jobs.as_ref()?;
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if let Some(done) = self.jobs.as_ref().and_then(|j| j.completion_cycle()) {
                return Some(done);
            }
            self.step();
        }
        self.jobs.as_ref().and_then(|j| j.completion_cycle())
    }

    /// Step until the task workload completes or `max_cycles` elapse.
    /// Returns the application completion cycle (the cycle the last rank
    /// finished), or `None` when the budget ran out — or when the
    /// configuration carries no workload at all.
    ///
    /// Completion implies the network is empty: the last step's sends must
    /// all have been delivered for their ranks to finish, and no other
    /// traffic exists in workload mode.
    pub fn run_until_tasks_complete(&mut self, max_cycles: u64) -> Option<Cycle> {
        self.task.as_ref()?;
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            if let Some(done) = self.task.as_ref().and_then(|t| t.completion_cycle()) {
                return Some(done);
            }
            self.step();
        }
        self.task.as_ref().and_then(|t| t.completion_cycle())
    }

    /// Register upcoming checkpoint cycles as schedule change points, so the
    /// [`Network::drain`] fast-forward clamps its clock jumps to them. A
    /// snapshot must be taken at its exact requested cycle — a jump past it
    /// would silently move the checkpoint and break resume bit-identity with
    /// runs that stepped cycle-by-cycle.
    pub fn add_checkpoint_points(&mut self, cycles: &[Cycle]) {
        self.change_points.extend_from_slice(cycles);
        self.change_points.sort_unstable();
        self.change_points.dedup();
    }

    /// Sum of contention counters across all routers (used by invariant
    /// tests: must be zero once the network drains).
    pub fn total_contention(&self) -> u64 {
        self.routers
            .iter()
            .map(|r| r.contention().total() as u64)
            .sum()
    }

    /// Add router `r_idx` to the active set (no-op if already present).
    #[inline]
    fn mark_active(&mut self, r_idx: usize) {
        if self.gated && !self.active_flags[r_idx] {
            self.active_flags[r_idx] = true;
            self.active_list.push(r_idx as u32);
        }
    }

    /// Apply every fault event due at or before `now` (start-of-cycle, so a
    /// fault at cycle N affects cycle N's arrivals). Main-thread work in
    /// every kernel — fault runs stay bit-identical across kernels and
    /// worker counts.
    fn apply_due_faults(&mut self, now: Cycle) {
        let truth_version_before = self.linkview_truth.version();
        while let Some(event) = self.fault_events.get(self.next_fault) {
            if event.at > now {
                break;
            }
            let kind = event.kind;
            self.next_fault += 1;
            match kind {
                FaultKind::LinkDown { router, port } => {
                    // the gateway-liveness truth the control plane will
                    // disseminate (no-op for local links)
                    self.linkview_truth
                        .set_global_link(&self.topo, router, port, false);
                    for (r, p) in self.link_state.set_link(&self.topo, router, port, false) {
                        self.routers[r.index()].set_link_up(p, false);
                        // the link-interface serialisation buffer is lost
                        // with the link: staged packets are dropped and
                        // their consumed downstream credits ledgered,
                        // exactly like in-flight drops
                        let dropped = self.routers[r.index()].drop_staged_for_dead_port(p);
                        for (packet, dst_vc) in dropped {
                            self.in_flight -= 1;
                            self.in_flight_phits -= packet.size_phits as u64;
                            self.metrics.record_dropped_staged(&packet);
                            self.ledger_lost_credits(r, p, dst_vc, packet.size_phits);
                        }
                        // wake both endpoints so adaptive policies reconsider
                        // their buffered heads this cycle (behaviour-neutral
                        // for idle routers)
                        self.mark_active(r.index());
                    }
                }
                FaultKind::LinkUp { router, port } => {
                    self.linkview_truth
                        .set_global_link(&self.topo, router, port, true);
                    for (r, p) in self.link_state.set_link(&self.topo, router, port, true) {
                        self.routers[r.index()].set_link_up(p, true);
                        // return the credits lost to drops on this directed
                        // link: the downstream space those phits had
                        // reserved was never used
                        if let Some(per_vc) = self.lost_credits.remove(&(r.0, p.0)) {
                            for (vc, phits) in per_vc.into_iter().enumerate() {
                                if phits > 0 {
                                    self.routers[r.index()].receive_credits(
                                        p,
                                        VcId(vc as u8),
                                        phits,
                                    );
                                }
                            }
                        }
                        self.mark_active(r.index());
                    }
                }
                FaultKind::RouterDrain { router } => {
                    for node in self.topo.nodes_of_router(router) {
                        self.node_blocked[node.index()] = true;
                    }
                }
                FaultKind::RouterRestore { router } => {
                    for node in self.topo.nodes_of_router(router) {
                        self.node_blocked[node.index()] = false;
                    }
                }
                FaultKind::NodeFail { node, spare } => {
                    // drain-at-source: the node stops generating (its queued
                    // packets still inject and flush), new traffic addressed
                    // to it retargets to the spare at injection time, and
                    // in-flight deliveries still land at its NIC — so every
                    // conservation equality is untouched
                    self.node_failed[node.index()] = true;
                    self.spare_of[node.index()] = spare.0;
                    self.nodes_failed_count += 1;
                    self.linkview_truth.set_node(node, false);
                }
                FaultKind::NodeRestore { node } => {
                    self.node_failed[node.index()] = false;
                    self.nodes_failed_count -= 1;
                    self.linkview_truth.set_node(node, true);
                }
            }
        }
        // any truth change restarts the flooding rounds (and is by
        // definition not yet visible in the routers' views)
        if self.linkview_truth.version() != truth_version_before {
            self.flood_quiescent = false;
            self.views_converged = false;
        }
    }

    /// Account a packet or credit message dropped on the failed directed
    /// link whose *upstream* end is `(upstream, port)`: remember the credits
    /// so `LinkUp` can return them.
    fn ledger_lost_credits(&mut self, upstream: RouterId, port: Port, vc: VcId, phits: u32) {
        let num_vcs = self.routers[upstream.index()]
            .output(port)
            .num_downstream_vcs();
        let per_vc = self
            .lost_credits
            .entry((upstream.0, port.0))
            .or_insert_with(|| vec![0; num_vcs]);
        per_vc[vc.index()] += phits;
    }

    /// Run one sharded phase: dispatch the shard executor (on the worker
    /// pool when present, inline otherwise), then replay the staged
    /// cross-router effects in shard order — which, because shards are
    /// contiguous chunks of the ascending work list, is exactly the order
    /// the sequential kernel produces them in.
    fn run_phase(&mut self, kind: PhaseKind) {
        let num_items = match kind {
            PhaseKind::Pb | PhaseKind::Ectn => self.topo.num_groups() as usize,
            PhaseKind::Alloc | PhaseKind::Transmit => self.active_list.len(),
        };
        if num_items == 0 {
            return;
        }
        let ctx = StepCtx {
            topo: self.topo,
            algorithm: self.algorithm,
            network: self.config.network,
        };
        let job = PhaseJob {
            kind,
            now: self.cycle,
            routers: self.routers.as_mut_ptr(),
            rngs: self.router_rngs.as_mut_ptr(),
            active: self.active_list.as_ptr(),
            num_items,
            shards: self.shards.as_mut_ptr(),
            num_shards: self.num_shards,
            ctx: &ctx,
            linkviews: self.group_views.as_ptr(),
        };
        match &self.pool {
            Some(pool) => pool.run(job),
            // Safety: a single shard executed inline has trivially exclusive
            // access to everything the job points to.
            None => unsafe { execute_shard(&job, 0) },
        }
        for s in 0..self.num_shards {
            let shard = &mut self.shards[s];
            for (at, event) in shard.staged_events.drain(..) {
                self.events.schedule(at, event);
            }
            for (at, misrouted) in shard.staged_commits.drain(..) {
                self.metrics.record_commit(at, misrouted);
            }
            for packet in shard.staged_discards.drain(..) {
                self.in_flight -= 1;
                self.in_flight_phits -= packet.size_phits as u64;
                self.metrics.record_dropped_unroutable(&packet);
            }
            if shard.staged_recommits > 0 {
                self.metrics.record_recommitted(shard.staged_recommits);
                shard.staged_recommits = 0;
            }
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;

        // ---- 0. traffic-phase change ----
        let phase = self.config.schedule.phase_index_at(now);
        if phase != self.current_phase {
            self.current_phase = phase;
            let load = self.config.schedule.phases()[phase]
                .load
                .unwrap_or(self.config.offered_load);
            for node in &mut self.nodes {
                node.set_offered_load(load);
            }
        }

        // ---- 0.5. fault events ----
        if self.next_fault < self.fault_events.len() {
            self.apply_due_faults(now);
        }

        // ---- 1. deliver due events ----
        // In-flight traffic on a link that failed is lost: an arrival whose
        // transmit direction is down at its completion cycle is dropped and
        // accounted (packets in `DroppedOnFault`, credit messages in the
        // lost-credit ledger). `faults_active` keeps the healthy path free
        // of peer lookups.
        let faults_active = !self.link_state.all_up();
        let mut due = std::mem::take(&mut self.scratch_events);
        self.events.pop_due_into(now, &mut due);
        for event in due.drain(..) {
            match event {
                Event::PacketArrival {
                    router,
                    port,
                    vc,
                    packet,
                } => {
                    if faults_active {
                        // the packet travelled over the peer's outgoing
                        // direction towards (router, port)
                        if let PortPeer::Router(upstream, up_port) = self.topo.peer(router, port) {
                            if !self.link_state.is_up(upstream, up_port) {
                                self.in_flight -= 1;
                                self.in_flight_phits -= packet.size_phits as u64;
                                self.metrics.record_dropped_on_fault(&packet);
                                self.ledger_lost_credits(upstream, up_port, vc, packet.size_phits);
                                continue;
                            }
                        }
                    }
                    self.mark_active(router.index());
                    self.routers[router.index()].receive_packet(port, vc, packet);
                }
                Event::CreditReturn {
                    router,
                    port,
                    vc,
                    phits,
                } => {
                    if faults_active {
                        // the credit message travelled the reverse direction
                        // of (router, port)'s link
                        if let PortPeer::Router(peer, peer_port) = self.topo.peer(router, port) {
                            if !self.link_state.is_up(peer, peer_port) {
                                self.ledger_lost_credits(router, port, vc, phits);
                                continue;
                            }
                        }
                    }
                    // Fresh credits can only unblock a head packet, and a
                    // router holding packets is active already; marking here
                    // keeps the gate conservative at negligible cost.
                    self.mark_active(router.index());
                    self.routers[router.index()].receive_credits(port, vc, phits);
                }
                Event::Delivery { node: _, packet } => {
                    self.in_flight -= 1;
                    self.in_flight_phits -= packet.size_phits as u64;
                    self.last_delivery_cycle = now;
                    self.metrics.record_delivery(&packet, now);
                    // task attribution (main thread in every kernel): credit
                    // the sender's outstanding sends and the receiver's
                    // per-step receive counter
                    if let Some(task) = self.task.as_mut() {
                        task.on_delivery(&packet);
                    }
                    if let Some(jobs) = self.jobs.as_mut() {
                        jobs.on_delivery(&packet);
                    }
                }
            }
        }
        self.scratch_events = due;

        // ---- 2. generation + injection ----
        if let Some(task) = self.task.as_mut() {
            // task workload: ranks advance past completed steps and enqueue
            // the next step's sends; stochastic generation is off entirely
            task.advance_and_generate(
                now,
                &mut self.nodes,
                &mut self.metrics,
                &mut self.next_packet_id,
                &self.node_blocked,
                &self.node_failed,
            );
        } else {
            // job mode layers over stochastic generation: started jobs
            // enqueue their task packets first (deterministic specification
            // order), then the background pattern fills in behind them —
            // both feed the same per-node source queues and the shared
            // injection loop below
            if let Some(jobs) = self.jobs.as_mut() {
                jobs.advance_and_generate(
                    now,
                    &mut self.nodes,
                    &mut self.metrics,
                    &mut self.next_packet_id,
                    &self.node_blocked,
                    &self.node_failed,
                );
            }
            let pattern = &self.patterns[self.current_phase];
            let blocked = &self.node_blocked;
            let failed = &self.node_failed;
            for (idx, node) in self.nodes.iter_mut().enumerate() {
                // nodes of a draining router, and failed nodes, generate
                // nothing (their queued packets still inject below)
                if blocked[idx] || failed[idx] {
                    continue;
                }
                let phits = node.generate(now, pattern, &mut self.next_packet_id);
                if phits > 0 {
                    self.metrics.record_generated(phits as u64);
                }
            }
        }
        for node_idx in 0..self.nodes.len() {
            let node_id = NodeId(node_idx as u32);
            let Some(head_size) = self.nodes[node_idx].head().map(|p| p.size_phits) else {
                continue;
            };
            let router_id = self.topo.node_router(node_id);
            let port = self.topo.node_port(node_id);
            let num_vcs = self.routers[router_id.index()].input(port).num_vcs();
            let start = self.nodes[node_idx].take_vc_rr(num_vcs);
            let mut chosen = None;
            for k in 0..num_vcs {
                let vc = (start + k) % num_vcs;
                if self.routers[router_id.index()].can_accept_input(port, VcId(vc as u8), head_size)
                {
                    chosen = Some(vc);
                    break;
                }
            }
            if let Some(vc) = chosen {
                let mut packet = self.nodes[node_idx].pop_head().expect("head checked");
                packet.injected_at = Some(now);
                // reroute-to-spare: a packet addressed to a failed node is
                // retargeted at injection time, following the spare chain in
                // fail order (validation guarantees it terminates). Part of
                // the fault plan's semantics — deterministic in every
                // kernel, since fault state only changes on the main thread.
                if self.nodes_failed_count > 0 && self.node_failed[packet.dst.index()] {
                    let mut dst = packet.dst;
                    while self.node_failed[dst.index()] {
                        dst = NodeId(self.spare_of[dst.index()]);
                    }
                    packet.dst = dst;
                    self.metrics.record_retargeted();
                }
                self.in_flight += 1;
                self.in_flight_phits += packet.size_phits as u64;
                self.injected_packets_total += 1;
                self.injected_phits_total += packet.size_phits as u64;
                self.mark_active(router_id.index());
                self.routers[router_id.index()].receive_packet(port, VcId(vc as u8), packet);
            }
        }

        // ---- 3. control-plane dissemination ----
        // Each exchange also carries the piggybacked gateway-liveness bits:
        // one flooding round advances every group's view by one hop (origin
        // injection for its own keyspace, live-neighbour merges for the
        // rest), then each group's routers install their group's view. The
        // round runs on the main thread before the (possibly sharded)
        // exchange, so churn runs stay bit-identical across kernels.
        if self.config.routing.needs_pb_dissemination() {
            self.flood_linkviews();
            if self.gated {
                self.run_phase(PhaseKind::Pb);
            } else {
                self.disseminate_pb_legacy();
            }
        }
        if self.config.routing.needs_ectn_broadcast()
            && now.is_multiple_of(self.config.routing_config.ectn_update_period)
        {
            self.flood_linkviews();
            if self.gated {
                self.run_phase(PhaseKind::Ectn);
            } else {
                self.broadcast_ectn_legacy();
            }
        }
        // staleness metric: some router's view still lags the truth
        // (trivially converged for the whole of a healthy run)
        if self.control_plane_every_cycle && !self.views_converged {
            self.metrics.record_stale_linkstate_cycle();
        }

        // Events only arrive in steps 1–2, so the active set is complete
        // here; sort it so steps 4–5 visit routers in ascending index order —
        // the same order as the legacy full scan, which keeps event sequence
        // numbers (and therefore results) bit-for-bit identical. It also
        // makes shard chunks contiguous ascending ranges, which is what the
        // parallel merge relies on.
        if self.gated {
            self.active_list.sort_unstable();
        }

        // ---- 4. routing + allocation ----
        for _ in 0..self.config.network.allocator_speedup {
            if self.gated {
                self.run_phase(PhaseKind::Alloc);
            } else {
                for r_idx in 0..self.routers.len() {
                    self.route_and_allocate_legacy(r_idx, now);
                }
            }
        }

        // ---- 5. link transmission ----
        if self.gated {
            self.run_phase(PhaseKind::Transmit);
        } else {
            for r_idx in 0..self.routers.len() {
                let router_id = RouterId(r_idx as u32);
                // faithful seed-kernel baseline: allocate the sent list
                let sent = self.routers[r_idx].transmit_outputs(now);
                for (port, packet, vc, tail_at) in sent {
                    match self.topo.peer(router_id, port) {
                        PortPeer::Node(node) => {
                            let latency = self.config.network.latencies.terminal_link as Cycle;
                            self.events
                                .schedule(tail_at + latency, Event::Delivery { node, packet });
                        }
                        PortPeer::Router(peer, peer_port) => {
                            let class = port.class(&self.topo.layout());
                            let latency = self.config.network.link_latency_for(class) as Cycle;
                            self.events.schedule(
                                tail_at + latency,
                                Event::PacketArrival {
                                    router: peer,
                                    port: peer_port,
                                    vc,
                                    packet,
                                },
                            );
                        }
                        PortPeer::Unconnected => {
                            unreachable!("routing never selects an unconnected port")
                        }
                    }
                }
            }
        }

        // ---- 6. retire idle routers from the active set ----
        if self.gated {
            let flags = &mut self.active_flags;
            let routers = &self.routers;
            self.active_list.retain(|&r| {
                if routers[r as usize].is_idle() {
                    flags[r as usize] = false;
                    false
                } else {
                    true
                }
            });
        }

        self.cycle += 1;
    }

    /// One synchronous flooding round over the per-group gateway-liveness
    /// views, run immediately before a control-plane exchange.
    ///
    /// Double-buffered: every group clones its previous-round view, merges
    /// the truth entries it observes *directly* (its own link keyspace, its
    /// own nodes), then merges the previous-round views of every group it
    /// has a live direct link to — so information travels exactly one
    /// live-group-hop per exchange, and an entry owned by group `g` reaches
    /// group `G` within `(1 + live-hop-distance(g, G))` exchanges (the
    /// staleness bound pinned by `tests/fault_churn.rs`). Per-entry
    /// sequence numbers make the merges conflict-free in any order, so a
    /// repair always overtakes the stale down-mark it reverts.
    ///
    /// Main-thread work in every kernel (the sharded phases only *install*
    /// the finished views), so churn runs stay bit-identical across worker
    /// counts. The quiescent fast path skips rounds entirely once every
    /// view has adopted everything reachable — healthy runs never enter the
    /// loop.
    fn flood_linkviews(&mut self) {
        if self.flood_quiescent {
            return;
        }
        std::mem::swap(&mut self.group_views, &mut self.group_views_prev);
        let topo = &self.topo;
        let truth = &self.linkview_truth;
        let prev = &self.group_views_prev;
        let num_groups = topo.num_groups();
        let mut adopted_any = false;
        for g in 0..num_groups {
            let group = GroupId(g);
            let view = &mut self.group_views[g as usize];
            view.clone_from(&prev[g as usize]);
            // origin injection: directly observed entries
            adopted_any |= view.merge_own_from(truth, topo, group);
            // one hop: neighbours' previous-round views over live links
            for h in 0..num_groups {
                if h == g {
                    continue;
                }
                let j = topo.group_link_to(group, GroupId(h));
                if truth.link_up(group, j) {
                    adopted_any |= view.merge_from(&prev[h as usize]);
                }
            }
        }
        if adopted_any {
            self.views_converged = self
                .group_views
                .iter()
                .all(|view| view.same_marks(&self.linkview_truth));
        } else {
            // nothing moved: further rounds are no-ops until the next truth
            // change (either converged, or stably partitioned from the rest)
            self.flood_quiescent = true;
        }
    }

    /// Seed-kernel PB dissemination: per-group `Vec` gather plus one cloned
    /// `Vec` per router per cycle (the baseline the flat-array version is
    /// benchmarked against). Each group installs its *own* flooded
    /// gateway-liveness view, exactly like the sharded phase.
    fn disseminate_pb_legacy(&mut self) {
        for g in 0..self.topo.num_groups() {
            let group = GroupId(g);
            let mut group_flags = Vec::with_capacity(self.topo.global_links_per_group() as usize);
            for r in self.topo.routers_in_group(group) {
                group_flags.extend(self.routers[r.index()].pb().own_snapshot());
            }
            for r in self.topo.routers_in_group(group) {
                self.routers[r.index()]
                    .pb_mut()
                    .install_group(group_flags.clone());
            }
        }
        for g in 0..self.topo.num_groups() {
            let view = &self.group_views[g as usize];
            for r in self.topo.routers_in_group(GroupId(g)) {
                self.routers[r.index()].install_link_view(view);
            }
        }
        for router in self.routers.iter_mut() {
            piggyback::update_own_saturation(&self.config.routing_config, router);
        }
    }

    /// Seed-kernel ECtN broadcast: snapshot `Vec`s and a cloned combined
    /// array per router (the baseline for the flat-buffer version). Each
    /// group installs its *own* flooded gateway-liveness view.
    fn broadcast_ectn_legacy(&mut self) {
        for g in 0..self.topo.num_groups() {
            let group = GroupId(g);
            let snapshots: Vec<Vec<u32>> = self
                .topo
                .routers_in_group(group)
                .map(|r| self.routers[r.index()].ectn().partial_snapshot())
                .collect();
            let combined =
                df_router::ectn::combine_partials(snapshots.iter().map(|s| s.as_slice()));
            let view = &self.group_views[g as usize];
            for r in self.topo.routers_in_group(group) {
                self.routers[r.index()]
                    .ectn_mut()
                    .install_combined(combined.clone());
                self.routers[r.index()].install_link_view(view);
            }
        }
    }

    /// The seed kernel's allocation iteration, kept verbatim as the
    /// `KernelMode::Legacy` baseline: `Vec`-returning head/occupancy scans
    /// and an allocated grant list every call.
    fn route_and_allocate_legacy(&mut self, r_idx: usize, now: Cycle) {
        let router_id = RouterId(r_idx as u32);
        let track_ectn = self.config.routing.needs_ectn_broadcast();

        // a. contention / ECtN registration of new head packets
        let unregistered = self.routers[r_idx].unregistered_heads();
        for (port, vc) in unregistered {
            let (min_out, ectn_link) = {
                let router = &self.routers[r_idx];
                let head = router
                    .input(port)
                    .vc(vc.index())
                    .head()
                    .expect("unregistered head exists");
                let min_out = minimal::minimal_output(&self.topo, router_id, head.dst);
                let ectn_link = if track_ectn {
                    minimal::ectn_link_for(&self.topo, router_id, router.input(port).class(), head)
                } else {
                    None
                };
                (min_out, ectn_link)
            };
            self.routers[r_idx].register_head(port, vc, min_out, ectn_link);
        }

        // b. routing decisions for every occupied VC head
        let occupied = self.routers[r_idx].occupied_vcs();
        self.shards[0].requests.clear();
        self.shards[0].decisions.clear();
        self.shards[0].discards.clear();
        {
            let router = &self.routers[r_idx];
            let rng = &mut self.router_rngs[r_idx];
            for (port, vc) in occupied {
                let head = router.input(port).vc(vc.index()).head().expect("occupied");
                let decision = self.algorithm.decide(router, port, head, rng);
                if decision.kind == df_routing::DecisionKind::Discard {
                    self.shards[0].discards.push((port, vc));
                    continue;
                }
                self.shards[0].requests.push(df_router::AllocationRequest {
                    input_port: port,
                    input_vc: vc,
                    output_port: decision.output_port,
                    output_vc: decision.output_vc,
                    size_phits: head.size_phits,
                });
                self.shards[0].decisions.push(((port, vc), decision));
            }
        }

        // b'. discards (fault routing): same post-decision-loop application
        // order as the staged kernels, with the staged effects flushed
        // immediately — the per-sink order direct application would produce
        if !self.shards[0].discards.is_empty() {
            let ctx = StepCtx {
                topo: self.topo,
                algorithm: self.algorithm,
                network: self.config.network,
            };
            let discards = std::mem::take(&mut self.shards[0].discards);
            for &(port, vc) in &discards {
                crate::parallel::discard_one(
                    &mut self.routers[r_idx],
                    &ctx,
                    now,
                    port,
                    vc,
                    &mut self.shards[0],
                );
            }
            let shard = &mut self.shards[0];
            // hand the scratch list back so the hot loop stays allocation-
            // free (same discipline as route_and_allocate_one)
            shard.discards = discards;
            shard.discards.clear();
            for (at, event) in shard.staged_events.drain(..) {
                self.events.schedule(at, event);
            }
            for packet in shard.staged_discards.drain(..) {
                self.in_flight -= 1;
                self.in_flight_phits -= packet.size_phits as u64;
                self.metrics.record_dropped_unroutable(&packet);
            }
        }

        // c. separable allocation
        let grants = self.routers[r_idx].allocate(&self.shards[0].requests);

        // d. apply grants
        for grant in &grants {
            self.apply_one_grant_legacy(r_idx, now, grant);
        }
    }

    /// Apply one grant of router `r_idx` (legacy path): runs the shared
    /// staged implementation against shard 0 and flushes the staged effects
    /// immediately — the per-sink order (events in grant order, commits in
    /// grant order) is exactly what direct application produced, so the
    /// legacy kernel stays equivalent without duplicating the grant logic.
    fn apply_one_grant_legacy(&mut self, r_idx: usize, now: Cycle, grant: &Grant) {
        let ctx = StepCtx {
            topo: self.topo,
            algorithm: self.algorithm,
            network: self.config.network,
        };
        crate::parallel::apply_one_grant_staged(
            &mut self.routers[r_idx],
            &ctx,
            now,
            grant,
            &mut self.shards[0],
        );
        let shard = &mut self.shards[0];
        for (at, event) in shard.staged_events.drain(..) {
            self.events.schedule(at, event);
        }
        for (at, misrouted) in shard.staged_commits.drain(..) {
            self.metrics.record_commit(at, misrouted);
        }
        if shard.staged_recommits > 0 {
            self.metrics.record_recommitted(shard.staged_recommits);
            shard.staged_recommits = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::NetworkConfig;
    use df_routing::RoutingKind;
    use df_topology::DragonflyParams;
    use df_traffic::PatternKind;

    fn small_config(routing: RoutingKind, pattern: PatternKind, load: f64) -> SimulationConfig {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(routing)
            .pattern(pattern)
            .offered_load(load)
            .warmup_cycles(200)
            .measurement_cycles(400)
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn packets_are_delivered_under_light_uniform_traffic() {
        let mut net = Network::new(small_config(
            RoutingKind::Minimal,
            PatternKind::Uniform,
            0.1,
        ));
        net.run_cycles(600);
        assert!(
            net.metrics().delivered_packets_total() > 20,
            "expected deliveries, got {}",
            net.metrics().delivered_packets_total()
        );
        assert!(!net.stalled(300));
    }

    #[test]
    fn every_routing_mechanism_delivers_traffic() {
        for kind in RoutingKind::ALL {
            let mut net = Network::new(small_config(kind, PatternKind::Uniform, 0.1));
            net.run_cycles(600);
            assert!(
                net.metrics().delivered_packets_total() > 10,
                "{kind} delivered only {}",
                net.metrics().delivered_packets_total()
            );
        }
    }

    #[test]
    fn network_drains_and_counters_return_to_zero() {
        let mut net = Network::new(small_config(RoutingKind::Base, PatternKind::Uniform, 0.2));
        net.run_cycles(400);
        assert!(net.drain(5_000), "network must drain after traffic stops");
        assert_eq!(net.in_flight(), 0);
        assert_eq!(
            net.total_contention(),
            0,
            "contention counters must return to zero when the network is empty"
        );
    }

    #[test]
    fn adversarial_traffic_is_delivered_by_adaptive_routing() {
        let mut net = Network::new(small_config(
            RoutingKind::Base,
            PatternKind::Adversarial { offset: 1 },
            0.2,
        ));
        net.run_cycles(800);
        assert!(net.metrics().delivered_packets_total() > 20);
        assert!(!net.stalled(400), "no deadlock under adversarial traffic");
    }

    #[test]
    fn valiant_marks_packets_as_misrouted() {
        let cfg = small_config(RoutingKind::Valiant, PatternKind::Uniform, 0.1);
        let mut net = Network::new(cfg);
        net.metrics_mut().start_measurement(0);
        net.run_cycles(800);
        let summary = net.metrics().window_summary();
        assert!(summary.delivered_packets > 0);
        assert!(
            summary.global_misroute_fraction > 0.9,
            "VAL misroutes (nearly) all inter-group packets, got {}",
            summary.global_misroute_fraction
        );
    }

    #[test]
    fn minimal_routing_never_misroutes() {
        let cfg = small_config(RoutingKind::Minimal, PatternKind::Uniform, 0.15);
        let mut net = Network::new(cfg);
        net.metrics_mut().start_measurement(0);
        net.run_cycles(800);
        let summary = net.metrics().window_summary();
        assert!(summary.delivered_packets > 0);
        assert_eq!(summary.global_misroute_fraction, 0.0);
        assert_eq!(summary.local_misroute_fraction, 0.0);
        // minimal paths never exceed 3 hops
        assert!(summary.avg_hops <= 3.0 + 1e-9);
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let run = |seed: u64| {
            let cfg = SimulationConfig::builder()
                .topology(DragonflyParams::small())
                .network(NetworkConfig::fast_test())
                .routing(RoutingKind::Base)
                .pattern(PatternKind::Uniform)
                .offered_load(0.2)
                .warmup_cycles(0)
                .measurement_cycles(300)
                .seed(seed)
                .build()
                .unwrap();
            let mut net = Network::new(cfg);
            net.metrics_mut().start_measurement(0);
            net.run_cycles(300);
            let s = net.metrics().window_summary();
            (s.delivered_packets, s.avg_packet_latency)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn in_flight_accounting_is_consistent() {
        let mut net = Network::new(small_config(RoutingKind::Olm, PatternKind::Uniform, 0.2));
        net.run_cycles(300);
        // in_flight counts packets injected but not delivered; it can never
        // exceed total generated packets
        let generated = net.metrics().generated_phits_total / 8;
        assert!(net.in_flight() <= generated);
    }

    #[test]
    fn active_set_never_misses_a_loaded_router() {
        // the activity-gate invariant: any router holding buffered traffic
        // is in the active set (gate-specific, so pin the optimized kernel
        // regardless of the DF_SIM_KERNEL env default)
        let mut cfg = small_config(RoutingKind::Base, PatternKind::Uniform, 0.3);
        cfg.kernel = KernelMode::Optimized;
        let mut net = Network::new(cfg);
        for _ in 0..200 {
            net.step();
            for r in net.topology().routers() {
                let router = net.router(r);
                if !router.is_idle() {
                    assert!(
                        net.active_flags[r.index()],
                        "router {r} holds traffic but is not in the active set"
                    );
                }
            }
        }
    }

    #[test]
    fn active_set_shrinks_when_traffic_stops() {
        // gate-specific: pin the optimized kernel
        let mut cfg = small_config(RoutingKind::Base, PatternKind::Uniform, 0.2);
        cfg.kernel = KernelMode::Optimized;
        let mut net = Network::new(cfg);
        net.run_cycles(300);
        assert!(net.drain(5_000));
        assert_eq!(
            net.active_routers(),
            0,
            "all routers must retire from the active set once drained"
        );
    }

    #[test]
    fn parallel_kernel_spawns_its_pool_and_delivers() {
        let mut cfg = small_config(RoutingKind::Base, PatternKind::Uniform, 0.2);
        cfg.kernel = KernelMode::Parallel { workers: 3 };
        let mut net = Network::new(cfg);
        assert_eq!(net.num_shards(), 3);
        net.run_cycles(400);
        assert!(net.metrics().delivered_packets_total() > 20);
        assert!(net.drain(5_000));
        assert_eq!(net.active_routers(), 0);
    }

    #[test]
    fn parallel_kernel_with_one_worker_runs_inline() {
        let mut cfg = small_config(RoutingKind::Ectn, PatternKind::Uniform, 0.2);
        cfg.kernel = KernelMode::Parallel { workers: 1 };
        let mut net = Network::new(cfg);
        assert_eq!(net.num_shards(), 1);
        net.run_cycles(300);
        assert!(net.metrics().delivered_packets_total() > 10);
    }

    #[test]
    fn parallel_kernel_matches_optimized_summary() {
        // a fast in-crate smoke of the cross-kernel contract; the exhaustive
        // suite lives in tests/kernel_equivalence.rs
        let run = |kernel: KernelMode| {
            let mut cfg = small_config(
                RoutingKind::Base,
                PatternKind::Adversarial { offset: 1 },
                0.25,
            );
            cfg.kernel = kernel;
            let mut net = Network::new(cfg);
            net.metrics_mut().start_measurement(0);
            net.run_cycles(500);
            let s = net.metrics().window_summary();
            (
                s.delivered_packets,
                s.avg_packet_latency.to_bits(),
                net.in_flight(),
                net.pending_events(),
            )
        };
        let optimized = run(KernelMode::Optimized);
        for workers in [1, 2, 5] {
            assert_eq!(
                run(KernelMode::Parallel { workers }),
                optimized,
                "parallel({workers}) diverged from the optimized kernel"
            );
        }
    }
}
