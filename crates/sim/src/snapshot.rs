//! Full-state simulation snapshots: serialise a [`Network`] mid-run and
//! resume it **bit-identically** later — same deliveries, same RNG draws,
//! same golden fingerprints as an uninterrupted run, under every kernel.
//!
//! Declared as a child module of [`crate::network`] so it can reach the
//! simulator's private fields without widening the public API.
//!
//! # Format
//!
//! A snapshot is a checksummed frame (see [`df_engine::Encoder::finish_frame`]):
//! `magic "DFSIMSNP" | version | payload length | payload | FNV-1a64`.
//! Corrupt, truncated, foreign or version-skewed bytes are rejected before
//! any payload byte is interpreted.
//!
//! The payload stores only what a rebuilt `Network::new(config)` cannot
//! recompute:
//!
//! * identity — a fingerprint of the configuration (kernel-normalised, so a
//!   snapshot taken under one kernel restores under any other),
//! * the clock, packet-id counter and conservation ledgers,
//! * every router's buffered state ([`df_router::Router::save_state`]),
//! * every router-stream and node-stream RNG (seed + xoshiro words),
//! * every node's injector, source queue and statistics,
//! * the metrics collector,
//! * the pending link events in exact drain order,
//! * the fault cursor, link-availability mask, lost-credit ledger,
//!   node-failure flags and the gateway-liveness truth/flooded views,
//! * the task engine's execution state (rank cursors, outstanding sends,
//!   receive counters, compute-readiness clocks and the pending-packet
//!   table) when the configuration carries a collective workload — a
//!   snapshot can land mid-collective and resume bit-identically,
//! * the multi-job engine's execution state (one task section per job, in
//!   specification order) when the configuration carries a job set.
//!
//! **Not** stored (derived on restore): topology, routing tables/patterns,
//! derived occupancy counters, the activity gate (recomputed as the sorted
//! non-idle router set), shard scratch and the worker pool.

use df_engine::{CodecError, Decoder, DeterministicRng, Encoder};
use df_model::{Cycle, VcId};
use df_router::{decode_gateway_liveness, encode_gateway_liveness};
use df_topology::{LinkState, NodeId, Port, RouterId, Topology};

use super::{KernelQueue, Network};
use crate::config::{KernelMode, SimulationConfig};
use crate::events::{Event, EventQueue, LegacyEventQueue};
use std::collections::BTreeMap;

/// Frame magic of a simulation snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DFSIMSNP";
/// Current snapshot format version. Version 2 extended the metrics section
/// with the task-layer counters and appended the task engine's execution
/// state; version 3 folds the topology *kind* into the configuration
/// fingerprint so a snapshot can never silently restore onto a different
/// topology family (older snapshots are rejected rather than misread);
/// version 4 adds the per-rank compute-delay readiness clocks to the task
/// section and appends the multi-job engine's execution state (one task
/// section per job) so a snapshot can land mid-collective in any job of a
/// concurrent mix.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Fingerprint of a configuration, used to pair snapshots with the
/// configuration they were taken under. The kernel mode is normalised away:
/// simulation state is kernel-independent (the determinism contract), so a
/// snapshot is deliberately restorable under a different kernel.
/// The topology kind leads the hashed string explicitly (it is also part of
/// the `Debug` body) so cross-topology restores fail loudly even if two
/// parameterisations ever print alike.
pub fn config_fingerprint(config: &SimulationConfig) -> u64 {
    let mut normalized = config.clone();
    normalized.kernel = KernelMode::Optimized;
    let kind = normalized.topology.kind();
    df_engine::codec::fnv1a64(format!("{kind:?}|{normalized:?}").as_bytes())
}

fn encode_event(at: Cycle, event: &Event, e: &mut Encoder) {
    e.u64(at);
    match event {
        Event::PacketArrival {
            router,
            port,
            vc,
            packet,
        } => {
            e.u8(0);
            e.u32(router.0);
            e.u32(port.0);
            e.u8(vc.0);
            packet.encode(e);
        }
        Event::CreditReturn {
            router,
            port,
            vc,
            phits,
        } => {
            e.u8(1);
            e.u32(router.0);
            e.u32(port.0);
            e.u8(vc.0);
            e.u32(*phits);
        }
        Event::Delivery { node, packet } => {
            e.u8(2);
            e.u32(node.0);
            packet.encode(e);
        }
    }
}

fn decode_event(d: &mut Decoder) -> Result<(Cycle, Event), CodecError> {
    let at = d.u64()?;
    let event = match d.u8()? {
        0 => Event::PacketArrival {
            router: RouterId(d.u32()?),
            port: Port(d.u32()?),
            vc: VcId(d.u8()?),
            packet: df_model::Packet::decode(d)?,
        },
        1 => Event::CreditReturn {
            router: RouterId(d.u32()?),
            port: Port(d.u32()?),
            vc: VcId(d.u8()?),
            phits: d.u32()?,
        },
        2 => Event::Delivery {
            node: NodeId(d.u32()?),
            packet: df_model::Packet::decode(d)?,
        },
        tag => {
            return Err(CodecError::Invalid(format!(
                "unknown event tag {tag} in snapshot"
            )))
        }
    };
    Ok((at, event))
}

impl Network {
    /// Serialise the complete simulation state into a versioned, checksummed
    /// snapshot. Pair with [`Network::restore`]; the restored network
    /// continues bit-identically to this one.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(config_fingerprint(&self.config));
        e.u64(self.cycle);
        e.usize(self.current_phase);
        e.u64(self.next_packet_id);
        e.u64(self.in_flight);
        e.u64(self.in_flight_phits);
        e.u64(self.injected_packets_total);
        e.u64(self.injected_phits_total);
        e.u64(self.last_delivery_cycle);
        e.usize(self.next_fault);
        // routers + their RNG streams
        e.seq(self.routers.len());
        for router in &self.routers {
            router.save_state(&mut e);
        }
        e.seq(self.router_rngs.len());
        for rng in &self.router_rngs {
            let (seed, words) = rng.state();
            e.u64(seed);
            for w in words {
                e.u64(w);
            }
        }
        // nodes (injector RNGs ride inside)
        e.seq(self.nodes.len());
        for node in &self.nodes {
            node.save_state(&mut e);
        }
        self.metrics.save_state(&mut e);
        // pending link events in exact drain order
        let pending = match &self.events {
            KernelQueue::Wheel(q) => q.pending_in_order(),
            KernelQueue::Legacy(q) => q.pending_in_order(),
        };
        e.seq(pending.len());
        for (at, event) in &pending {
            encode_event(*at, event, &mut e);
        }
        // fault machinery: directed down links, drain/failure flags, ledger
        let down = self.link_state.down_links();
        e.seq(down.len());
        for (r, p) in down {
            e.u32(r.0);
            e.u32(p.0);
        }
        e.seq(self.node_blocked.len());
        for &b in &self.node_blocked {
            e.bool(b);
        }
        e.seq(self.lost_credits.len());
        for (&(r, p), per_vc) in &self.lost_credits {
            e.u32(r);
            e.u32(p);
            e.seq(per_vc.len());
            for &c in per_vc {
                e.u32(c);
            }
        }
        encode_gateway_liveness(&self.linkview_truth, &mut e);
        e.seq(self.group_views.len());
        for view in &self.group_views {
            encode_gateway_liveness(view, &mut e);
        }
        e.seq(self.group_views_prev.len());
        for view in &self.group_views_prev {
            encode_gateway_liveness(view, &mut e);
        }
        e.bool(self.flood_quiescent);
        e.bool(self.views_converged);
        e.seq(self.node_failed.len());
        for &b in &self.node_failed {
            e.bool(b);
        }
        e.seq(self.spare_of.len());
        for &s in &self.spare_of {
            e.u32(s);
        }
        // task layer (presence is configuration-determined; the flag guards
        // against payload drift)
        e.bool(self.task.is_some());
        if let Some(task) = &self.task {
            task.save_state(&mut e);
        }
        // multi-job layer (same presence discipline as the task layer)
        e.bool(self.jobs.is_some());
        if let Some(jobs) = &self.jobs {
            jobs.save_state(&mut e);
        }
        e.finish_frame(SNAPSHOT_MAGIC, SNAPSHOT_VERSION)
    }

    /// Rebuild a network from `config` and resume it from `bytes` (written
    /// by [`Network::snapshot`]). The configuration must be the one the
    /// snapshot was taken under (fingerprint-checked, kernel excepted — a
    /// snapshot restores under any kernel and worker count). Rejects foreign
    /// magic, unsupported versions, checksum mismatches and truncated or
    /// internally inconsistent payloads.
    pub fn restore(config: SimulationConfig, bytes: &[u8]) -> Result<Network, CodecError> {
        let mut d = Decoder::open_frame(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let fingerprint = d.u64()?;
        let expected = config_fingerprint(&config);
        if fingerprint != expected {
            return Err(CodecError::Invalid(format!(
                "snapshot was taken under a different configuration \
                 (fingerprint {fingerprint:#018x}, expected {expected:#018x})"
            )));
        }
        let mut net = Network::new(config);
        net.cycle = d.u64()?;
        net.current_phase = d.usize()?;
        if net.current_phase >= net.patterns.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot phase index {} out of range ({} phases)",
                net.current_phase,
                net.patterns.len()
            )));
        }
        net.next_packet_id = d.u64()?;
        net.in_flight = d.u64()?;
        net.in_flight_phits = d.u64()?;
        net.injected_packets_total = d.u64()?;
        net.injected_phits_total = d.u64()?;
        net.last_delivery_cycle = d.u64()?;
        net.next_fault = d.usize()?;
        if net.next_fault > net.fault_events.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot fault cursor {} beyond the {}-event plan",
                net.next_fault,
                net.fault_events.len()
            )));
        }
        let routers = d.seq(8)?;
        if routers != net.routers.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot router count mismatch: {} vs {}",
                routers,
                net.routers.len()
            )));
        }
        for router in &mut net.routers {
            router.restore_state(&mut d)?;
        }
        let rngs = d.seq(40)?;
        if rngs != net.router_rngs.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot router RNG count mismatch: {} vs {}",
                rngs,
                net.router_rngs.len()
            )));
        }
        for rng in &mut net.router_rngs {
            let seed = d.u64()?;
            let words = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
            *rng = DeterministicRng::from_state(seed, words);
        }
        let nodes = d.seq(8)?;
        if nodes != net.nodes.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot node count mismatch: {} vs {}",
                nodes,
                net.nodes.len()
            )));
        }
        for node in &mut net.nodes {
            node.restore_state(&mut d)?;
        }
        net.metrics.restore_state(&mut d)?;
        // pending link events, rebuilt into the configured kernel's queue
        let n = d.seq(9)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push(decode_event(&mut d)?);
        }
        if pending.iter().any(|&(at, _)| at < net.cycle) {
            return Err(CodecError::Invalid(
                "snapshot holds a link event scheduled before its own cycle".into(),
            ));
        }
        net.events = match &net.events {
            KernelQueue::Wheel(q) => {
                KernelQueue::Wheel(EventQueue::rebuild(q.horizon(), net.cycle, pending))
            }
            KernelQueue::Legacy(_) => KernelQueue::Legacy(LegacyEventQueue::rebuild(pending)),
        };
        // link availability: replay the directed down set onto a fresh mask
        net.link_state = LinkState::new(&net.topo);
        let n = d.seq(8)?;
        for _ in 0..n {
            let r = RouterId(d.u32()?);
            let p = Port(d.u32()?);
            if r.index() >= net.routers.len() || p.index() >= net.routers[r.index()].num_ports() {
                return Err(CodecError::Invalid(format!(
                    "snapshot marks out-of-range link ({r}, {p}) down"
                )));
            }
            net.link_state.set_directed(r, p, false);
        }
        let n = d.seq(1)?;
        if n != net.node_blocked.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot node_blocked length mismatch: {} vs {}",
                n,
                net.node_blocked.len()
            )));
        }
        for b in &mut net.node_blocked {
            *b = d.bool()?;
        }
        let n = d.seq(12)?;
        let mut lost_credits = BTreeMap::new();
        for _ in 0..n {
            let r = d.u32()?;
            let p = d.u32()?;
            let vcs = d.seq(4)?;
            let mut per_vc = Vec::with_capacity(vcs);
            for _ in 0..vcs {
                per_vc.push(d.u32()?);
            }
            lost_credits.insert((r, p), per_vc);
        }
        net.lost_credits = lost_credits;
        let links_per_group = net.topo.global_links_per_group();
        net.linkview_truth = decode_gateway_liveness(&mut d, links_per_group)?;
        for views in [&mut net.group_views, &mut net.group_views_prev] {
            let n = d.seq(13)?;
            if n != views.len() {
                return Err(CodecError::Invalid(format!(
                    "snapshot group view count mismatch: {} vs {}",
                    n,
                    views.len()
                )));
            }
            for view in views.iter_mut() {
                *view = decode_gateway_liveness(&mut d, links_per_group)?;
            }
        }
        net.flood_quiescent = d.bool()?;
        net.views_converged = d.bool()?;
        let n = d.seq(1)?;
        if n != net.node_failed.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot node_failed length mismatch: {} vs {}",
                n,
                net.node_failed.len()
            )));
        }
        for b in &mut net.node_failed {
            *b = d.bool()?;
        }
        net.nodes_failed_count = net.node_failed.iter().filter(|&&b| b).count();
        let n = d.seq(4)?;
        if n != net.spare_of.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot spare_of length mismatch: {} vs {}",
                n,
                net.spare_of.len()
            )));
        }
        for s in &mut net.spare_of {
            *s = d.u32()?;
        }
        let has_task = d.bool()?;
        match (&mut net.task, has_task) {
            (Some(task), true) => task.restore_state(&mut d)?,
            (None, false) => {}
            _ => {
                return Err(CodecError::Invalid(
                    "snapshot task-layer presence disagrees with the configuration".into(),
                ))
            }
        }
        let has_jobs = d.bool()?;
        match (&mut net.jobs, has_jobs) {
            (Some(jobs), true) => jobs.restore_state(&mut d)?,
            (None, false) => {}
            _ => {
                return Err(CodecError::Invalid(
                    "snapshot job-set presence disagrees with the configuration".into(),
                ))
            }
        }
        if !d.is_exhausted() {
            return Err(CodecError::Invalid(format!(
                "snapshot payload has {} trailing bytes",
                d.remaining()
            )));
        }
        // mirror the restored availability mask into the routers' own flags
        // (restore_state already set them from the per-router snapshot; this
        // is a consistency check, not a rebuild)
        for r in net.topo.routers() {
            for port in Port::all(&net.topo.layout()) {
                if net.routers[r.index()].link_is_up(port) != net.link_state.is_up(r, port) {
                    return Err(CodecError::Invalid(format!(
                        "snapshot link flags disagree with the availability mask at ({r}, {port})"
                    )));
                }
            }
        }
        // the activity gate is derived state: at a step boundary the active
        // set is exactly the sorted non-idle routers
        for flag in &mut net.active_flags {
            *flag = false;
        }
        net.active_list.clear();
        if net.gated {
            for (i, router) in net.routers.iter().enumerate() {
                if !router.is_idle() {
                    net.active_flags[i] = true;
                    net.active_list.push(i as u32);
                }
            }
        }
        Ok(net)
    }

    /// Read the cycle a snapshot was taken at (and validate its frame)
    /// without rebuilding the network — used by the sweep runner to pick the
    /// newest usable checkpoint.
    pub fn snapshot_cycle(bytes: &[u8]) -> Result<Cycle, CodecError> {
        let mut d = Decoder::open_frame(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let _fingerprint = d.u64()?;
        d.u64()
    }

    /// The fingerprint a snapshot of this network would carry (exposed for
    /// the sweep runner's journal entries).
    pub fn config_fingerprint(&self) -> u64 {
        config_fingerprint(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use df_model::NetworkConfig;
    use df_routing::RoutingKind;
    use df_topology::{DragonflyParams, GroupId};
    use df_traffic::PatternKind;

    fn config(kernel: KernelMode, seed: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::PiggyBacking)
            .pattern(PatternKind::Uniform)
            .offered_load(0.3)
            .warmup_cycles(100)
            .measurement_cycles(400)
            .seed(seed)
            .kernel(kernel)
            .build()
            .expect("valid configuration")
    }

    /// Condensed end-state fingerprint used by the round-trip tests.
    fn end_state(net: &Network) -> (u64, u64, u64, u64, Vec<u64>) {
        (
            net.cycle(),
            net.metrics().delivered_packets_total(),
            net.in_flight(),
            net.injected_packets_total(),
            net.metrics().latency_histogram().bins().to_vec(),
        )
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let cfg = config(KernelMode::Optimized, 11);
        // uninterrupted reference run
        let mut reference = Network::new(cfg.clone());
        reference.run_cycles(100);
        let start = reference.cycle();
        reference.metrics_mut().start_measurement(start);
        reference.run_cycles(400);
        let drained_ref = reference.drain(100_000);

        // interrupted run: snapshot mid-measurement, restore, finish
        let mut first = Network::new(cfg.clone());
        first.run_cycles(100);
        let start = first.cycle();
        first.metrics_mut().start_measurement(start);
        first.run_cycles(137);
        let bytes = first.snapshot();
        assert_eq!(Network::snapshot_cycle(&bytes).unwrap(), first.cycle());
        drop(first);

        let mut resumed = Network::restore(cfg, &bytes).expect("snapshot restores");
        resumed.run_cycles(400 - 137);
        let drained_resumed = resumed.drain(100_000);

        assert_eq!(drained_ref, drained_resumed);
        assert_eq!(end_state(&reference), end_state(&resumed));
        assert_eq!(
            reference.metrics().window_summary().avg_packet_latency,
            resumed.metrics().window_summary().avg_packet_latency
        );
    }

    #[test]
    fn snapshot_is_kernel_portable() {
        // snapshot under the optimized kernel, restore under legacy (and a
        // 2-worker parallel config) — all three must land on the same state
        let cfg_opt = config(KernelMode::Optimized, 23);
        let mut net = Network::new(cfg_opt.clone());
        net.run_cycles(250);
        let bytes = net.snapshot();

        let finish = |cfg: SimulationConfig| {
            let mut n = Network::restore(cfg, &bytes).expect("snapshot restores");
            n.run_cycles(250);
            n.drain(100_000);
            end_state(&n)
        };
        let opt = finish(cfg_opt);
        let legacy = finish(config(KernelMode::Legacy, 23));
        let par = finish(config(KernelMode::Parallel { workers: 2 }, 23));
        assert_eq!(opt, legacy);
        assert_eq!(opt, par);
    }

    #[test]
    fn snapshot_round_trips_through_restore_and_resnapshot() {
        let cfg = config(KernelMode::Optimized, 5);
        let mut net = Network::new(cfg.clone());
        net.run_cycles(300);
        let bytes = net.snapshot();
        let restored = Network::restore(cfg, &bytes).expect("snapshot restores");
        assert_eq!(
            restored.snapshot(),
            bytes,
            "restore followed by snapshot must reproduce the bytes exactly"
        );
    }

    #[test]
    fn snapshot_rejects_corruption_and_skew() {
        let cfg = config(KernelMode::Optimized, 7);
        let mut net = Network::new(cfg.clone());
        net.run_cycles(50);
        let bytes = net.snapshot();

        // flipped payload byte -> checksum mismatch
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(matches!(
            Network::restore(cfg.clone(), &corrupt),
            Err(CodecError::ChecksumMismatch { .. })
        ));

        // wrong magic
        let mut foreign = bytes.clone();
        foreign[0] ^= 0xFF;
        assert!(matches!(
            Network::restore(cfg.clone(), &foreign),
            Err(CodecError::BadMagic { .. })
        ));

        // truncated
        assert!(Network::restore(cfg.clone(), &bytes[..bytes.len() - 3]).is_err());

        // version skew
        let mut skewed = bytes.clone();
        skewed[8] = skewed[8].wrapping_add(1);
        assert!(matches!(
            Network::restore(cfg.clone(), &skewed),
            Err(CodecError::UnsupportedVersion { .. })
        ));

        // different configuration (fingerprint mismatch)
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert!(matches!(
            Network::restore(other, &bytes),
            Err(CodecError::Invalid(_))
        ));

        // ...but a kernel-only difference is accepted
        let mut legacy = cfg;
        legacy.kernel = KernelMode::Legacy;
        assert!(Network::restore(legacy, &bytes).is_ok());
    }

    #[test]
    fn cross_topology_restore_is_rejected() {
        // a Dragonfly snapshot must not restore under a Megafly
        // configuration, even one with the identical node count and network
        // microarchitecture — the topology kind is part of the fingerprint
        let cfg = config(KernelMode::Optimized, 7);
        let mut net = Network::new(cfg.clone());
        net.run_cycles(50);
        let bytes = net.snapshot();

        let mut megafly = cfg.clone();
        megafly.topology = df_topology::MegaflyParams::small().into();
        assert_eq!(
            megafly.topology.num_nodes(),
            cfg.topology.num_nodes(),
            "the rejection must come from the kind, not the size"
        );
        assert!(matches!(
            Network::restore(megafly, &bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn megafly_snapshot_restore_resumes_bit_identically() {
        // the snapshot subsystem is topology-generic: a mid-measurement
        // Megafly snapshot resumes onto the reference trajectory exactly
        let mut cfg = config(KernelMode::Optimized, 11);
        cfg.topology = df_topology::MegaflyParams::small().into();
        let mut reference = Network::new(cfg.clone());
        reference.run_cycles(100);
        let start = reference.cycle();
        reference.metrics_mut().start_measurement(start);
        reference.run_cycles(400);
        let drained_ref = reference.drain(100_000);

        let mut first = Network::new(cfg.clone());
        first.run_cycles(100);
        let start = first.cycle();
        first.metrics_mut().start_measurement(start);
        first.run_cycles(137);
        let bytes = first.snapshot();
        drop(first);

        let mut resumed = Network::restore(cfg, &bytes).expect("megafly snapshot restores");
        resumed.run_cycles(400 - 137);
        let drained_resumed = resumed.drain(100_000);

        assert_eq!(drained_ref, drained_resumed);
        assert_eq!(end_state(&reference), end_state(&resumed));
    }

    #[test]
    fn snapshot_mid_fault_window_resumes_bit_identically() {
        // snapshot while links are down and lost credits are ledgered
        let base = config(KernelMode::Optimized, 31);
        let topo = base.topology.build();
        let (r1, p1) = FaultPlan::global_link_between(&topo, GroupId(0), GroupId(3));
        let (r2, p2) = FaultPlan::global_link_between(&topo, GroupId(2), GroupId(5));
        let faults = FaultPlan::new()
            .link_down(120, r1, p1)
            .link_down(140, r2, p2)
            .link_up(260, r1, p1)
            .link_up(300, r2, p2);
        let mut cfg = base;
        cfg.faults = faults;
        cfg.validate().expect("fault plan is valid");

        let mut reference = Network::new(cfg.clone());
        reference.run_cycles(500);
        let drained_ref = reference.drain(100_000);

        let mut first = Network::new(cfg.clone());
        first.run_cycles(180); // inside the fault window
        assert!(
            !first.link_state().all_up(),
            "checkpoint must land mid-fault-window for this test to bite"
        );
        let bytes = first.snapshot();
        let mut resumed = Network::restore(cfg, &bytes).expect("snapshot restores");
        assert_eq!(resumed.fault_lost_credits(), first.fault_lost_credits());
        resumed.run_cycles(500 - 180);
        let drained_resumed = resumed.drain(100_000);

        assert_eq!(drained_ref, drained_resumed);
        assert_eq!(end_state(&reference), end_state(&resumed));
    }
}
