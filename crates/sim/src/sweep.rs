//! Parameter sweeps: run many steady-state experiments in parallel.
//!
//! The paper's latency/throughput figures are sweeps over offered load (and,
//! for Figure 10, over the misrouting threshold), with every point averaged
//! over 10 seeds. Each point is an independent simulation, so the sweep
//! parallelises trivially over OS threads: a `std::thread::scope` worker pool
//! pulls configuration indices from a shared atomic counter and writes the
//! reports back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::config::SimulationConfig;
use crate::experiment::{SteadyStateExperiment, SteadyStateReport};

/// Run every configuration and return the reports in the same order.
/// `seeds_per_point` > 1 averages each point over consecutive seeds.
/// `threads` bounds the worker count (use `num_threads()` for a default).
pub fn run_sweep(
    configs: &[SimulationConfig],
    seeds_per_point: u64,
    threads: usize,
) -> Vec<SteadyStateReport> {
    assert!(seeds_per_point > 0);
    let threads = threads.max(1);
    let results: Mutex<Vec<Option<SteadyStateReport>>> = Mutex::new(vec![None; configs.len()]);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= configs.len() {
                    break;
                }
                let experiment = SteadyStateExperiment::new(configs[idx].clone());
                let report = if seeds_per_point == 1 {
                    experiment.run()
                } else {
                    experiment.run_averaged(seeds_per_point)
                };
                results.lock().expect("sweep worker panicked")[idx] = Some(report);
            });
        }
    });

    results
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|r| r.expect("every configuration was run"))
        .collect()
}

/// A reasonable default worker count: the available parallelism, capped so
/// laptop runs stay responsive.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Build one configuration per offered-load point from a template.
pub fn load_sweep(template: &SimulationConfig, loads: &[f64]) -> Vec<SimulationConfig> {
    loads
        .iter()
        .map(|&load| {
            let mut c = template.clone();
            c.offered_load = load;
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::NetworkConfig;
    use df_routing::RoutingKind;
    use df_topology::DragonflyParams;
    use df_traffic::PatternKind;

    fn template() -> SimulationConfig {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Minimal)
            .pattern(PatternKind::Uniform)
            .warmup_cycles(100)
            .measurement_cycles(200)
            .seed(0)
            .build()
            .unwrap()
    }

    #[test]
    fn load_sweep_builds_one_config_per_point() {
        let configs = load_sweep(&template(), &[0.05, 0.1, 0.2]);
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[0].offered_load, 0.05);
        assert_eq!(configs[2].offered_load, 0.2);
    }

    #[test]
    fn parallel_sweep_returns_reports_in_order() {
        let configs = load_sweep(&template(), &[0.05, 0.15]);
        let reports = run_sweep(&configs, 1, 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].offered_load, 0.05);
        assert_eq!(reports[1].offered_load, 0.15);
        assert!(reports.iter().all(|r| r.delivered_packets > 0));
        // higher offered load must accept at least as much traffic at these
        // uncongested points
        assert!(reports[1].accepted_load > reports[0].accepted_load);
    }

    #[test]
    fn sweep_matches_sequential_execution() {
        let configs = load_sweep(&template(), &[0.1]);
        let parallel = run_sweep(&configs, 1, 4);
        let sequential = SteadyStateExperiment::new(configs[0].clone()).run();
        assert_eq!(parallel[0].delivered_packets, sequential.delivered_packets);
        assert_eq!(parallel[0].avg_packet_latency, sequential.avg_packet_latency);
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }
}
