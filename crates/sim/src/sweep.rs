//! Parallel execution: parameter sweeps and the scenario-matrix runner.
//!
//! Two layers share one worker pool (a `std::thread::scope` pool pulling work
//! indices from a shared atomic counter, writing results back in input
//! order):
//!
//! * [`run_sweep`] — the original flat sweep: a list of ready-made
//!   [`SimulationConfig`]s, one report each (the paper's load sweeps).
//! * [`run_matrix`] — the scenario-matrix runner: the cross product of
//!   `scenarios × loads × routings` described by a [`ScenarioMatrix`] is
//!   expanded into one cell per combination, every cell gets a
//!   *deterministic* seed derived from `(base seed, scenario index, load
//!   index, routing index)` via [`cell_seed`], and the cells are executed in
//!   parallel. Because each cell's configuration (including its seed) is
//!   fully determined before any thread starts, the result table is
//!   bit-for-bit identical across reruns and across worker counts.
//!
//! [`matrix_table`] renders the cells as a [`Table`] (text or CSV) for the
//! scenario-runner binary and the golden regression suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use df_engine::Table;
use df_routing::RoutingKind;
use df_traffic::InjectionKind;

use crate::config::SimulationConfig;
use crate::experiment::{SteadyStateExperiment, SteadyStateReport};
use crate::scenario::Scenario;

/// Run every configuration and return the reports in the same order.
/// `seeds_per_point` > 1 averages each point over consecutive seeds.
/// `threads` bounds the worker count (use `num_threads()` for a default).
pub fn run_sweep(
    configs: &[SimulationConfig],
    seeds_per_point: u64,
    threads: usize,
) -> Vec<SteadyStateReport> {
    run_jobs(configs, seeds_per_point, threads)
}

/// Execute one experiment per configuration (each averaged over
/// `seeds_per_point` seeds) on a scoped worker pool, returning reports in
/// input order.
fn run_jobs(
    configs: &[SimulationConfig],
    seeds_per_point: u64,
    threads: usize,
) -> Vec<SteadyStateReport> {
    assert!(seeds_per_point > 0);
    let threads = threads.max(1);
    let results: Mutex<Vec<Option<SteadyStateReport>>> = Mutex::new(vec![None; configs.len()]);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs.len().max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= configs.len() {
                    break;
                }
                let experiment = SteadyStateExperiment::new(configs[idx].clone());
                let report = if seeds_per_point == 1 {
                    experiment.run()
                } else {
                    experiment.run_averaged(seeds_per_point)
                };
                results.lock().expect("sweep worker panicked")[idx] = Some(report);
            });
        }
    });

    results
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|r| r.expect("every configuration was run"))
        .collect()
}

/// A reasonable default worker count: the available parallelism, capped so
/// laptop runs stay responsive.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// How many threads one cell of `config` occupies: the resolved worker
/// count of its kernel (1 for the sequential kernels).
pub fn intra_cell_workers(config: &SimulationConfig) -> usize {
    config.kernel.resolved_workers().max(1)
}

/// Split a `total_threads` budget between matrix-level parallelism (cells
/// running concurrently) and intra-cell parallelism (the cells' own
/// [`KernelMode::Parallel`] worker pools) without oversubscription: the
/// outer worker count is `total_threads / intra`, floored at 1, so at most
/// `max(total_threads, intra)` threads ever run simulation work at once.
///
/// Returns `(outer_threads, intra_workers)`.
///
/// [`KernelMode::Parallel`]: crate::config::KernelMode::Parallel
pub fn split_thread_budget(config: &SimulationConfig, total_threads: usize) -> (usize, usize) {
    let intra = intra_cell_workers(config);
    ((total_threads.max(1) / intra).max(1), intra)
}

/// [`run_matrix`] under a single `total_threads` budget: cells of a matrix
/// whose base configuration uses the parallel kernel are scheduled with
/// [`split_thread_budget`], so `cells × intra-cell workers` never exceeds
/// the budget (modulo the floor of one concurrent cell). Results are
/// bit-for-bit identical to [`run_matrix`] at any thread count — cell seeds
/// are fixed before any thread starts and the parallel kernel is
/// worker-count independent.
pub fn run_matrix_budgeted(matrix: &ScenarioMatrix, total_threads: usize) -> Vec<MatrixCell> {
    let (outer, _intra) = split_thread_budget(&matrix.base, total_threads);
    run_matrix(matrix, outer)
}

/// Build one configuration per offered-load point from a template.
pub fn load_sweep(template: &SimulationConfig, loads: &[f64]) -> Vec<SimulationConfig> {
    loads
        .iter()
        .map(|&load| {
            let mut c = template.clone();
            c.offered_load = load;
            c
        })
        .collect()
}

/// The deterministic seed of matrix cell `(scenario s, load l, routing r)`
/// for a given base seed: three chained [`DeterministicRng::split`]s, so
/// every cell draws from a statistically independent stream and the mapping
/// is stable across releases (pinned by the golden scenario-matrix suite).
///
/// [`DeterministicRng::split`]: df_engine::DeterministicRng::split
pub fn cell_seed(base_seed: u64, scenario_idx: usize, load_idx: usize, routing_idx: usize) -> u64 {
    df_engine::DeterministicRng::new(base_seed)
        .split(scenario_idx as u64)
        .split(load_idx as u64)
        .split(routing_idx as u64)
        .seed()
}

/// The cross product a scenario-matrix run expands: every scenario at every
/// offered load under every routing mechanism, over a common machine
/// template.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Machine-under-test and measurement template: topology, router
    /// microarchitecture, warm-up/measurement windows, kernel, and the base
    /// seed cells derive theirs from. Its schedule/injection/load/routing
    /// are overridden per cell.
    pub base: SimulationConfig,
    /// Workloads (rows of the result table).
    pub scenarios: Vec<Scenario>,
    /// Offered loads in phits/(node·cycle).
    pub loads: Vec<f64>,
    /// Routing mechanisms.
    pub routings: Vec<RoutingKind>,
    /// Seeds averaged per cell (1 = single run).
    pub seeds_per_cell: u64,
}

impl ScenarioMatrix {
    /// A matrix over `base` with empty axes; fill them field-by-field or via
    /// struct update syntax.
    pub fn new(base: SimulationConfig) -> Self {
        ScenarioMatrix {
            base,
            scenarios: Vec::new(),
            loads: Vec::new(),
            routings: Vec::new(),
            seeds_per_cell: 1,
        }
    }

    /// Number of cells the matrix expands to.
    pub fn num_cells(&self) -> usize {
        self.scenarios.len() * self.loads.len() * self.routings.len()
    }

    /// Expand the cross product into per-cell configurations, in
    /// deterministic scenario-major / load / routing order, each with its
    /// [`cell_seed`]. This happens before any parallelism, so cell seeding
    /// is independent of thread scheduling.
    ///
    /// A scenario's churn model is lowered here against the base topology
    /// (mirroring [`SimulationConfigBuilder::build`]), so the same fault
    /// trace replays identically across every load and routing of its row.
    ///
    /// [`SimulationConfigBuilder::build`]: crate::config::SimulationConfigBuilder::build
    pub fn cells(&self) -> Vec<(MatrixKey, SimulationConfig)> {
        let topo = self.base.topology.build();
        let mut out = Vec::with_capacity(self.num_cells());
        for (s_idx, scenario) in self.scenarios.iter().enumerate() {
            let faults = match scenario.churn_model() {
                Some(churn) => {
                    churn
                        .validate()
                        .expect("valid churn model in matrix scenario");
                    scenario.fault_plan().clone().merged(churn.generate(&topo))
                }
                None => scenario.fault_plan().clone(),
            };
            for (l_idx, &load) in self.loads.iter().enumerate() {
                for (r_idx, &routing) in self.routings.iter().enumerate() {
                    let mut config = self.base.clone();
                    config.schedule = scenario.schedule();
                    config.injection = scenario.injection;
                    config.faults = faults.clone();
                    config.workload = scenario.workload().cloned();
                    config.jobs = scenario.jobs().to_vec();
                    config.offered_load = load;
                    config.routing = routing;
                    config.seed = cell_seed(self.base.seed, s_idx, l_idx, r_idx);
                    out.push((
                        MatrixKey {
                            scenario: scenario.name.clone(),
                            injection: scenario.injection,
                            load,
                            routing,
                            seed: config.seed,
                        },
                        config,
                    ));
                }
            }
        }
        out
    }
}

/// Identifies one cell of a scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixKey {
    /// Scenario name.
    pub scenario: String,
    /// Injection process of the scenario.
    pub injection: InjectionKind,
    /// Offered load of the cell.
    pub load: f64,
    /// Routing mechanism of the cell.
    pub routing: RoutingKind,
    /// The deterministic seed the cell ran with (see [`cell_seed`]).
    pub seed: u64,
}

/// One executed cell: its key plus the steady-state report.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Which cell this is.
    pub key: MatrixKey,
    /// The measured report (averaged over `seeds_per_cell` seeds).
    pub report: SteadyStateReport,
}

/// Execute a scenario matrix in parallel and return the cells in
/// deterministic scenario-major / load / routing order. The output is
/// bit-for-bit identical across reruns and worker counts.
///
/// # Panics
/// Panics if any axis of the matrix is empty or a cell configuration fails
/// validation.
pub fn run_matrix(matrix: &ScenarioMatrix, threads: usize) -> Vec<MatrixCell> {
    assert!(
        !matrix.scenarios.is_empty() && !matrix.loads.is_empty() && !matrix.routings.is_empty(),
        "a scenario matrix needs at least one scenario, load and routing"
    );
    assert!(matrix.seeds_per_cell > 0);
    let (keys, configs): (Vec<MatrixKey>, Vec<SimulationConfig>) =
        matrix.cells().into_iter().unzip();
    for (key, config) in keys.iter().zip(&configs) {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid matrix cell {key:?}: {e}"));
    }
    let reports = run_jobs(&configs, matrix.seeds_per_cell, threads);
    keys.into_iter()
        .zip(reports)
        .map(|(key, report)| MatrixCell { key, report })
        .collect()
}

/// Render matrix cells as a structured results table (one row per cell, in
/// the order [`run_matrix`] returned them).
pub fn matrix_table(title: impl Into<String>, cells: &[MatrixCell]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "scenario",
            "injection",
            "load",
            "routing",
            "latency",
            "p99",
            "accepted",
            "%misrouted",
            "delivered",
        ],
    );
    for cell in cells {
        table.push_row(vec![
            cell.key.scenario.clone(),
            cell.key.injection.label(),
            format!("{:.2}", cell.key.load),
            cell.key.routing.label().to_string(),
            format!("{:.2}", cell.report.avg_packet_latency),
            format!("{:.1}", cell.report.p99_latency),
            format!("{:.4}", cell.report.accepted_load),
            format!("{:.1}", cell.report.global_misroute_fraction * 100.0),
            cell.report.delivered_packets.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::NetworkConfig;
    use df_topology::DragonflyParams;
    use df_traffic::PatternKind;

    fn template() -> SimulationConfig {
        SimulationConfig::builder()
            .topology(DragonflyParams::small())
            .network(NetworkConfig::fast_test())
            .routing(RoutingKind::Minimal)
            .pattern(PatternKind::Uniform)
            .warmup_cycles(100)
            .measurement_cycles(200)
            .seed(0)
            .build()
            .unwrap()
    }

    #[test]
    fn matrix_cells_lower_churn_into_fault_plans() {
        let base = template();
        let matrix = ScenarioMatrix {
            base: base.clone(),
            scenarios: vec![
                Scenario::steady(PatternKind::Uniform),
                Scenario::named("churny").hold(PatternKind::Uniform).churn(
                    crate::churn::ChurnModel::new(7, 100, 300)
                        .global_links(crate::churn::ChurnRate::new(400.0, 50.0)),
                ),
            ],
            loads: vec![0.1],
            routings: vec![RoutingKind::Base, RoutingKind::PiggyBacking],
            seeds_per_cell: 1,
        };
        let cells = matrix.cells();
        assert_eq!(cells.len(), 4);
        // healthy row stays fault-free; the churn row's lowered events must
        // survive expansion and be identical across routings
        assert!(cells[0].1.faults.events().is_empty());
        assert!(cells[1].1.faults.events().is_empty());
        let pb = &cells[3].1.faults;
        let base_faults = &cells[2].1.faults;
        assert!(
            !base_faults.events().is_empty(),
            "churn was dropped in expansion"
        );
        assert_eq!(base_faults.events(), pb.events());
    }

    #[test]
    fn load_sweep_builds_one_config_per_point() {
        let configs = load_sweep(&template(), &[0.05, 0.1, 0.2]);
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[0].offered_load, 0.05);
        assert_eq!(configs[2].offered_load, 0.2);
    }

    #[test]
    fn parallel_sweep_returns_reports_in_order() {
        let configs = load_sweep(&template(), &[0.05, 0.15]);
        let reports = run_sweep(&configs, 1, 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].offered_load, 0.05);
        assert_eq!(reports[1].offered_load, 0.15);
        assert!(reports.iter().all(|r| r.delivered_packets > 0));
        // higher offered load must accept at least as much traffic at these
        // uncongested points
        assert!(reports[1].accepted_load > reports[0].accepted_load);
    }

    #[test]
    fn sweep_matches_sequential_execution() {
        let configs = load_sweep(&template(), &[0.1]);
        let parallel = run_sweep(&configs, 1, 4);
        let sequential = SteadyStateExperiment::new(configs[0].clone()).run();
        assert_eq!(parallel[0].delivered_packets, sequential.delivered_packets);
        assert_eq!(
            parallel[0].avg_packet_latency,
            sequential.avg_packet_latency
        );
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }

    // ---- scenario matrix ----

    fn small_matrix() -> ScenarioMatrix {
        ScenarioMatrix {
            scenarios: vec![
                Scenario::steady(PatternKind::Uniform),
                Scenario::steady(PatternKind::Adversarial { offset: 1 }),
            ],
            loads: vec![0.1, 0.2],
            routings: vec![RoutingKind::Minimal, RoutingKind::Base],
            seeds_per_cell: 1,
            ..ScenarioMatrix::new(template())
        }
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a = cell_seed(7, 0, 1, 2);
        assert_eq!(a, cell_seed(7, 0, 1, 2));
        // every axis perturbs the seed, and so does the base seed
        assert_ne!(a, cell_seed(7, 1, 1, 2));
        assert_ne!(a, cell_seed(7, 0, 0, 2));
        assert_ne!(a, cell_seed(7, 0, 1, 1));
        assert_ne!(a, cell_seed(8, 0, 1, 2));
        // axis indices must not be interchangeable
        assert_ne!(cell_seed(7, 1, 2, 0), cell_seed(7, 2, 0, 1));
    }

    #[test]
    fn matrix_expands_the_full_cross_product_in_order() {
        let m = small_matrix();
        assert_eq!(m.num_cells(), 8);
        let cells = m.cells();
        assert_eq!(cells.len(), 8);
        // scenario-major, then load, then routing
        assert_eq!(cells[0].0.scenario, "UN");
        assert_eq!(cells[0].0.load, 0.1);
        assert_eq!(cells[0].0.routing, RoutingKind::Minimal);
        assert_eq!(cells[1].0.routing, RoutingKind::Base);
        assert_eq!(cells[2].0.load, 0.2);
        assert_eq!(cells[4].0.scenario, "ADV+1");
        // each cell carries its derived seed in both key and config
        for (s, l, r) in [(0usize, 0usize, 0usize), (1, 1, 1)] {
            let idx = s * 4 + l * 2 + r;
            assert_eq!(cells[idx].1.seed, cell_seed(0, s, l, r));
            assert_eq!(cells[idx].0.seed, cells[idx].1.seed);
        }
        // all seeds distinct
        let mut seeds: Vec<u64> = cells.iter().map(|(k, _)| k.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn matrix_run_is_identical_across_reruns_and_thread_counts() {
        let m = small_matrix();
        let a = run_matrix(&m, 1);
        let b = run_matrix(&m, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.report.delivered_packets, y.report.delivered_packets);
            assert_eq!(
                x.report.avg_packet_latency.to_bits(),
                y.report.avg_packet_latency.to_bits()
            );
        }
        let ta = matrix_table("m", &a).to_csv();
        let tb = matrix_table("m", &b).to_csv();
        assert_eq!(ta, tb, "rendered tables must be bit-identical");
    }

    #[test]
    fn matrix_table_has_one_row_per_cell() {
        let m = small_matrix();
        let cells = run_matrix(&m, 2);
        let table = matrix_table("scenario matrix", &cells);
        assert_eq!(table.num_rows(), 8);
        assert_eq!(table.cell(0, 0), Some("UN"));
        assert_eq!(table.cell(0, 1), Some("bernoulli"));
        assert_eq!(table.cell(4, 0), Some("ADV+1"));
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_matrix_axes_are_rejected() {
        let m = ScenarioMatrix::new(template());
        let _ = run_matrix(&m, 1);
    }

    // ---- thread-budget composition with the parallel kernel ----

    #[test]
    fn thread_budget_splits_without_oversubscription() {
        use crate::config::KernelMode;
        // pin kernels explicitly: the template's default follows the
        // DF_SIM_KERNEL environment, which CI varies
        let mut sequential = template();
        sequential.kernel = KernelMode::Optimized;
        assert_eq!(split_thread_budget(&sequential, 8), (8, 1));
        assert_eq!(split_thread_budget(&sequential, 0), (1, 1));
        let mut parallel = template();
        parallel.kernel = KernelMode::Parallel { workers: 3 };
        assert_eq!(split_thread_budget(&parallel, 12), (4, 3));
        assert_eq!(split_thread_budget(&parallel, 3), (1, 3));
        // a budget below the intra-cell width floors at one concurrent cell
        assert_eq!(split_thread_budget(&parallel, 2), (1, 3));
        for total in 1..16usize {
            let (outer, intra) = split_thread_budget(&parallel, total);
            assert!(
                outer * intra <= total.max(intra),
                "budget {total} oversubscribed"
            );
        }
    }

    #[test]
    fn budgeted_matrix_matches_unbudgeted_and_reruns_identically() {
        use crate::config::KernelMode;
        // cells × intra-cell workers: the combined mode must reproduce the
        // sequential-kernel matrix bit-for-bit and be rerun-deterministic
        let mut m = small_matrix();
        m.base.kernel = KernelMode::Parallel { workers: 2 };
        let a = run_matrix_budgeted(&m, 4);
        let b = run_matrix_budgeted(&m, 4);
        let plain = run_matrix(&small_matrix(), 2);
        assert_eq!(a.len(), plain.len());
        for ((x, y), z) in a.iter().zip(b.iter()).zip(plain.iter()) {
            assert_eq!(x.key, y.key);
            assert_eq!(
                x.report.avg_packet_latency.to_bits(),
                y.report.avg_packet_latency.to_bits(),
                "rerun diverged for {:?}",
                x.key
            );
            assert_eq!(x.key.scenario, z.key.scenario);
            assert_eq!(x.report.delivered_packets, z.report.delivered_packets);
            assert_eq!(
                x.report.avg_packet_latency.to_bits(),
                z.report.avg_packet_latency.to_bits(),
                "parallel-kernel cell diverged from the sequential kernel for {:?}",
                x.key
            );
        }
    }
}
