//! Measurement: latency, throughput, misrouting and transient time series.

use df_engine::{BinnedSeries, Histogram, RunningStats};
use df_model::{Cycle, Packet};
use serde::{Deserialize, Serialize};

/// Collects everything the experiments report.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Cycle at which the measurement window opened (`None` while warming
    /// up).
    window_start: Option<Cycle>,
    /// Origin of the transient time series (x = 0, the traffic-change
    /// instant); exported series times are relative to it.
    series_origin: i64,
    /// Offered traffic since the beginning of time (phits), for debugging and
    /// the offered-vs-accepted sanity checks.
    pub generated_phits_total: u64,
    // ---- measurement window ----
    delivered_packets: u64,
    delivered_phits: u64,
    latency: RunningStats,
    hops: RunningStats,
    misrouted_global: u64,
    misrouted_local: u64,
    // ---- whole-run counters (used by the progress watchdog) ----
    delivered_packets_total: u64,
    delivered_phits_total: u64,
    // ---- fault accounting (whole run) ----
    /// Packets lost to link failures, whatever the mechanism: in flight on
    /// the wire, staged in a dead link's output buffer, or discarded as
    /// unroutable. Together with `delivered` and `in-flight` these make
    /// packet conservation under faults a checkable equality.
    dropped_on_fault_packets: u64,
    /// Phits of those dropped packets.
    dropped_on_fault_phits: u64,
    /// Of the dropped packets, those that were staged in an output buffer
    /// behind a link when it failed (the serialisation buffer is lost with
    /// the link).
    dropped_staged_packets: u64,
    /// Of the dropped packets, those the routing layer discarded as
    /// unroutable (dead minimal continuation and no policy-legal live
    /// alternative).
    dropped_unroutable_packets: u64,
    /// Phits of the unroutable discards. Unlike wire/staged drops these
    /// consumed no credits on the dead link, so the lost-credit ledger
    /// bound excludes them.
    dropped_unroutable_phits: u64,
    /// Packets whose dead committed continuation was re-committed (replaced
    /// or abandoned) by the failure-aware routing layer.
    recommitted_packets: u64,
    /// Cycles during which at least one router's gateway-liveness view
    /// lagged the true link state (only meaningful for mechanisms with a
    /// dissemination channel; 0 on healthy runs).
    stale_linkstate_cycles: u64,
    /// Packets whose destination node had failed and that were retargeted
    /// to its designated spare at injection time (node failure:
    /// drain-at-source + reroute-to-spare).
    retargeted_packets: u64,
    /// Cumulative rank-cycles the task layer spent blocked on the network
    /// (sends handed over, completion conditions unmet; summed over ranks.
    /// 0 without a workload).
    rank_stall_cycles: u64,
    /// Workload steps every rank has passed (task layer; 0 without one).
    task_steps_completed: u64,
    // ---- transient series ----
    latency_series: BinnedSeries,
    misroute_series: BinnedSeries,
    // ---- distribution ----
    latency_histogram: Histogram,
    /// Always-on latency histogram over the whole run (the measurement-window
    /// histogram above only records while the window is open). Feeds the
    /// streaming-telemetry layer, which differences cumulative counts between
    /// window boundaries to get per-window latency quantiles.
    telemetry_histogram: Histogram,
}

/// Final figures of a measurement window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Packets delivered inside the window.
    pub delivered_packets: u64,
    /// Phits delivered inside the window.
    pub delivered_phits: u64,
    /// Mean packet latency (generation to delivery), cycles.
    pub avg_packet_latency: f64,
    /// 95 % confidence half-width of the latency mean.
    pub latency_ci95: f64,
    /// 99th-percentile latency approximated from the histogram.
    pub p99_latency: f64,
    /// Mean hop count of delivered packets.
    pub avg_hops: f64,
    /// Fraction of delivered packets that were globally misrouted.
    pub global_misroute_fraction: f64,
    /// Fraction of delivered packets that took a local detour.
    pub local_misroute_fraction: f64,
}

impl Metrics {
    /// Create a collector. `series_origin` is the cycle that becomes x = 0 in
    /// the transient time series (the traffic-change instant), and
    /// `series_bin` the bin width in cycles.
    pub fn new(series_origin: i64, series_bin: u64) -> Self {
        Metrics {
            window_start: None,
            series_origin,
            generated_phits_total: 0,
            delivered_packets: 0,
            delivered_phits: 0,
            latency: RunningStats::new(),
            hops: RunningStats::new(),
            misrouted_global: 0,
            misrouted_local: 0,
            delivered_packets_total: 0,
            delivered_phits_total: 0,
            dropped_on_fault_packets: 0,
            dropped_on_fault_phits: 0,
            dropped_staged_packets: 0,
            dropped_unroutable_packets: 0,
            dropped_unroutable_phits: 0,
            recommitted_packets: 0,
            stale_linkstate_cycles: 0,
            retargeted_packets: 0,
            rank_stall_cycles: 0,
            task_steps_completed: 0,
            latency_series: BinnedSeries::new(series_origin, series_bin),
            misroute_series: BinnedSeries::new(series_origin, series_bin),
            latency_histogram: Histogram::new(0.0, 5_000.0, 500),
            telemetry_histogram: Histogram::new(0.0, 5_000.0, 500),
        }
    }

    /// Open the measurement window at `cycle` (typically after warm-up).
    pub fn start_measurement(&mut self, cycle: Cycle) {
        self.window_start = Some(cycle);
        self.delivered_packets = 0;
        self.delivered_phits = 0;
        self.latency = RunningStats::new();
        self.hops = RunningStats::new();
        self.misrouted_global = 0;
        self.misrouted_local = 0;
        self.latency_histogram = Histogram::new(0.0, 5_000.0, 500);
    }

    /// Whether the measurement window is open.
    pub fn measuring(&self) -> bool {
        self.window_start.is_some()
    }

    /// Record traffic generation (phits).
    pub fn record_generated(&mut self, phits: u64) {
        self.generated_phits_total += phits;
    }

    /// Record a packet delivered to its destination node at `now`.
    pub fn record_delivery(&mut self, packet: &Packet, now: Cycle) {
        self.delivered_packets_total += 1;
        self.delivered_phits_total += packet.size_phits as u64;
        let latency = (now - packet.generated_at) as f64;
        self.latency_series.record(now as i64, latency);
        self.telemetry_histogram.record(latency);
        if self.measuring() {
            self.delivered_packets += 1;
            self.delivered_phits += packet.size_phits as u64;
            self.latency.push(latency);
            self.hops.push(packet.hops() as f64);
            self.latency_histogram.record(latency);
            if packet.routing.flags.global {
                self.misrouted_global += 1;
            }
            if packet.routing.flags.local {
                self.misrouted_local += 1;
            }
        }
    }

    /// Record a min-vs-nonmin commitment (a packet crossed a global link):
    /// feeds the transient misrouting-percentage series.
    pub fn record_commit(&mut self, now: Cycle, misrouted: bool) {
        self.misroute_series
            .record(now as i64, if misrouted { 100.0 } else { 0.0 });
    }

    /// Record a packet dropped because its link failed while it was in
    /// flight (fault injection).
    pub fn record_dropped_on_fault(&mut self, packet: &Packet) {
        self.dropped_on_fault_packets += 1;
        self.dropped_on_fault_phits += packet.size_phits as u64;
    }

    /// Record a packet dropped because it was staged in an output buffer
    /// behind a link when the link failed (counts into the dropped-on-fault
    /// totals and the staged sub-counter).
    pub fn record_dropped_staged(&mut self, packet: &Packet) {
        self.record_dropped_on_fault(packet);
        self.dropped_staged_packets += 1;
    }

    /// Record a packet the routing layer discarded as unroutable (counts
    /// into the dropped-on-fault totals and the unroutable sub-counter).
    pub fn record_dropped_unroutable(&mut self, packet: &Packet) {
        self.record_dropped_on_fault(packet);
        self.dropped_unroutable_packets += 1;
        self.dropped_unroutable_phits += packet.size_phits as u64;
    }

    /// Record `count` fault re-commits (committed continuations replaced or
    /// abandoned because their link died).
    pub fn record_recommitted(&mut self, count: u64) {
        self.recommitted_packets += count;
    }

    /// Record one cycle during which the disseminated gateway-liveness view
    /// lagged the true link state.
    pub fn record_stale_linkstate_cycle(&mut self) {
        self.stale_linkstate_cycles += 1;
    }

    /// Record a packet retargeted from its failed destination node to the
    /// node's designated spare at injection time.
    pub fn record_retargeted(&mut self) {
        self.retargeted_packets += 1;
    }

    /// Record `ranks` ranks blocked on the network for the current cycle
    /// (task layer).
    pub fn record_rank_stalls(&mut self, ranks: u64) {
        self.rank_stall_cycles += ranks;
    }

    /// Record a workload step every rank has now passed (task layer).
    pub fn record_task_step_completed(&mut self) {
        self.task_steps_completed += 1;
    }

    /// Total packets delivered since the beginning of the run (not just the
    /// window); used by the progress watchdog.
    pub fn delivered_packets_total(&self) -> u64 {
        self.delivered_packets_total
    }

    /// Total phits delivered since the beginning of the run.
    pub fn delivered_phits_total(&self) -> u64 {
        self.delivered_phits_total
    }

    /// Packets dropped by link failures since the beginning of the run.
    pub fn dropped_on_fault_packets(&self) -> u64 {
        self.dropped_on_fault_packets
    }

    /// Phits dropped by link failures since the beginning of the run.
    pub fn dropped_on_fault_phits(&self) -> u64 {
        self.dropped_on_fault_phits
    }

    /// Packets dropped from dead links' output stages (subset of
    /// [`dropped_on_fault_packets`](Self::dropped_on_fault_packets)).
    pub fn dropped_staged_packets(&self) -> u64 {
        self.dropped_staged_packets
    }

    /// Packets discarded as unroutable by the failure-aware routing layer
    /// (subset of [`dropped_on_fault_packets`](Self::dropped_on_fault_packets)).
    pub fn dropped_unroutable_packets(&self) -> u64 {
        self.dropped_unroutable_packets
    }

    /// Phits of the unroutable discards.
    pub fn dropped_unroutable_phits(&self) -> u64 {
        self.dropped_unroutable_phits
    }

    /// Committed continuations re-committed around a dead link.
    pub fn recommitted_packets(&self) -> u64 {
        self.recommitted_packets
    }

    /// Cycles the disseminated gateway-liveness view lagged the truth.
    pub fn stale_linkstate_cycles(&self) -> u64 {
        self.stale_linkstate_cycles
    }

    /// Packets retargeted to a spare because their destination node failed.
    pub fn retargeted_packets(&self) -> u64 {
        self.retargeted_packets
    }

    /// Cumulative rank-cycles spent blocked on the network (task layer).
    pub fn rank_stall_cycles(&self) -> u64 {
        self.rank_stall_cycles
    }

    /// Workload steps every rank has passed (task layer).
    pub fn task_steps_completed(&self) -> u64 {
        self.task_steps_completed
    }

    /// The always-on cumulative latency histogram (records every delivery of
    /// the run, warm-up included). The streaming-telemetry layer differences
    /// its counts between window boundaries for per-window quantiles.
    pub fn telemetry_histogram(&self) -> &Histogram {
        &self.telemetry_histogram
    }

    /// The latency histogram of the measurement window (records only while
    /// the window is open; used by the determinism regression tests to
    /// compare full distributions, not just summary statistics).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_histogram
    }

    /// Summarise the measurement window. `num_nodes` and `window_cycles`
    /// convert the phit count into accepted load.
    pub fn window_summary(&self) -> WindowSummary {
        WindowSummary {
            delivered_packets: self.delivered_packets,
            delivered_phits: self.delivered_phits,
            avg_packet_latency: self.latency.mean(),
            latency_ci95: self.latency.ci95_half_width(),
            p99_latency: self.latency_histogram.percentile(99.0),
            avg_hops: self.hops.mean(),
            global_misroute_fraction: if self.delivered_packets == 0 {
                0.0
            } else {
                self.misrouted_global as f64 / self.delivered_packets as f64
            },
            local_misroute_fraction: if self.delivered_packets == 0 {
                0.0
            } else {
                self.misrouted_local as f64 / self.delivered_packets as f64
            },
        }
    }

    /// Accepted load in phits/(node·cycle) over the measurement window.
    pub fn accepted_load(&self, num_nodes: u32, window_cycles: u64) -> f64 {
        if window_cycles == 0 {
            return 0.0;
        }
        self.delivered_phits as f64 / (num_nodes as f64 * window_cycles as f64)
    }

    /// Per-bin mean latency around the series origin (transient figures).
    /// Times are relative to the origin (the traffic-change cycle is 0).
    pub fn latency_series(&self) -> Vec<(i64, f64)> {
        let origin = self.series_origin;
        self.latency_series
            .iter_means()
            .map(|(t, m, _)| (t - origin, m))
            .collect()
    }

    /// Width of the transient-series bins in cycles (consumers converting
    /// per-bin counts into rates must use this, not a hardcoded constant).
    pub fn series_bin_width(&self) -> u64 {
        self.latency_series.bin_width()
    }

    /// Per-bin delivered-packet counts around the series origin (the
    /// throughput view of the transient series; used by the fault-recovery
    /// curve). Times are relative to the origin.
    pub fn delivery_count_series(&self) -> Vec<(i64, u64)> {
        let origin = self.series_origin;
        self.latency_series
            .iter_means()
            .map(|(t, _, n)| (t - origin, n))
            .collect()
    }

    /// Per-bin percentage of globally misrouted commitments (transient
    /// figures). Times are relative to the origin.
    pub fn misroute_series(&self) -> Vec<(i64, f64)> {
        let origin = self.series_origin;
        self.misroute_series
            .iter_means()
            .map(|(t, m, _)| (t - origin, m))
            .collect()
    }

    /// Serialise the whole collector (counters, running statistics, series
    /// and histogram). The series origin is written for validation only — it
    /// is configuration (the traffic-change instant), not run state.
    pub fn save_state(&self, e: &mut df_engine::Encoder) {
        e.bool(self.window_start.is_some());
        if let Some(c) = self.window_start {
            e.u64(c);
        }
        e.i64(self.series_origin);
        e.u64(self.generated_phits_total);
        e.u64(self.delivered_packets);
        e.u64(self.delivered_phits);
        self.latency.encode(e);
        self.hops.encode(e);
        e.u64(self.misrouted_global);
        e.u64(self.misrouted_local);
        e.u64(self.delivered_packets_total);
        e.u64(self.delivered_phits_total);
        e.u64(self.dropped_on_fault_packets);
        e.u64(self.dropped_on_fault_phits);
        e.u64(self.dropped_staged_packets);
        e.u64(self.dropped_unroutable_packets);
        e.u64(self.dropped_unroutable_phits);
        e.u64(self.recommitted_packets);
        e.u64(self.stale_linkstate_cycles);
        e.u64(self.retargeted_packets);
        e.u64(self.rank_stall_cycles);
        e.u64(self.task_steps_completed);
        self.latency_series.encode(e);
        self.misroute_series.encode(e);
        self.latency_histogram.encode(e);
        self.telemetry_histogram.encode(e);
    }

    /// Restore the state written by [`Metrics::save_state`]. The series
    /// origin in the snapshot must match this collector's configured origin.
    pub fn restore_state(
        &mut self,
        d: &mut df_engine::Decoder,
    ) -> Result<(), df_engine::CodecError> {
        let window_start = if d.bool()? { Some(d.u64()?) } else { None };
        let origin = d.i64()?;
        if origin != self.series_origin {
            return Err(df_engine::CodecError::Invalid(format!(
                "metrics series origin mismatch: snapshot has {origin}, config has {}",
                self.series_origin
            )));
        }
        self.window_start = window_start;
        self.generated_phits_total = d.u64()?;
        self.delivered_packets = d.u64()?;
        self.delivered_phits = d.u64()?;
        self.latency = RunningStats::decode(d)?;
        self.hops = RunningStats::decode(d)?;
        self.misrouted_global = d.u64()?;
        self.misrouted_local = d.u64()?;
        self.delivered_packets_total = d.u64()?;
        self.delivered_phits_total = d.u64()?;
        self.dropped_on_fault_packets = d.u64()?;
        self.dropped_on_fault_phits = d.u64()?;
        self.dropped_staged_packets = d.u64()?;
        self.dropped_unroutable_packets = d.u64()?;
        self.dropped_unroutable_phits = d.u64()?;
        self.recommitted_packets = d.u64()?;
        self.stale_linkstate_cycles = d.u64()?;
        self.retargeted_packets = d.u64()?;
        self.rank_stall_cycles = d.u64()?;
        self.task_steps_completed = d.u64()?;
        self.latency_series = BinnedSeries::decode(d)?;
        self.misroute_series = BinnedSeries::decode(d)?;
        self.latency_histogram = Histogram::decode(d)?;
        self.telemetry_histogram = Histogram::decode(d)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_model::PacketId;
    use df_topology::NodeId;

    fn packet(id: u64, generated_at: Cycle) -> Packet {
        Packet::new(PacketId(id), NodeId(0), NodeId(9), 8, generated_at)
    }

    #[test]
    fn deliveries_before_measurement_do_not_count_in_the_window() {
        let mut m = Metrics::new(0, 10);
        m.record_delivery(&packet(1, 0), 100);
        assert_eq!(m.delivered_packets_total(), 1);
        assert_eq!(m.window_summary().delivered_packets, 0);
        m.start_measurement(200);
        m.record_delivery(&packet(2, 150), 250);
        let s = m.window_summary();
        assert_eq!(s.delivered_packets, 1);
        assert_eq!(s.avg_packet_latency, 100.0);
        assert_eq!(s.delivered_phits, 8);
    }

    #[test]
    fn misroute_fractions() {
        let mut m = Metrics::new(0, 10);
        m.start_measurement(0);
        let mut a = packet(1, 0);
        a.routing.flags.global = true;
        let mut b = packet(2, 0);
        b.routing.flags.local = true;
        let c = packet(3, 0);
        m.record_delivery(&a, 50);
        m.record_delivery(&b, 60);
        m.record_delivery(&c, 70);
        let s = m.window_summary();
        assert!((s.global_misroute_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.local_misroute_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accepted_load_normalises_by_nodes_and_cycles() {
        let mut m = Metrics::new(0, 10);
        m.start_measurement(0);
        for i in 0..10 {
            m.record_delivery(&packet(i, 0), 10);
        }
        // 80 phits over 4 nodes × 20 cycles = 1.0
        assert!((m.accepted_load(4, 20) - 1.0).abs() < 1e-9);
        assert_eq!(m.accepted_load(4, 0), 0.0);
    }

    #[test]
    fn series_are_binned_around_the_origin() {
        let mut m = Metrics::new(1_000, 50);
        m.record_delivery(&packet(1, 900), 990); // bin -100..-50? latency 90 at t=990 → bin -50..0
        m.record_delivery(&packet(2, 1_000), 1_020);
        m.record_commit(1_010, true);
        m.record_commit(1_010, false);
        let lat = m.latency_series();
        assert_eq!(lat.len(), 2);
        assert_eq!(lat[0].0, -50);
        assert_eq!(lat[1].0, 0);
        let mis = m.misroute_series();
        assert_eq!(mis.len(), 1);
        assert!(
            (mis[0].1 - 50.0).abs() < 1e-9,
            "50% of commits were misroutes"
        );
    }

    #[test]
    fn generated_counter_accumulates() {
        let mut m = Metrics::new(0, 10);
        m.record_generated(8);
        m.record_generated(16);
        assert_eq!(m.generated_phits_total, 24);
    }

    #[test]
    fn fault_drop_subcounters_feed_the_conservation_totals() {
        let mut m = Metrics::new(0, 10);
        m.record_dropped_on_fault(&packet(1, 0)); // wire drop
        m.record_dropped_staged(&packet(2, 0));
        m.record_dropped_unroutable(&packet(3, 0));
        assert_eq!(m.dropped_on_fault_packets(), 3);
        assert_eq!(m.dropped_on_fault_phits(), 24);
        assert_eq!(m.dropped_staged_packets(), 1);
        assert_eq!(m.dropped_unroutable_packets(), 1);
        assert_eq!(m.dropped_unroutable_phits(), 8);
    }

    #[test]
    fn recommit_and_staleness_counters_accumulate() {
        let mut m = Metrics::new(0, 10);
        assert_eq!(m.recommitted_packets(), 0);
        assert_eq!(m.stale_linkstate_cycles(), 0);
        m.record_recommitted(3);
        m.record_recommitted(2);
        m.record_stale_linkstate_cycle();
        assert_eq!(m.recommitted_packets(), 5);
        assert_eq!(m.stale_linkstate_cycles(), 1);
    }
}
